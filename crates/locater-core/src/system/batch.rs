//! The deterministic sharded batch pipeline shared by
//! [`Locater::locate_batch`](super::Locater::locate_batch),
//! [`LocaterService::locate_batch`](super::LocaterService::locate_batch) and
//! [`ShardedLocaterService::locate_batch`](super::ShardedLocaterService::locate_batch).
//!
//! The pipeline is built for determinism: results are **identical for every
//! `jobs` value** (including the sequential `jobs = 1` path) and are returned
//! in query order. Three properties make that hold:
//!
//! 1. every query is answered against a *frozen* snapshot of the global
//!    affinity graph (supplied by the caller — for the sharded service, the
//!    union of every shard's cache), so no worker observes another worker's
//!    cache warming — and, unlike per-query `locate` loops, no query observes
//!    warming from *earlier batch queries* either;
//! 2. queries are grouped **by device** — a device's queries are processed by
//!    one worker in query order, so its lazily trained coarse model evolves
//!    exactly as in the sequential path (worker-local model maps are seeded
//!    from the live model cache, which is also per-device);
//! 3. the worker-local affinity contributions are handed back in ascending
//!    query order (`BatchOutcome::contributions`) and the caller applies
//!    them to the live cache(s) only after all workers join.
//!
//! Device → worker assignment balances per-device query counts greedily, so
//! skewed workloads still spread across the pool.

use super::epoch::{EpochCache, EpochRead};
use super::service::{Effective, Engines, ModelUse};
use super::{assemble_answer, Answer, CacheMode};
use crate::coarse::{CoarseLabel, DeviceCoarseModel};
use crate::error::LocaterError;
use crate::fine::NeighborContribution;
use locater_events::clock::Timestamp;
use locater_events::DeviceId;
use locater_store::EventRead;
use std::collections::HashMap;

/// One batch entry: the query time, the resolved device (or the error to
/// report in place), and the per-request effective engine view.
#[derive(Debug)]
pub(crate) struct BatchItem {
    pub(crate) t: Timestamp,
    pub(crate) device: Result<DeviceId, LocaterError>,
    pub(crate) eff: Effective,
}

/// The local affinity graph of one batch-answered query, queued for the
/// post-join merge into the live cache(s).
#[derive(Debug, Clone)]
pub(crate) struct BatchContribution {
    pub(crate) query_index: usize,
    pub(crate) device: DeviceId,
    pub(crate) t: Timestamp,
    pub(crate) neighbors: Vec<NeighborContribution>,
}

/// Everything one worker produces: answers (tagged with their query index),
/// affinity contributions, and the worker-local trained models.
#[derive(Debug, Default)]
struct WorkerOutput {
    answers: Vec<(usize, Answer)>,
    contributions: Vec<BatchContribution>,
    models: HashMap<DeviceId, DeviceCoarseModel>,
}

/// What a batch run hands back to its caller: in-order answers, affinity
/// contributions sorted by query index (apply them to the live cache in this
/// order), and the models freshly trained along the way (write them back to
/// the per-device model cache stamped with the devices' current epochs).
#[derive(Debug)]
pub(crate) struct BatchOutcome {
    pub(crate) answers: Vec<Result<Answer, LocaterError>>,
    pub(crate) contributions: Vec<BatchContribution>,
    pub(crate) trained: HashMap<DeviceId, DeviceCoarseModel>,
}

/// `true` if any resolved item may consult the caching engine — the caller
/// only needs to snapshot the live cache(s) in that case.
pub(crate) fn wants_cache(items: &[BatchItem]) -> bool {
    items
        .iter()
        .any(|item| item.eff.cache == CacheMode::Enabled && item.device.is_ok())
}

/// Answers a batch of resolved items across `jobs` worker threads.
/// Unresolvable items error in place and never reach a worker.
///
/// `seeds` are the epoch-live per-device coarse models at batch start, taken
/// by value: each device lands in exactly one worker, so every seed moves
/// into its worker's map without another clone. `frozen` is the immutable
/// affinity-cache snapshot every worker reads. The caller owns applying
/// [`BatchOutcome::contributions`] and [`BatchOutcome::trained`] back to the
/// live state — see [`merge_into_engines`] for the single-cache case.
pub(crate) fn run_batch(
    engines: &Engines,
    store: &dyn EventRead,
    epochs: &dyn EpochRead,
    items: &[BatchItem],
    jobs: usize,
    mut seeds: HashMap<DeviceId, DeviceCoarseModel>,
    frozen: Option<&EpochCache>,
) -> BatchOutcome {
    if items.is_empty() {
        return BatchOutcome {
            answers: Vec::new(),
            contributions: Vec::new(),
            trained: HashMap::new(),
        };
    }

    // Deterministic device → worker assignment: devices ordered by decreasing
    // query count (ties by device id) go to the least-loaded worker (ties by
    // worker index). A worker is a real thread, so the job count is capped by
    // the distinct-device count — extra workers could only ever be empty.
    let mut query_counts: HashMap<DeviceId, usize> = HashMap::new();
    for item in items {
        if let Ok(device) = item.device {
            *query_counts.entry(device).or_insert(0) += 1;
        }
    }
    let jobs = jobs.clamp(1, items.len()).min(query_counts.len().max(1));
    let mut devices: Vec<(DeviceId, usize)> = query_counts.into_iter().collect();
    devices.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut load = vec![0usize; jobs];
    let mut worker_of: HashMap<DeviceId, usize> = HashMap::new();
    for (device, count) in devices {
        let worker = (0..jobs).min_by_key(|&i| (load[i], i)).expect("jobs >= 1");
        load[worker] += count;
        worker_of.insert(device, worker);
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); jobs];
    for (idx, item) in items.iter().enumerate() {
        if let Ok(device) = item.device {
            groups[worker_of[&device]].push(idx);
        }
    }

    // Worker-local model maps seeded from the live cache: per-device state
    // crosses into exactly one worker (so seeds move, never clone),
    // preserving sequential semantics.
    let seeded: Vec<HashMap<DeviceId, DeviceCoarseModel>> = groups
        .iter()
        .map(|indices| {
            let mut seed: HashMap<DeviceId, DeviceCoarseModel> = HashMap::new();
            for &idx in indices {
                if let Ok(device) = items[idx].device {
                    if let Some(model) = seeds.remove(&device) {
                        seed.insert(device, model);
                    }
                }
            }
            seed
        })
        .collect();

    // Parallel phase: all workers answer against the same frozen cache. The
    // snapshot carries its epoch stamps, so stale edges stay invisible inside
    // the batch too.
    let mut outputs: Vec<WorkerOutput> = Vec::new();
    outputs.resize_with(jobs, WorkerOutput::default);
    rayon::scope(|scope| {
        for ((indices, seed), out) in groups.iter().zip(seeded).zip(outputs.iter_mut()) {
            if indices.is_empty() {
                continue;
            }
            scope.spawn(move |_| {
                *out = run_worker(engines, store, epochs, items, indices, seed, frozen);
            });
        }
    });

    // Deterministic merge: contributions in query order, models per device.
    let mut answers: Vec<Option<Answer>> = vec![None; items.len()];
    let mut contributions: Vec<BatchContribution> = Vec::new();
    let mut trained: HashMap<DeviceId, DeviceCoarseModel> = HashMap::new();
    for output in outputs {
        for (idx, answer) in output.answers {
            answers[idx] = Some(answer);
        }
        contributions.extend(output.contributions);
        trained.extend(output.models);
    }
    contributions.sort_by_key(|c| c.query_index);

    let answers = answers
        .into_iter()
        .zip(items)
        .map(|(answer, item)| match &item.device {
            Ok(_) => Ok(answer.expect("every resolved query is answered by its worker")),
            Err(e) => Err(e.clone()),
        })
        .collect();
    BatchOutcome {
        answers,
        contributions,
        trained,
    }
}

/// Collects the epoch-live model seeds for the batch items from one live model
/// map (the single-cache deployments; the sharded service gathers seeds from
/// each device's home shard instead).
pub(crate) fn live_seeds(
    engines: &Engines,
    epochs: &dyn EpochRead,
    items: &[BatchItem],
) -> HashMap<DeviceId, DeviceCoarseModel> {
    let models = engines.models.read();
    let mut seeds = HashMap::new();
    for item in items {
        if let Ok(device) = item.device {
            if let Some(entry) = models.get(&device) {
                if entry.epoch == epochs.epoch_of(device) {
                    seeds.entry(device).or_insert_with(|| entry.model.clone());
                }
            }
        }
    }
    seeds
}

/// Applies a batch outcome to a single-cache engine: contributions merge into
/// the global graph in query order, trained models are stamped with the
/// devices' current epochs. (The sharded service routes the same effects to
/// the owner shard of each edge / device instead.)
pub(crate) fn merge_into_engines(
    engines: &Engines,
    epochs: &dyn EpochRead,
    outcome: &BatchOutcome,
) {
    if !outcome.contributions.is_empty() {
        let mut cache = engines.cache.write();
        for contribution in &outcome.contributions {
            cache.merge_local(
                contribution.device,
                &contribution.neighbors,
                contribution.t,
                epochs,
            );
        }
    }
    if !outcome.trained.is_empty() {
        let mut models = engines.models.write();
        for (device, model) in &outcome.trained {
            let epoch = epochs.epoch_of(*device);
            models.insert(
                *device,
                super::epoch::ModelEntry {
                    model: model.clone(),
                    epoch,
                },
            );
        }
    }
}

/// Answers one worker's queries (in query order) against the frozen cache,
/// collecting answers, affinity contributions, and freshly trained models
/// (untouched seed models are not reported back).
fn run_worker(
    engines: &Engines,
    store: &dyn EventRead,
    epochs: &dyn EpochRead,
    items: &[BatchItem],
    indices: &[usize],
    mut models: HashMap<DeviceId, DeviceCoarseModel>,
    cache: Option<&EpochCache>,
) -> WorkerOutput {
    let mut output = WorkerOutput::default();
    let mut trained: std::collections::HashSet<DeviceId> = std::collections::HashSet::new();
    for &idx in indices {
        let item = &items[idx];
        let device = match item.device {
            Ok(device) => device,
            Err(_) => continue,
        };
        let t_q = item.t;
        let (coarse, model_use) = engines.coarse_outcome_in(store, &mut models, device, t_q);
        if model_use == ModelUse::Trained {
            trained.insert(device);
        }
        let answer = match coarse.label {
            CoarseLabel::Outside => assemble_answer(device, t_q, &coarse, None),
            CoarseLabel::Inside(region) => {
                let use_cache = item.eff.cache == CacheMode::Enabled;
                let plan = cache.filter(|_| use_cache).map(|cache| {
                    let neighbors = engines.fine_neighbors(store, &item.eff, device, t_q, region);
                    engines.fine_plan(epochs, device, t_q, &neighbors, cache)
                });
                let (mut fine, _) = engines.fine_exec(store, &item.eff, device, t_q, region, plan);
                let answer = assemble_answer(device, t_q, &coarse, Some((&fine, region)));
                if use_cache && cache.is_some() && !fine.contributions.is_empty() {
                    output.contributions.push(BatchContribution {
                        query_index: idx,
                        device,
                        t: t_q,
                        neighbors: std::mem::take(&mut fine.contributions),
                    });
                }
                answer
            }
        };
        output.answers.push((idx, answer));
    }
    models.retain(|device, _| trained.contains(device));
    output.models = models;
    output
}
