//! Epoch-based cache invalidation for the live service.
//!
//! The caching engine (§5) persists two kinds of derived state across queries:
//! per-device coarse models and the edges of the global affinity graph. Both are
//! pure functions of the event store (plus configuration), so when new events
//! arrive for a device, every cached value derived from that device's history is
//! stale — and *only* those values.
//!
//! The [`EpochTable`] tracks one monotonically increasing counter per device.
//! Every ingested event bumps the counter of the device it belongs to; cached
//! state is stamped with the epochs of the devices it was derived from:
//!
//! * a coarse model for device `d` is stamped with `epoch(d)` at training time
//!   (the model reads only `d`'s own event sequence — see
//!   [`crate::coarse::CoarseLocalizer::train_device_model`]);
//! * an affinity-graph edge `{a, b}` is stamped with `(epoch(a), epoch(b))` at
//!   record time (its weight and cached pairwise affinity are derived from the
//!   two devices' histories).
//!
//! A cached entry is **live** iff its stamp equals the current epochs; stale
//! entries are skipped on read and evicted when the edge is next written (or in
//! bulk by [`EpochCache::purge_stale`]). This replaces the
//! clear-cache-and-rebuild regime: an ingest batch invalidates exactly the state
//! whose inputs changed, and queries over untouched devices keep their warm
//! cache.
//!
//! The frozen [`Locater`](super::Locater) facade uses an [`EpochTable`] that is
//! never bumped, so every stamp stays live forever and the behaviour of the
//! original frozen-store system is preserved bit for bit.

use crate::cache::{edge_key, rank_by_weight, AffinitySample, GlobalAffinityGraph};
use crate::coarse::DeviceCoarseModel;
use crate::fine::NeighborContribution;
use locater_events::clock::Timestamp;
use locater_events::DeviceId;
use std::collections::HashMap;

/// Read access to per-device ingest epochs.
///
/// The caching engine only ever *reads* epochs when checking stamp liveness, so
/// it works against either a single [`EpochTable`] or a sharded view combining
/// the per-shard tables of a [`ShardedLocaterService`](super::ShardedLocaterService)
/// (where the table of a device's home shard is authoritative for it).
pub trait EpochRead: Sync {
    /// The current epoch of a device (0 for devices never bumped).
    fn epoch_of(&self, device: DeviceId) -> u64;
}

impl EpochRead for EpochTable {
    fn epoch_of(&self, device: DeviceId) -> u64 {
        self.of(device)
    }
}

/// Per-device ingest epochs.
///
/// `epoch(d)` starts at 0 and is bumped once per event ingested for `d` (and
/// once per device by bulk invalidations such as
/// [`LocaterService::invalidate_all`](super::LocaterService::invalidate_all)).
/// Devices the table has never seen report epoch 0.
#[derive(Debug, Clone, Default)]
pub struct EpochTable {
    counters: Vec<u64>,
}

impl EpochTable {
    /// Creates an empty table (every device at epoch 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current epoch of a device.
    pub fn of(&self, device: DeviceId) -> u64 {
        self.counters.get(device.index()).copied().unwrap_or(0)
    }

    /// Bumps the epoch of one device, growing the table as needed.
    pub fn bump(&mut self, device: DeviceId) {
        if device.index() >= self.counters.len() {
            self.counters.resize(device.index() + 1, 0);
        }
        self.counters[device.index()] += 1;
    }

    /// Bumps every device up to `num_devices` (bulk invalidation: delta
    /// re-estimation, explicit cache reset).
    pub fn bump_all(&mut self, num_devices: usize) {
        if num_devices > self.counters.len() {
            self.counters.resize(num_devices, 0);
        }
        for counter in &mut self.counters {
            *counter += 1;
        }
    }

    /// Size of the table's backing storage: one more than the highest device
    /// index ever bumped (slots below it may still hold epoch 0).
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` if no epoch has ever been bumped.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
    }
}

/// A cached per-device coarse model plus the device epoch it was trained at.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// The trained model.
    pub model: DeviceCoarseModel,
    /// `epoch(device)` at training time; the entry is live while this matches.
    pub epoch: u64,
}

/// The global affinity graph plus per-edge epoch stamps.
///
/// Reads (`weight`, `cached_pair_affinity`, `order_neighbors`, `samples`) treat
/// stale edges as absent; writes through [`EpochCache::merge_local`] evict a
/// stale edge's samples before recording, so the visible cache state is always
/// exactly what a freshly built system would have accumulated from the same
/// post-invalidation query sequence.
#[derive(Debug, Clone, Default)]
pub struct EpochCache {
    graph: GlobalAffinityGraph,
    stamps: HashMap<(DeviceId, DeviceId), (u64, u64)>,
}

impl EpochCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying affinity graph (stale edges included; use the epoch-aware
    /// accessors for answer-relevant reads).
    pub fn graph(&self) -> &GlobalAffinityGraph {
        &self.graph
    }

    /// The stamp the edge `{a, b}` would carry if recorded now.
    fn current_stamp(a: DeviceId, b: DeviceId, epochs: &dyn EpochRead) -> (u64, u64) {
        let (lo, hi) = edge_key(a, b);
        (epochs.epoch_of(lo), epochs.epoch_of(hi))
    }

    /// `true` if the edge `{a, b}` exists and its stamp matches the current
    /// epochs of both endpoints.
    pub fn is_live(&self, a: DeviceId, b: DeviceId, epochs: &dyn EpochRead) -> bool {
        self.stamps
            .get(&edge_key(a, b))
            .is_some_and(|&stamp| stamp == Self::current_stamp(a, b, epochs))
    }

    /// The live samples cached for the pair `{a, b}` (empty when absent or stale).
    pub fn samples(&self, a: DeviceId, b: DeviceId, epochs: &dyn EpochRead) -> &[AffinitySample] {
        if self.is_live(a, b, epochs) {
            self.graph.samples(a, b)
        } else {
            &[]
        }
    }

    /// Epoch-aware [`GlobalAffinityGraph::weight`]: stale edges weigh 0.
    pub fn weight(&self, a: DeviceId, b: DeviceId, t_q: Timestamp, epochs: &dyn EpochRead) -> f64 {
        if self.is_live(a, b, epochs) {
            self.graph.weight(a, b, t_q)
        } else {
            0.0
        }
    }

    /// Epoch-aware [`GlobalAffinityGraph::cached_pair_affinity`]: stale edges miss.
    pub fn cached_pair_affinity(
        &self,
        a: DeviceId,
        b: DeviceId,
        t_q: Timestamp,
        epochs: &dyn EpochRead,
    ) -> Option<f64> {
        if self.is_live(a, b, epochs) {
            self.graph.cached_pair_affinity(a, b, t_q)
        } else {
            None
        }
    }

    /// Epoch-aware [`GlobalAffinityGraph::order_neighbors`]: candidates are
    /// ranked by decreasing live cached affinity; devices without a live edge
    /// rank last, keeping their relative input order.
    pub fn order_neighbors(
        &self,
        center: DeviceId,
        candidates: &[DeviceId],
        t_q: Timestamp,
        epochs: &dyn EpochRead,
    ) -> Vec<DeviceId> {
        rank_by_weight(candidates, |device| {
            self.weight(center, device, t_q, epochs)
        })
    }

    /// Merges the local affinity graph of one answered query, evicting any edge
    /// whose stamp went stale before recording into it (so stale samples never
    /// mix with fresh ones).
    pub fn merge_local(
        &mut self,
        center: DeviceId,
        contributions: &[NeighborContribution],
        t: Timestamp,
        epochs: &dyn EpochRead,
    ) {
        for contribution in contributions {
            let neighbor = contribution.device;
            if neighbor == center {
                continue;
            }
            let key = edge_key(center, neighbor);
            let stamp = Self::current_stamp(center, neighbor, epochs);
            match self.stamps.get_mut(&key) {
                Some(existing) if *existing == stamp => {}
                Some(existing) => {
                    self.graph.evict_edge(center, neighbor);
                    *existing = stamp;
                }
                None => {
                    self.stamps.insert(key, stamp);
                }
            }
            self.graph.record(
                center,
                neighbor,
                contribution.edge_weight,
                contribution.pair_affinity,
                t,
            );
        }
    }

    /// Number of edges and samples physically held (live *and* stale).
    pub fn stats(&self) -> (usize, usize) {
        (self.graph.num_edges(), self.graph.num_samples())
    }

    /// Number of edges and samples that are live under the given epochs.
    pub fn live_stats(&self, epochs: &dyn EpochRead) -> (usize, usize) {
        let mut edges = 0usize;
        let mut samples = 0usize;
        for (&(a, b), &stamp) in &self.stamps {
            if stamp == Self::current_stamp(a, b, epochs) {
                edges += 1;
                samples += self.graph.samples(a, b).len();
            }
        }
        (edges, samples)
    }

    /// Evicts every stale edge, returning the number of edges removed. Reads
    /// already skip stale edges; this is an optional maintenance sweep that
    /// reclaims their memory eagerly.
    pub fn purge_stale(&mut self, epochs: &dyn EpochRead) -> usize {
        let stale: Vec<(DeviceId, DeviceId)> = self
            .stamps
            .iter()
            .filter(|(&(a, b), &stamp)| stamp != Self::current_stamp(a, b, epochs))
            .map(|(&key, _)| key)
            .collect();
        for &(a, b) in &stale {
            self.graph.evict_edge(a, b);
            self.stamps.remove(&(a, b));
        }
        stale.len()
    }

    /// Moves every stamped edge of `other` into this cache. Used to assemble
    /// the frozen union snapshot of a sharded batch from the per-shard caches,
    /// whose edge sets are disjoint (each edge lives in the cache of the shard
    /// owning its lower endpoint).
    pub fn absorb(&mut self, other: EpochCache) {
        self.graph.absorb(other.graph);
        self.stamps.extend(other.stamps);
    }

    /// Drops every cached edge, live or stale.
    pub fn clear(&mut self) {
        self.graph.clear();
        self.stamps.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_space::RegionId;

    fn contribution(device: u32, weight: f64) -> NeighborContribution {
        NeighborContribution {
            device: DeviceId::new(device),
            region: RegionId::new(0),
            pair_affinity: weight,
            edge_weight: weight,
        }
    }

    #[test]
    fn epochs_start_at_zero_and_bump_per_device() {
        let mut epochs = EpochTable::new();
        let (a, b) = (DeviceId::new(0), DeviceId::new(5));
        assert!(epochs.is_empty());
        assert_eq!(epochs.of(a), 0);
        assert_eq!(epochs.of(b), 0);
        epochs.bump(b);
        assert_eq!(epochs.of(a), 0);
        assert_eq!(epochs.of(b), 1);
        assert_eq!(epochs.len(), 6);
        epochs.bump_all(8);
        assert_eq!(epochs.of(a), 1);
        assert_eq!(epochs.of(b), 2);
        assert_eq!(epochs.of(DeviceId::new(7)), 1);
        assert!(!epochs.is_empty());
    }

    #[test]
    fn ingest_on_either_endpoint_invalidates_the_edge() {
        let mut epochs = EpochTable::new();
        let mut cache = EpochCache::new();
        let (a, b) = (DeviceId::new(1), DeviceId::new(2));
        cache.merge_local(a, &[contribution(2, 0.6)], 100, &epochs);
        assert!(cache.is_live(a, b, &epochs));
        assert!(cache.weight(a, b, 100, &epochs) > 0.0);
        assert!(cache.cached_pair_affinity(a, b, 100, &epochs).is_some());

        epochs.bump(b);
        assert!(!cache.is_live(a, b, &epochs));
        assert_eq!(cache.weight(a, b, 100, &epochs), 0.0);
        assert!(cache.cached_pair_affinity(a, b, 100, &epochs).is_none());
        assert!(cache.samples(a, b, &epochs).is_empty());
        // Physically still present until purged or rewritten.
        assert_eq!(cache.stats().0, 1);
        assert_eq!(cache.live_stats(&epochs).0, 0);
    }

    #[test]
    fn rewrite_of_a_stale_edge_evicts_old_samples_first() {
        let mut epochs = EpochTable::new();
        let mut cache = EpochCache::new();
        let (a, b) = (DeviceId::new(1), DeviceId::new(2));
        cache.merge_local(a, &[contribution(2, 0.9)], 100, &epochs);
        cache.merge_local(a, &[contribution(2, 0.9)], 200, &epochs);
        assert_eq!(cache.stats().1, 2);

        epochs.bump(a);
        cache.merge_local(a, &[contribution(2, 0.1)], 300, &epochs);
        // Only the fresh sample remains: stale history must not leak into the
        // temporally weighted affinity.
        assert_eq!(cache.samples(a, b, &epochs).len(), 1);
        assert!((cache.weight(a, b, 300, &epochs) - 0.1).abs() < 1e-9);
        assert!(cache.is_live(a, b, &epochs));
    }

    #[test]
    fn untouched_edges_stay_live() {
        let mut epochs = EpochTable::new();
        let mut cache = EpochCache::new();
        let (a, b, c) = (DeviceId::new(1), DeviceId::new(2), DeviceId::new(3));
        cache.merge_local(a, &[contribution(2, 0.5)], 100, &epochs);
        cache.merge_local(b, &[contribution(3, 0.5)], 100, &epochs);
        epochs.bump(a);
        assert!(!cache.is_live(a, b, &epochs));
        assert!(cache.is_live(b, c, &epochs));
        assert_eq!(cache.live_stats(&epochs), (1, 1));
        assert_eq!(cache.purge_stale(&epochs), 1);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn order_neighbors_ignores_stale_edges() {
        let mut epochs = EpochTable::new();
        let mut cache = EpochCache::new();
        let center = DeviceId::new(0);
        cache.merge_local(
            center,
            &[contribution(5, 0.9), contribution(7, 0.4)],
            10,
            &epochs,
        );
        let candidates = [DeviceId::new(7), DeviceId::new(5), DeviceId::new(9)];
        let order = cache.order_neighbors(center, &candidates, 10, &epochs);
        assert_eq!(order[0], DeviceId::new(5));

        // Staling device 5's edge demotes it to input order (all weights 0 for
        // 5 and 9, 7 still live).
        epochs.bump(DeviceId::new(5));
        let order = cache.order_neighbors(center, &candidates, 10, &epochs);
        assert_eq!(order[0], DeviceId::new(7));
        assert_eq!(order[1], DeviceId::new(5));
        assert_eq!(order[2], DeviceId::new(9));
    }

    #[test]
    fn clear_drops_everything() {
        let epochs = EpochTable::new();
        let mut cache = EpochCache::new();
        cache.merge_local(DeviceId::new(0), &[contribution(1, 0.5)], 10, &epochs);
        cache.clear();
        assert_eq!(cache.stats(), (0, 0));
        assert_eq!(cache.live_stats(&epochs), (0, 0));
    }
}
