//! The LOCATER system facade (paper §5): query engine + cleaning engine + caching
//! engine behind the query API `Q = (device, time)`.
//!
//! Two entry points share one engine:
//!
//! * [`LocaterService`] — the **live service**: owns a *mutable* event store,
//!   ingests connectivity events while answering queries, and keeps the caching
//!   engine correct through per-device epoch invalidation ([`epoch`]). Queries
//!   go through the typed request/response layer ([`request`]):
//!   [`LocateRequest`] → [`LocateResponse`].
//! * [`Locater`] — the **frozen facade** over an immutable dataset, the
//!   original `Locater::new(store, config)` API. Retained for offline
//!   evaluation and benchmarks; new code that needs ingestion should use
//!   [`LocaterService`] (or convert with [`Locater::into_service`]).
//!
//! Answering a query runs in two steps:
//!
//! 1. the **coarse** step ([`crate::coarse`]) decides whether the device was outside
//!    the building at the query time or inside a specific region — either trivially
//!    (a connectivity event is valid at that time) or by classifying the gap;
//! 2. the **fine** step ([`crate::fine`]) disambiguates the region to a room, using
//!    room and group affinities of the devices online around the query time;
//!
//! and the **caching engine** ([`crate::cache`]) persists the pairwise affinities
//! computed for the answer into the global affinity graph and uses it to order
//! neighbor processing for subsequent queries. Per-device coarse models are
//! trained lazily and cached; they are refreshed when a query falls outside the
//! window the model was trained for — or when ingestion bumps the device's
//! epoch ([`epoch`]).

pub mod batch;
pub mod epoch;
pub mod request;
pub mod service;
pub mod shard;

pub use epoch::{EpochCache, EpochRead, EpochTable, ModelEntry};
pub use request::{LocateRequest, LocateResponse};
pub use service::LocaterService;
pub use shard::{CompactionStatus, ShardStats, ShardedLocaterService, WalStatus};

use crate::coarse::{CoarseConfig, CoarseMethod, CoarseOutcome};
use crate::error::LocaterError;
use crate::fine::{FineConfig, FineOutcome};
use locater_events::clock::{self, Timestamp};
use locater_events::DeviceId;
use locater_space::{RegionId, RoomId};
use locater_store::EventStore;
use serde::{Deserialize, Serialize};
use service::{resolve_target, Engines};
use std::time::Duration;

pub use crate::fine::FineMode;

/// Whether the caching engine (global affinity graph) is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CacheMode {
    /// Affinities are cached and used to order neighbor processing (`+C` systems).
    #[default]
    Enabled,
    /// Every query recomputes affinities and processes neighbors in natural order.
    Disabled,
}

/// A location query `Q = (d_i, t_q)`.
///
/// The legacy query form of the frozen [`Locater`] facade. The live-service
/// equivalent is [`LocateRequest`], which adds per-request overrides;
/// [`LocateRequest::from_query`] converts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Device MAC address / log identifier, if the caller knows it.
    pub mac: Option<String>,
    /// Already-resolved device id, if the caller has one.
    pub device: Option<DeviceId>,
    /// Query time.
    pub t: Timestamp,
}

impl Query {
    /// Query by MAC address.
    pub fn by_mac(mac: impl Into<String>, t: Timestamp) -> Self {
        Self {
            mac: Some(mac.into()),
            device: None,
            t,
        }
    }

    /// Query by device id.
    pub fn by_device(device: DeviceId, t: Timestamp) -> Self {
        Self {
            mac: None,
            device: Some(device),
            t,
        }
    }
}

/// A semantic location at one of the three granularities of the space model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Location {
    /// Outside the building.
    Outside,
    /// Inside the building, in this region, room unknown (coarse-only answers).
    Region(RegionId),
    /// Inside the building, in this room of this region.
    Room {
        /// The selected room.
        room: RoomId,
        /// The region the room was selected from.
        region: RegionId,
    },
}

impl Location {
    /// `true` if the location is inside the building.
    pub fn is_inside(&self) -> bool {
        !matches!(self, Location::Outside)
    }

    /// The region, if inside.
    pub fn region(&self) -> Option<RegionId> {
        match self {
            Location::Outside => None,
            Location::Region(region) => Some(*region),
            Location::Room { region, .. } => Some(*region),
        }
    }

    /// The room, if resolved to room level.
    pub fn room(&self) -> Option<RoomId> {
        match self {
            Location::Room { room, .. } => Some(*room),
            _ => None,
        }
    }
}

/// The answer to a [`Query`] / [`LocateRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Answer {
    /// The resolved device.
    pub device: DeviceId,
    /// The query time.
    pub t: Timestamp,
    /// The cleaned semantic location.
    pub location: Location,
    /// How the coarse step decided the building/region label.
    pub coarse_method: CoarseMethod,
    /// Combined confidence of the answer in `[0, 1]`.
    pub confidence: f64,
}

impl Answer {
    /// `true` if the device was located inside the building.
    pub fn is_inside(&self) -> bool {
        self.location.is_inside()
    }

    /// `true` if the device was located outside the building.
    pub fn is_outside(&self) -> bool {
        !self.is_inside()
    }

    /// The region, if inside.
    pub fn region(&self) -> Option<RegionId> {
        self.location.region()
    }

    /// The room, if resolved to room level.
    pub fn room(&self) -> Option<RoomId> {
        self.location.room()
    }
}

/// Diagnostics collected while answering one query; used by the evaluation
/// harness and returned to [`LocateRequest::with_diagnostics`] callers.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryDiagnostics {
    /// Outcome of the coarse step.
    pub coarse: CoarseOutcome,
    /// Outcome of the fine step (absent for outside answers).
    pub fine: Option<FineOutcome>,
    /// Wall-clock time spent answering the query.
    pub elapsed: Duration,
    /// Whether a cached per-device coarse model was reused.
    pub coarse_model_reused: bool,
    /// Whether the global affinity graph already had a live edge for the
    /// queried device.
    pub cache_warm: bool,
}

/// Configuration of the full LOCATER system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocaterConfig {
    /// Coarse-grained localization parameters (§3).
    pub coarse: CoarseConfig,
    /// Fine-grained localization parameters (§4).
    pub fine: FineConfig,
    /// Whether the caching engine is active (§5).
    pub cache: CacheMode,
    /// A cached per-device coarse model is reused as long as the query time is within
    /// this many seconds after the end of the window it was trained on.
    pub model_refresh_slack: Timestamp,
}

impl Default for LocaterConfig {
    fn default() -> Self {
        Self {
            coarse: CoarseConfig::default(),
            fine: FineConfig::default(),
            cache: CacheMode::Enabled,
            model_refresh_slack: clock::days(7),
        }
    }
}

impl LocaterConfig {
    /// Returns a copy configured for the given fine-grained mode (I-FINE / D-FINE).
    pub fn with_fine_mode(mut self, mode: FineMode) -> Self {
        self.fine.mode = mode;
        self
    }

    /// Returns a copy with the caching engine enabled or disabled.
    pub fn with_cache(mut self, cache: CacheMode) -> Self {
        self.cache = cache;
        self
    }

    /// Returns a copy with the given amount of history: both the coarse
    /// training history and the fine affinity window are set to it, whether
    /// that widens or narrows them (Fig. 8 varies both together). Used by the
    /// Fig. 8 experiment.
    pub fn with_history(mut self, history: Timestamp) -> Self {
        self.coarse.history = history.max(1);
        self.fine.affinity_window = history.max(1);
        self
    }
}

/// The frozen LOCATER facade: cleaning engine + caching engine over one
/// **immutable** event store.
///
/// This is the original `Locater::new(store, config)` API, kept for offline
/// evaluation, benchmarks and any workload whose dataset does not grow. For a
/// long-running deployment that ingests events while serving queries, use
/// [`LocaterService`] — or convert an existing instance with
/// [`Locater::into_service`], which carries the store, configuration and all
/// cached state over.
#[derive(Debug)]
pub struct Locater {
    store: EventStore,
    // Never bumped: the dataset is frozen, so every cached stamp stays live and
    // the engine behaves exactly like the original clear-cache-only system.
    epochs: EpochTable,
    engines: Engines,
}

impl Locater {
    /// Creates a system over `store` with the given configuration.
    pub fn new(store: EventStore, config: LocaterConfig) -> Self {
        Self {
            store,
            epochs: EpochTable::new(),
            engines: Engines::new(config),
        }
    }

    /// The underlying event store.
    pub fn store(&self) -> &EventStore {
        &self.store
    }

    /// The system configuration.
    pub fn config(&self) -> &LocaterConfig {
        &self.engines.config
    }

    /// Number of edges and samples currently held by the caching engine.
    pub fn cache_stats(&self) -> (usize, usize) {
        self.engines.cache.read().stats()
    }

    /// Drops all cached affinities and per-device coarse models.
    pub fn clear_cache(&self) {
        self.engines.clear_cache();
    }

    /// Resolves the device a query refers to.
    pub fn resolve(&self, query: &Query) -> Result<DeviceId, LocaterError> {
        resolve_target(&self.store, query.mac.as_deref(), query.device)
    }

    /// Answers a query.
    pub fn locate(&self, query: &Query) -> Result<Answer, LocaterError> {
        self.locate_detailed(query).map(|(answer, _)| answer)
    }

    /// Answers a query and returns per-query diagnostics alongside the answer.
    pub fn locate_detailed(
        &self,
        query: &Query,
    ) -> Result<(Answer, QueryDiagnostics), LocaterError> {
        let device = self.resolve(query)?;
        let eff = self.engines.effective_base();
        Ok(self
            .engines
            .locate_detailed(&self.store, &self.epochs, device, query.t, &eff))
    }

    /// Answers a batch of queries, sharded across `jobs` worker threads.
    ///
    /// Results are **identical for every `jobs` value** (including the
    /// sequential `jobs = 1` path) and are returned in query order; see
    /// [`batch`] for how the pipeline achieves this.
    pub fn locate_batch(
        &self,
        queries: &[Query],
        jobs: usize,
    ) -> Vec<Result<Answer, LocaterError>> {
        let eff = self.engines.effective_base();
        let items: Vec<batch::BatchItem> = queries
            .iter()
            .map(|query| batch::BatchItem {
                t: query.t,
                device: self.resolve(query),
                eff,
            })
            .collect();
        let seeds = batch::live_seeds(&self.engines, &self.epochs, &items);
        let frozen = batch::wants_cache(&items).then(|| self.engines.cache.read().clone());
        let outcome = batch::run_batch(
            &self.engines,
            &self.store,
            &self.epochs,
            &items,
            jobs,
            seeds,
            frozen.as_ref(),
        );
        batch::merge_into_engines(&self.engines, &self.epochs, &outcome);
        outcome.answers
    }

    /// Converts this frozen facade into a live [`LocaterService`], carrying the
    /// store, configuration and all cached state over. The dataset becomes
    /// mutable from here on.
    pub fn into_service(self) -> LocaterService {
        LocaterService::from_parts(self.store, self.engines)
    }
}

/// Builds the [`Answer`] for one query from its coarse (and, when inside, fine)
/// outcomes — the single place the answer/confidence composition lives, shared
/// by the single-query and batch paths.
pub(crate) fn assemble_answer(
    device: DeviceId,
    t_q: Timestamp,
    coarse: &CoarseOutcome,
    fine: Option<(&FineOutcome, RegionId)>,
) -> Answer {
    match fine {
        None => Answer {
            device,
            t: t_q,
            location: Location::Outside,
            coarse_method: coarse.method,
            confidence: coarse.confidence,
        },
        Some((fine, region)) => Answer {
            device,
            t: t_q,
            location: Location::Room {
                room: fine.room,
                region,
            },
            coarse_method: coarse.method,
            confidence: coarse.confidence * fine.confidence(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_space::{RoomType, Space, SpaceBuilder};

    fn space() -> Space {
        SpaceBuilder::new("system-test")
            .add_access_point("wap0", &["office-a", "office-b", "lounge"])
            .add_access_point("wap1", &["lounge", "lab"])
            .room_type("lounge", RoomType::Public)
            .room_owner("office-a", "alice")
            .room_owner("office-b", "bob")
            .build()
            .unwrap()
    }

    /// Alice and Bob work together on wap0 on weekdays for `weeks` weeks.
    fn office_store(weeks: i64) -> EventStore {
        let mut store = EventStore::new(space());
        for week in 0..weeks {
            for day in 0..5 {
                let d = week * 7 + day;
                for slot in 0..16 {
                    let t = clock::at(d, 9, slot * 30, 0);
                    store.ingest_raw("alice", t, "wap0").unwrap();
                    store.ingest_raw("bob", t + 45, "wap0").unwrap();
                }
            }
        }
        store
    }

    #[test]
    fn query_resolution_by_mac_and_id() {
        let locater = Locater::new(office_store(1), LocaterConfig::default());
        let alice = locater.store().device_id("alice").unwrap();
        assert_eq!(locater.resolve(&Query::by_mac("alice", 0)).unwrap(), alice);
        assert_eq!(locater.resolve(&Query::by_device(alice, 0)).unwrap(), alice);
        assert!(matches!(
            locater.resolve(&Query::by_mac("nobody", 0)),
            Err(LocaterError::UnknownDevice(_))
        ));
        assert!(matches!(
            locater.resolve(&Query::by_device(DeviceId::new(99), 0)),
            Err(LocaterError::UnknownDevice(_))
        ));
        assert!(matches!(
            locater.resolve(&Query {
                mac: None,
                device: None,
                t: 0
            }),
            Err(LocaterError::MissingDevice)
        ));
    }

    #[test]
    fn covered_query_resolves_to_a_room_in_the_covering_region() {
        let locater = Locater::new(office_store(2), LocaterConfig::default());
        let t_q = clock::at(8, 9, 5, 10);
        let answer = locater.locate(&Query::by_mac("alice", t_q)).unwrap();
        assert!(answer.is_inside());
        assert_eq!(answer.coarse_method, CoarseMethod::CoveredByEvent);
        let region = answer.region().unwrap();
        assert_eq!(region, RegionId::new(0));
        let room = answer.room().unwrap();
        assert!(locater
            .store()
            .space()
            .rooms_in_region(region)
            .contains(&room));
        assert!(answer.confidence > 0.0);
    }

    #[test]
    fn overnight_query_is_outside() {
        let locater = Locater::new(office_store(4), LocaterConfig::default());
        let t_q = clock::at(22, 3, 0, 0);
        let answer = locater.locate(&Query::by_mac("alice", t_q)).unwrap();
        assert!(answer.is_outside());
        assert_eq!(answer.location, Location::Outside);
        assert_eq!(answer.room(), None);
        assert_eq!(answer.region(), None);
    }

    #[test]
    fn out_of_span_query_is_outside() {
        let locater = Locater::new(office_store(1), LocaterConfig::default());
        let answer = locater
            .locate(&Query::by_mac("alice", clock::at(400, 12, 0, 0)))
            .unwrap();
        assert!(answer.is_outside());
        assert_eq!(answer.coarse_method, CoarseMethod::OutOfSpan);
    }

    #[test]
    fn coarse_models_are_cached_and_reused() {
        let locater = Locater::new(office_store(4), LocaterConfig::default());
        // A query in a short mid-day gap on the last week.
        let t_q = clock::at(22, 9, 20, 10);
        let (_, first) = locater
            .locate_detailed(&Query::by_mac("alice", t_q))
            .unwrap();
        let (_, second) = locater
            .locate_detailed(&Query::by_mac("alice", t_q + 60))
            .unwrap();
        // The first gap-classifying query trains the model; the second reuses it
        // (covered queries never touch the model, so pick gap times).
        if first.coarse.gap.is_some() && second.coarse.gap.is_some() {
            assert!(!first.coarse_model_reused);
            assert!(second.coarse_model_reused);
        }
    }

    #[test]
    fn caching_engine_accumulates_edges_across_queries() {
        let locater = Locater::new(office_store(3), LocaterConfig::default());
        assert_eq!(locater.cache_stats(), (0, 0));
        // Alice is covered at this time and Bob is online nearby: the fine step runs
        // and produces contributions.
        let t_q = clock::at(15, 9, 30, 20);
        let (_, diag) = locater
            .locate_detailed(&Query::by_mac("alice", t_q))
            .unwrap();
        assert!(diag.fine.is_some());
        let (edges, samples) = locater.cache_stats();
        assert!(edges >= 1, "expected cached edges after a fine query");
        assert!(samples >= 1);
        // The second query sees a warm cache.
        let (_, diag2) = locater
            .locate_detailed(&Query::by_mac("alice", t_q + 120))
            .unwrap();
        assert!(diag2.cache_warm);
        locater.clear_cache();
        assert_eq!(locater.cache_stats(), (0, 0));
    }

    #[test]
    fn disabled_cache_never_stores_affinities() {
        let config = LocaterConfig::default().with_cache(CacheMode::Disabled);
        let locater = Locater::new(office_store(3), config);
        let t_q = clock::at(15, 9, 30, 20);
        let _ = locater.locate(&Query::by_mac("alice", t_q)).unwrap();
        assert_eq!(locater.cache_stats(), (0, 0));
    }

    #[test]
    fn config_builders_adjust_modes() {
        let config = LocaterConfig::default()
            .with_fine_mode(FineMode::Dependent)
            .with_cache(CacheMode::Disabled)
            .with_history(clock::weeks(2));
        assert_eq!(config.fine.mode, FineMode::Dependent);
        assert_eq!(config.cache, CacheMode::Disabled);
        assert_eq!(config.coarse.history, clock::weeks(2));
        let locater = Locater::new(office_store(2), config);
        let answer = locater
            .locate(&Query::by_mac("bob", clock::at(8, 9, 30, 10)))
            .unwrap();
        assert!(answer.is_inside());
    }

    #[test]
    fn with_history_widens_and_narrows_both_windows() {
        let default_window = FineConfig::default().affinity_window;

        // Narrower than the default affinity window (3 weeks): both shrink.
        let narrow = LocaterConfig::default().with_history(clock::weeks(1));
        assert_eq!(narrow.coarse.history, clock::weeks(1));
        assert_eq!(narrow.fine.affinity_window, clock::weeks(1));
        assert!(narrow.fine.affinity_window < default_window);

        // Wider than the default: the fine window must *widen* too (a past bug
        // clamped it down to the default, so Fig. 8's long-history points never
        // saw a wider affinity window).
        let wide = LocaterConfig::default().with_history(clock::weeks(10));
        assert_eq!(wide.coarse.history, clock::weeks(10));
        assert_eq!(wide.fine.affinity_window, clock::weeks(10));
        assert!(wide.fine.affinity_window > default_window);

        // Degenerate input is clamped to at least one second.
        let floor = LocaterConfig::default().with_history(0);
        assert_eq!(floor.coarse.history, 1);
        assert_eq!(floor.fine.affinity_window, 1);
    }

    /// A mixed batch workload over the office store: covered instants, gaps,
    /// out-of-span times, and an unknown device.
    fn batch_queries() -> Vec<Query> {
        let mut queries = Vec::new();
        for day in 10..20 {
            for (mac, minute) in [("alice", 5), ("bob", 20), ("alice", 40)] {
                queries.push(Query::by_mac(mac, clock::at(day, 9, minute, 10)));
                queries.push(Query::by_mac(mac, clock::at(day, 13, minute, 0)));
                queries.push(Query::by_mac(mac, clock::at(day, 3, minute, 0)));
            }
        }
        queries.push(Query::by_mac("ghost", clock::at(12, 9, 0, 0)));
        queries.push(Query::by_mac("alice", clock::at(400, 9, 0, 0)));
        queries
    }

    #[test]
    fn locate_batch_is_identical_across_job_counts() {
        let queries = batch_queries();
        let baseline = Locater::new(office_store(4), LocaterConfig::default());
        let sequential = baseline.locate_batch(&queries, 1);
        for jobs in [2, 3, 8, 64] {
            let locater = Locater::new(office_store(4), LocaterConfig::default());
            let parallel = locater.locate_batch(&queries, jobs);
            assert_eq!(sequential, parallel, "jobs={jobs} diverged from jobs=1");
        }
    }

    #[test]
    fn locate_batch_preserves_query_order_and_errors() {
        let locater = Locater::new(office_store(3), LocaterConfig::default());
        let queries = batch_queries();
        let results = locater.locate_batch(&queries, 4);
        assert_eq!(results.len(), queries.len());
        for (query, result) in queries.iter().zip(&results) {
            match result {
                Ok(answer) => assert_eq!(answer.t, query.t),
                Err(e) => assert!(matches!(e, LocaterError::UnknownDevice(_))),
            }
        }
        // The ghost query errors in place; its neighbors are still answered.
        let ghost = queries
            .iter()
            .position(|q| q.mac.as_deref() == Some("ghost"));
        assert!(results[ghost.unwrap()].is_err());
        assert!(results.iter().filter(|r| r.is_ok()).count() >= queries.len() - 1);
    }

    #[test]
    fn locate_batch_warms_cache_and_models_afterwards() {
        let locater = Locater::new(office_store(3), LocaterConfig::default());
        assert_eq!(locater.cache_stats(), (0, 0));
        let queries: Vec<Query> = (0..8)
            .map(|i| Query::by_mac("alice", clock::at(15, 9, 30, 20 + i)))
            .collect();
        let results = locater.locate_batch(&queries, 2);
        assert!(results.iter().all(Result::is_ok));
        let (edges, samples) = locater.cache_stats();
        assert!(
            edges >= 1,
            "batch contributions must reach the global graph"
        );
        assert!(samples >= 1);
    }

    #[test]
    fn locate_batch_with_cache_disabled_stores_nothing() {
        let config = LocaterConfig::default().with_cache(CacheMode::Disabled);
        let locater = Locater::new(office_store(3), config);
        let queries = batch_queries();
        let results = locater.locate_batch(&queries, 4);
        assert!(results.iter().any(Result::is_ok));
        assert_eq!(locater.cache_stats(), (0, 0));
    }

    #[test]
    fn locate_batch_on_empty_input_is_empty() {
        let locater = Locater::new(office_store(1), LocaterConfig::default());
        assert!(locater.locate_batch(&[], 4).is_empty());
    }

    #[test]
    fn location_accessors() {
        let outside = Location::Outside;
        assert!(!outside.is_inside());
        assert_eq!(outside.room(), None);
        let region = Location::Region(RegionId::new(2));
        assert!(region.is_inside());
        assert_eq!(region.region(), Some(RegionId::new(2)));
        assert_eq!(region.room(), None);
        let room = Location::Room {
            room: RoomId::new(5),
            region: RegionId::new(2),
        };
        assert_eq!(room.room(), Some(RoomId::new(5)));
        assert_eq!(room.region(), Some(RegionId::new(2)));
    }
}
