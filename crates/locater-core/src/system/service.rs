//! The live [`LocaterService`]: online ingestion + query answering over one
//! mutable event store, and the shared query engine both it and the frozen
//! [`Locater`](super::Locater) facade delegate to.
//!
//! ## Lifecycle
//!
//! 1. **build** — construct the service over an initial (possibly empty) store;
//! 2. **serve** — answer [`LocateRequest`]s concurrently from many threads;
//! 3. **ingest** — append live events through [`LocaterService::ingest`] /
//!    [`LocaterService::ingest_batch`]; each appended event bumps its device's
//!    epoch;
//! 4. **invalidate** — nothing to do: the epoch bump makes exactly the cached
//!    state derived from the touched device stale (see [`super::epoch`]), and
//!    the next query over that device recomputes it.
//!
//! Concurrency: the store sits behind a `parking_lot::RwLock`. Queries hold a
//! read lock for their duration (so many run in parallel); an ingest takes the
//! write lock only for the appends themselves — one O(log n) append for
//! [`LocaterService::ingest`], the whole batch for
//! [`LocaterService::ingest_batch`] (which is what makes its
//! keep-prefix-on-error semantics atomic; chunk very large backfills if
//! queries must not stall behind them) — never for model training or affinity
//! scans.

use super::epoch::{EpochCache, EpochRead, ModelEntry};
use super::request::{LocateRequest, LocateResponse};
use super::shard::ShardedLocaterService;
use super::{assemble_answer, Answer, CacheMode, LocaterConfig, QueryDiagnostics};
use crate::coarse::{CoarseLabel, CoarseLocalizer, CoarseMethod, CoarseOutcome, DeviceCoarseModel};
use crate::error::LocaterError;
use crate::fine::{FineConfig, FineLocalizer, FineOutcome};
use locater_events::clock::Timestamp;
use locater_events::{DeviceId, EventId, Gap};
use locater_space::RegionId;
use locater_store::{EventRead, EventStore, IngestError, RawEvent};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::time::Instant;

/// The engine state shared by the frozen facade and the live service: the
/// configuration, the two localizers, the epoch-stamped caching engine, and the
/// per-device coarse model cache.
#[derive(Debug)]
pub(crate) struct Engines {
    pub(crate) config: LocaterConfig,
    pub(crate) coarse: CoarseLocalizer,
    pub(crate) fine: FineLocalizer,
    pub(crate) cache: RwLock<EpochCache>,
    pub(crate) models: RwLock<HashMap<DeviceId, ModelEntry>>,
}

/// The per-request view of the engine configuration: the fine localizer to run
/// and whether the caching engine may be consulted. Computed once per request
/// from the service config plus the request overrides.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Effective {
    pub(crate) fine: FineLocalizer,
    pub(crate) cache: CacheMode,
}

/// Resolves a (mac, device-id) target against a store.
pub(crate) fn resolve_target(
    store: &dyn EventRead,
    mac: Option<&str>,
    device: Option<DeviceId>,
) -> Result<DeviceId, LocaterError> {
    if let Some(device) = device {
        if device.index() < store.num_devices() {
            return Ok(device);
        }
        return Err(LocaterError::UnknownDevice(device.to_string()));
    }
    match mac {
        Some(mac) => store
            .device_id(mac)
            .ok_or_else(|| LocaterError::UnknownDevice(mac.to_string())),
        None => Err(LocaterError::MissingDevice),
    }
}

/// How the coarse step used the model map for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ModelUse {
    /// The query was answered without a model (covered / out of span).
    NotNeeded,
    /// A cached model was still valid and reused.
    Reused,
    /// A model was (re)trained for this query.
    Trained,
}

/// The graph-derived inputs of one fine-step execution: neighbor processing
/// order, cached pairwise affinities, and whether the graph was warm for the
/// queried device. Extracted under the graph lock; executed lock-free.
pub(crate) struct FinePlan {
    pub(crate) order: Vec<DeviceId>,
    pub(crate) cached: HashMap<DeviceId, f64>,
    pub(crate) warm: bool,
}

/// Outcome of the model-free coarse checks: a trivial answer, or the gap that
/// needs model-based classification.
enum CoarseShortcut {
    Trivial(CoarseOutcome),
    Gap(Gap),
}

impl Engines {
    pub(crate) fn new(config: LocaterConfig) -> Self {
        Self {
            config,
            coarse: CoarseLocalizer::new(config.coarse),
            fine: FineLocalizer::new(config.fine),
            cache: RwLock::new(EpochCache::new()),
            models: RwLock::new(HashMap::new()),
        }
    }

    /// The per-request engine view with no overrides applied.
    pub(crate) fn effective_base(&self) -> Effective {
        Effective {
            fine: self.fine,
            cache: self.config.cache,
        }
    }

    /// The per-request engine view for one request's overrides.
    pub(crate) fn effective_for(&self, request: &LocateRequest) -> Effective {
        let fine = match request.fine_mode {
            Some(mode) if mode != self.config.fine.mode => FineLocalizer::new(FineConfig {
                mode,
                ..self.config.fine
            }),
            _ => self.fine,
        };
        Effective {
            fine,
            cache: request.cache.unwrap_or(self.config.cache),
        }
    }

    /// Drops all cached affinities and per-device coarse models.
    pub(crate) fn clear_cache(&self) {
        self.cache.write().clear();
        self.models.write().clear();
    }

    /// Answers one query, returning the answer and per-query diagnostics.
    pub(crate) fn locate_detailed(
        &self,
        store: &dyn EventRead,
        epochs: &dyn EpochRead,
        device: DeviceId,
        t_q: Timestamp,
        eff: &Effective,
    ) -> (Answer, QueryDiagnostics) {
        let start = Instant::now();

        // ---- Coarse step --------------------------------------------------
        let (coarse, model_reused) = self.coarse_outcome(store, epochs, device, t_q);
        let region = match coarse.label {
            CoarseLabel::Outside => {
                let answer = assemble_answer(device, t_q, &coarse, None);
                let diagnostics = QueryDiagnostics {
                    coarse,
                    fine: None,
                    elapsed: start.elapsed(),
                    coarse_model_reused: model_reused,
                    cache_warm: false,
                };
                return (answer, diagnostics);
            }
            CoarseLabel::Inside(region) => region,
        };

        // ---- Fine step ----------------------------------------------------
        // The neighbor scan and the fine localization both run lock-free; the
        // graph read lock covers only the plan extraction between them.
        let plan = match eff.cache {
            CacheMode::Enabled => {
                let neighbors = self.fine_neighbors(store, eff, device, t_q, region);
                let cache = self.cache.read();
                Some(self.fine_plan(epochs, device, t_q, &neighbors, &cache))
            }
            CacheMode::Disabled => None,
        };
        let (fine, cache_warm) = self.fine_exec(store, eff, device, t_q, region, plan);
        if eff.cache == CacheMode::Enabled && !fine.contributions.is_empty() {
            self.cache
                .write()
                .merge_local(device, &fine.contributions, t_q, epochs);
        }

        let answer = assemble_answer(device, t_q, &coarse, Some((&fine, region)));
        let diagnostics = QueryDiagnostics {
            coarse,
            fine: Some(fine),
            elapsed: start.elapsed(),
            coarse_model_reused: model_reused,
            cache_warm,
        };
        (answer, diagnostics)
    }

    /// Runs the coarse step, reusing the cached per-device model when it is
    /// still epoch-live and covers the query time. Returns the outcome and
    /// whether the model was reused.
    ///
    /// Lock discipline is read-mostly: the reuse check and classification take
    /// read locks, and expensive model training happens outside any lock, so
    /// concurrent `locate` callers with warm models never serialize.
    pub(crate) fn coarse_outcome(
        &self,
        store: &dyn EventRead,
        epochs: &dyn EpochRead,
        device: DeviceId,
        t_q: Timestamp,
    ) -> (CoarseOutcome, bool) {
        let gap = match self.coarse_shortcut(store, device, t_q) {
            CoarseShortcut::Trivial(outcome) => return (outcome, false),
            CoarseShortcut::Gap(gap) => gap,
        };
        let epoch = epochs.epoch_of(device);
        {
            let models = self.models.read();
            if let Some(entry) = models.get(&device) {
                if entry.epoch == epoch && self.model_covers(&entry.model, t_q) {
                    return (
                        self.coarse.classify_with_model(store, &entry.model, &gap),
                        true,
                    );
                }
            }
        }
        // Classify with the model just trained — never a re-read of the shared
        // map, which a concurrent query for the same device at a different
        // time could have overwritten with a model that does not cover `t_q`.
        let model = self.coarse.train_device_model(store, device, t_q);
        let outcome = self.coarse.classify_with_model(store, &model, &gap);
        self.models
            .write()
            .insert(device, ModelEntry { model, epoch });
        (outcome, false)
    }

    /// `true` if a cached model is still valid for a query at `t_q` (time
    /// coverage only; epoch liveness is checked by the callers).
    pub(crate) fn model_covers(&self, model: &DeviceCoarseModel, t_q: Timestamp) -> bool {
        t_q >= model.history.start && t_q <= model.history.end + self.config.model_refresh_slack
    }

    /// The model-free coarse answers (covered by an event, out of the log
    /// span), or the gap that needs model-based classification.
    fn coarse_shortcut(
        &self,
        store: &dyn EventRead,
        device: DeviceId,
        t_q: Timestamp,
    ) -> CoarseShortcut {
        if let Some(region) = store.covering_region(device, t_q) {
            return CoarseShortcut::Trivial(CoarseOutcome {
                label: CoarseLabel::Inside(region),
                method: CoarseMethod::CoveredByEvent,
                confidence: 1.0,
                gap: None,
            });
        }
        match store.gap_at(device, t_q) {
            Some(gap) => CoarseShortcut::Gap(gap),
            None => CoarseShortcut::Trivial(CoarseOutcome {
                label: CoarseLabel::Outside,
                method: CoarseMethod::OutOfSpan,
                confidence: 1.0,
                gap: None,
            }),
        }
    }

    /// Runs the coarse step against an explicit model map (a shard-local map in
    /// the batch pipeline). Returns the outcome and how the model map was used,
    /// so callers can tell freshly trained models from untouched seeds.
    pub(crate) fn coarse_outcome_in(
        &self,
        store: &dyn EventRead,
        models: &mut HashMap<DeviceId, DeviceCoarseModel>,
        device: DeviceId,
        t_q: Timestamp,
    ) -> (CoarseOutcome, ModelUse) {
        let gap = match self.coarse_shortcut(store, device, t_q) {
            CoarseShortcut::Trivial(outcome) => return (outcome, ModelUse::NotNeeded),
            CoarseShortcut::Gap(gap) => gap,
        };
        let reused = models
            .get(&device)
            .is_some_and(|model| self.model_covers(model, t_q));
        if !reused {
            let model = self.coarse.train_device_model(store, device, t_q);
            models.insert(device, model);
        }
        let model = models
            .get(&device)
            .expect("model was inserted above if missing");
        let outcome = self.coarse.classify_with_model(store, model, &gap);
        let usage = if reused {
            ModelUse::Reused
        } else {
            ModelUse::Trained
        };
        (outcome, usage)
    }

    /// The neighbor devices eligible for the fine step — a store scan that
    /// needs no lock.
    pub(crate) fn fine_neighbors(
        &self,
        store: &dyn EventRead,
        eff: &Effective,
        device: DeviceId,
        t_q: Timestamp,
        region: RegionId,
    ) -> Vec<DeviceId> {
        eff.fine
            .candidate_neighbors(store, device, t_q, region)
            .into_iter()
            .map(|(d, _)| d)
            .collect()
    }

    /// Extracts what the fine step needs from the affinity graph: the neighbor
    /// processing order, cached pairwise affinities (which replace the per-pair
    /// history scans of cold queries), and cache warmth. Only epoch-live edges
    /// are visible. Callers take the graph lock only for this extraction; the
    /// neighbor scan ([`Engines::fine_neighbors`]) and [`Engines::fine_exec`]
    /// run lock-free.
    pub(crate) fn fine_plan(
        &self,
        epochs: &dyn EpochRead,
        device: DeviceId,
        t_q: Timestamp,
        neighbors: &[DeviceId],
        cache: &EpochCache,
    ) -> FinePlan {
        let warm = neighbors
            .iter()
            .any(|&n| !cache.samples(device, n, epochs).is_empty());
        let cached: HashMap<DeviceId, f64> = neighbors
            .iter()
            .filter_map(|&n| {
                cache
                    .cached_pair_affinity(device, n, t_q, epochs)
                    .map(|affinity| (n, affinity))
            })
            .collect();
        let order = cache.order_neighbors(device, neighbors, t_q, epochs);
        FinePlan {
            order,
            cached,
            warm,
        }
    }

    /// Runs the fine step with an optional cache plan. Returns the outcome and
    /// whether the affinity graph was warm for the queried device.
    pub(crate) fn fine_exec(
        &self,
        store: &dyn EventRead,
        eff: &Effective,
        device: DeviceId,
        t_q: Timestamp,
        region: RegionId,
        plan: Option<FinePlan>,
    ) -> (FineOutcome, bool) {
        let Some(FinePlan {
            order,
            cached,
            warm,
        }) = plan
        else {
            return (eff.fine.locate(store, device, t_q, region, None), false);
        };
        let lookup = move |neighbor: DeviceId| cached.get(&neighbor).copied();
        let fine =
            eff.fine
                .locate_with_cache(store, device, t_q, region, Some(&order), Some(&lookup));
        (fine, warm)
    }
}

/// The live LOCATER service: a cleaning + caching engine over a **mutable**
/// event store that ingests connectivity events while answering queries.
///
/// Unlike the frozen [`Locater`](super::Locater) facade, the dataset may grow
/// after construction. Correctness is maintained by epoch-based invalidation
/// (see [`super::epoch`]): after any ingest sequence, answers are identical to
/// those of a freshly built service over the same final store.
///
/// Internally this is exactly a [`ShardedLocaterService`] with **one shard** —
/// the single-writer special case of the per-device-partitioned service. Use
/// [`ShardedLocaterService::new`] with more shards when concurrent ingest
/// throughput matters; answers are byte-identical for every shard count.
///
/// ```
/// use locater_core::system::{LocaterService, LocateRequest, LocaterConfig};
/// use locater_space::SpaceBuilder;
/// use locater_store::EventStore;
///
/// let space = SpaceBuilder::new("demo")
///     .add_access_point("wap1", &["101", "102"])
///     .build()
///     .unwrap();
/// let service = LocaterService::new(EventStore::new(space), LocaterConfig::default());
///
/// // Live ingestion: the store grows while the service answers queries.
/// service.ingest("aa:bb:cc:dd:ee:01", 1_000, "wap1").unwrap();
/// service.ingest("aa:bb:cc:dd:ee:01", 4_000, "wap1").unwrap();
///
/// let response = service
///     .locate(&LocateRequest::by_mac("aa:bb:cc:dd:ee:01", 2_500))
///     .unwrap();
/// assert!(response.answer.is_inside());
/// assert_eq!(response.device_epoch, 2); // two events ingested for the device
/// ```
#[derive(Debug)]
pub struct LocaterService {
    inner: ShardedLocaterService,
}

impl LocaterService {
    /// Creates a service over an initial (possibly empty) store.
    pub fn new(store: EventStore, config: LocaterConfig) -> Self {
        Self {
            inner: ShardedLocaterService::new(store, config, 1),
        }
    }

    pub(crate) fn from_parts(store: EventStore, engines: Engines) -> Self {
        Self {
            inner: ShardedLocaterService::from_parts_single(store, engines),
        }
    }

    /// The equivalent sharded service (one shard), for callers that want the
    /// shard-aware API surface.
    pub fn into_sharded(self) -> ShardedLocaterService {
        self.inner
    }

    /// The system configuration (per-request overrides are applied on top).
    pub fn config(&self) -> &LocaterConfig {
        self.inner.config()
    }

    // ------------------------------------------------------------------
    // Ingestion
    // ------------------------------------------------------------------

    /// Appends one connectivity event (access point given by name, as found in
    /// logs) and bumps the device's epoch. Takes the store write lock only for
    /// the append itself.
    pub fn ingest(&self, mac: &str, t: Timestamp, ap_name: &str) -> Result<EventId, IngestError> {
        self.inner.ingest(mac, t, ap_name)
    }

    /// Appends a batch of raw events, stopping at the first error (events
    /// before the error are kept and their devices' epochs bumped). Returns the
    /// number of events appended.
    pub fn ingest_batch<'a>(
        &self,
        events: impl IntoIterator<Item = &'a RawEvent>,
    ) -> Result<usize, IngestError> {
        self.inner.ingest_batch(events)
    }

    /// Re-estimates every device's validity period δ from its (grown) history
    /// and bumps **all** epochs: changing δ reshapes every device's gap
    /// structure, so all cached state is invalidated.
    pub fn reestimate_deltas(&self) {
        self.inner.reestimate_deltas()
    }

    /// Overrides one device's validity period δ and bumps its epoch.
    pub fn set_delta(&self, device: DeviceId, delta: Timestamp) {
        self.inner.set_delta(device, delta)
    }

    /// Bumps one device's epoch without touching the store, invalidating every
    /// cached value derived from its history.
    pub fn invalidate_device(&self, device: DeviceId) {
        self.inner.invalidate_device(device)
    }

    /// Bumps every device's epoch, invalidating all cached state at once (the
    /// epoch-based equivalent of the legacy `clear_cache`-and-rebuild).
    pub fn invalidate_all(&self) {
        self.inner.invalidate_all()
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Resolves the device a request refers to.
    pub fn resolve(&self, request: &LocateRequest) -> Result<DeviceId, LocaterError> {
        self.inner.resolve(request)
    }

    /// Answers one request. Holds the store read lock for the duration of the
    /// query, so concurrent requests proceed in parallel and ingests are only
    /// delayed by in-flight queries.
    pub fn locate(&self, request: &LocateRequest) -> Result<LocateResponse, LocaterError> {
        self.inner.locate(request)
    }

    /// Answers a batch of requests through the deterministic sharded batch
    /// pipeline (see [`Locater::locate_batch`](super::Locater::locate_batch)
    /// for the determinism guarantees — responses are identical for every
    /// `jobs` value and returned in request order). Per-request overrides are
    /// honored; batch responses carry no diagnostics.
    pub fn locate_batch(
        &self,
        requests: &[LocateRequest],
        jobs: usize,
    ) -> Vec<Result<LocateResponse, LocaterError>> {
        self.inner.locate_batch(requests, jobs)
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// The current ingest epoch of a device (0 for devices never ingested
    /// through the service).
    pub fn device_epoch(&self, device: DeviceId) -> u64 {
        self.inner.device_epoch(device)
    }

    /// Runs `f` with read access to the store (the lock is held for the
    /// duration of the closure — keep it short).
    pub fn with_store<R>(&self, f: impl FnOnce(&EventStore) -> R) -> R {
        // One shard ⇒ shard 0 holds the whole dataset.
        self.inner.with_shard_store(0, f)
    }

    /// A clone of the current store (the basis of the service's answers at
    /// this instant; useful for rebuild-equivalence checks and snapshots).
    pub fn store_snapshot(&self) -> EventStore {
        self.inner.store_snapshot()
    }

    /// Total number of events currently in the store.
    pub fn num_events(&self) -> usize {
        self.inner.num_events()
    }

    /// Number of distinct devices currently in the store.
    pub fn num_devices(&self) -> usize {
        self.inner.num_devices()
    }

    /// Number of edges and samples physically held by the caching engine,
    /// including stale ones awaiting eviction.
    pub fn cache_stats(&self) -> (usize, usize) {
        self.inner.cache_stats()
    }

    /// Number of edges and samples that are live under the current epochs —
    /// the state queries can actually observe.
    pub fn live_cache_stats(&self) -> (usize, usize) {
        self.inner.live_cache_stats()
    }

    /// Eagerly evicts stale affinity edges and stale/expired coarse models,
    /// returning `(edges_evicted, models_evicted)`. Optional maintenance —
    /// queries never observe stale state either way.
    pub fn purge_stale(&self) -> (usize, usize) {
        self.inner.purge_stale()
    }

    /// Drops all cached affinities and per-device coarse models (epochs are
    /// untouched; prefer letting epoch invalidation work instead).
    pub fn clear_cache(&self) {
        self.inner.clear_cache()
    }
}

/// Conversion from the legacy frozen facade: the store, configuration, and all
/// cached state carry over; the dataset becomes mutable from here on.
impl From<super::Locater> for LocaterService {
    fn from(locater: super::Locater) -> Self {
        locater.into_service()
    }
}

#[cfg(test)]
mod tests {
    use super::super::Query;
    use super::*;
    use crate::fine::FineMode;
    use locater_events::clock;
    use locater_space::{RoomType, Space, SpaceBuilder};

    fn space() -> Space {
        SpaceBuilder::new("service-test")
            .add_access_point("wap0", &["office-a", "office-b", "lounge"])
            .add_access_point("wap1", &["lounge", "lab"])
            .room_type("lounge", RoomType::Public)
            .room_owner("office-a", "alice")
            .room_owner("office-b", "bob")
            .build()
            .unwrap()
    }

    /// Alice and Bob work together on wap0 on weekdays for `weeks` weeks.
    fn office_store(weeks: i64) -> EventStore {
        let mut store = EventStore::new(space());
        for week in 0..weeks {
            for day in 0..5 {
                let d = week * 7 + day;
                for slot in 0..16 {
                    let t = clock::at(d, 9, slot * 30, 0);
                    store.ingest_raw("alice", t, "wap0").unwrap();
                    store.ingest_raw("bob", t + 45, "wap0").unwrap();
                }
            }
        }
        store
    }

    #[test]
    fn ingest_appends_and_bumps_epochs() {
        let service = LocaterService::new(EventStore::new(space()), LocaterConfig::default());
        assert_eq!(service.num_events(), 0);
        service.ingest("alice", 1_000, "wap0").unwrap();
        service.ingest("alice", 1_300, "wap0").unwrap();
        service.ingest("bob", 1_100, "wap1").unwrap();
        assert_eq!(service.num_events(), 3);
        assert_eq!(service.num_devices(), 2);
        let alice = service.with_store(|s| s.device_id("alice").unwrap());
        let bob = service.with_store(|s| s.device_id("bob").unwrap());
        assert_eq!(service.device_epoch(alice), 2);
        assert_eq!(service.device_epoch(bob), 1);

        // Unknown AP: error surfaces, nothing appended.
        assert!(service.ingest("alice", 2_000, "wap9").is_err());
        assert_eq!(service.num_events(), 3);
        assert_eq!(service.device_epoch(alice), 2);
    }

    #[test]
    fn ingest_batch_stops_at_first_error_but_keeps_prefix() {
        let service = LocaterService::new(EventStore::new(space()), LocaterConfig::default());
        let events = [
            RawEvent::new("alice", 1_000, "wap0"),
            RawEvent::new("bob", 1_100, "wap1"),
            RawEvent::new("alice", 1_200, "nope"),
            RawEvent::new("bob", 1_300, "wap1"),
        ];
        let err = service.ingest_batch(events.iter()).unwrap_err();
        assert!(matches!(err, IngestError::UnknownAccessPoint(_)));
        assert_eq!(service.num_events(), 2);
        let alice = service.with_store(|s| s.device_id("alice").unwrap());
        assert_eq!(service.device_epoch(alice), 1);
    }

    #[test]
    fn locate_answers_and_reports_epoch_and_store_size() {
        let service = LocaterService::new(office_store(2), LocaterConfig::default());
        let t_q = clock::at(8, 9, 5, 10);
        let response = service
            .locate(&LocateRequest::by_mac("alice", t_q))
            .unwrap();
        assert!(response.answer.is_inside());
        assert_eq!(response.device_epoch, 0, "no live ingests yet");
        assert_eq!(response.events_seen, service.num_events());
        assert!(response.diagnostics.is_none(), "diagnostics are opt-in");

        let detailed = service
            .locate(&LocateRequest::by_mac("alice", t_q).with_diagnostics())
            .unwrap();
        assert!(detailed.diagnostics.is_some());
    }

    #[test]
    fn per_request_cache_bypass_stores_nothing() {
        let service = LocaterService::new(office_store(3), LocaterConfig::default());
        let t_q = clock::at(15, 9, 30, 20);
        let bypass = LocateRequest::by_mac("alice", t_q).bypass_cache();
        service.locate(&bypass).unwrap();
        assert_eq!(service.cache_stats(), (0, 0));

        // The same request without the bypass warms the graph.
        service
            .locate(&LocateRequest::by_mac("alice", t_q))
            .unwrap();
        assert!(service.cache_stats().0 >= 1);
    }

    #[test]
    fn per_request_fine_mode_override_answers() {
        let service = LocaterService::new(office_store(3), LocaterConfig::default());
        let t_q = clock::at(15, 9, 30, 20);
        let response = service
            .locate(&LocateRequest::by_mac("alice", t_q).with_fine_mode(FineMode::Dependent))
            .unwrap();
        assert!(response.answer.is_inside());
    }

    #[test]
    fn ingest_invalidates_exactly_the_touched_device() {
        let service = LocaterService::new(office_store(3), LocaterConfig::default());
        let t_q = clock::at(15, 9, 30, 20);
        // Warm alice↔bob (via alice's query).
        service
            .locate(&LocateRequest::by_mac("alice", t_q))
            .unwrap();
        let (live_edges, _) = service.live_cache_stats();
        assert!(live_edges >= 1);

        // An event for bob invalidates the alice↔bob edge...
        service.ingest("bob", t_q + 600, "wap0").unwrap();
        assert_eq!(service.live_cache_stats().0, 0);
        assert!(
            service.cache_stats().0 >= 1,
            "stale edge lingers until eviction"
        );

        // ...and a purge reclaims it.
        let (edges_evicted, _) = service.purge_stale();
        assert!(edges_evicted >= 1);
        assert_eq!(service.cache_stats().0, 0);
    }

    #[test]
    fn invalidate_all_and_reestimate_deltas_bump_every_device() {
        let service = LocaterService::new(office_store(1), LocaterConfig::default());
        let alice = service.with_store(|s| s.device_id("alice").unwrap());
        let bob = service.with_store(|s| s.device_id("bob").unwrap());
        service.invalidate_all();
        assert_eq!(service.device_epoch(alice), 1);
        assert_eq!(service.device_epoch(bob), 1);
        service.reestimate_deltas();
        assert_eq!(service.device_epoch(alice), 2);
        assert_eq!(service.device_epoch(bob), 2);
        service.invalidate_device(alice);
        assert_eq!(service.device_epoch(alice), 3);
        assert_eq!(service.device_epoch(bob), 2);
    }

    #[test]
    fn batch_routes_through_request_layer_in_order() {
        let service = LocaterService::new(office_store(3), LocaterConfig::default());
        let requests = vec![
            LocateRequest::by_mac("alice", clock::at(15, 9, 30, 20)),
            LocateRequest::by_mac("ghost", 1_000),
            LocateRequest::by_mac("bob", clock::at(15, 3, 0, 0)).bypass_cache(),
        ];
        let responses = service.locate_batch(&requests, 2);
        assert_eq!(responses.len(), 3);
        assert!(responses[0].as_ref().unwrap().answer.is_inside());
        assert!(matches!(responses[1], Err(LocaterError::UnknownDevice(_))));
        assert!(responses[2].as_ref().unwrap().answer.is_outside());
    }

    #[test]
    fn frozen_facade_converts_into_service() {
        let locater = super::super::Locater::new(office_store(2), LocaterConfig::default());
        let t_q = clock::at(8, 9, 5, 10);
        let frozen = locater.locate(&Query::by_mac("alice", t_q)).unwrap();
        let service: LocaterService = locater.into();
        let live = service
            .locate(&LocateRequest::by_mac("alice", t_q))
            .unwrap();
        assert_eq!(frozen, live.answer);
    }
}
