//! Coarse-grained localization (paper §3): missing-value detection and repair.
//!
//! For a query `Q = (d_i, t_q)` whose time falls in a *gap* of the device's
//! connectivity log, the coarse localizer decides:
//!
//! 1. whether the device was **inside or outside** the building during the gap, and
//! 2. if inside, **which region** (AP coverage area) it was in,
//!
//! using only the device's own historical gaps from the last `N` weeks. Historical
//! gaps are first labelled by **bootstrapping heuristics** driven by the gap duration
//! thresholds `τ_l` / `τ_h` (and `τ'_l` / `τ'_h` at the region level); the remaining,
//! ambiguous gaps are labelled by the **semi-supervised self-training** loop of
//! Algorithm 1 ([`locater_learn::SelfTrainingClassifier`]); and the classifier trained
//! in the last round labels the query gap.

mod bootstrap;
mod features;
mod localizer;

pub use bootstrap::{
    bootstrap_label, bootstrap_labels, most_visited_region, BootstrapLabel, BootstrapSummary,
};
pub use features::{connection_density, GapFeatures, NUM_GAP_FEATURES};
pub use localizer::{
    CoarseConfig, CoarseLabel, CoarseLocalizer, CoarseMethod, CoarseOutcome, DeviceCoarseModel,
};
