//! The coarse-grained localizer (paper §3).
//!
//! For a query `Q = (d_i, t_q)` the localizer proceeds in three steps:
//!
//! 1. **Covered instant** — if some connectivity event of the device is valid at
//!    `t_q`, the device is in the region of that event's access point and no cleaning
//!    is needed.
//! 2. **Bootstrapping** — otherwise `t_q` falls in a *gap*. The device's historical
//!    gaps over the last `history` period are labelled by the duration heuristics
//!    (`τ_l`, `τ_h`, `τ'_l`, `τ'_h`; see [`super::bootstrap`]).
//! 3. **Semi-supervised classification** — two classifiers (inside/outside and
//!    region) are grown from the bootstrapped labels with the self-training loop of
//!    Algorithm 1 and applied to the query gap.
//!
//! Training the per-device models is the expensive part, so the localizer exposes
//! [`CoarseLocalizer::train_device_model`] separately from
//! [`CoarseLocalizer::classify_with_model`]; the [`crate::system::Locater`] facade
//! caches one [`DeviceCoarseModel`] per device and retrains lazily.

use crate::coarse::bootstrap::{bootstrap_labels, BootstrapLabel, BootstrapSummary};
use crate::coarse::features::GapFeatures;
use crate::error::LocaterError;
use locater_events::clock::{self, Timestamp};
use locater_events::{DeviceId, Gap, Interval, StoredEvent};
use locater_learn::{Dataset, SelfTrainingClassifier, SelfTrainingConfig, TrainConfig};
use locater_space::RegionId;
use locater_store::EventRead;
use serde::{Deserialize, Serialize};

/// Number of features of the gap feature vector (re-exported for dataset sizing).
use crate::coarse::features::NUM_GAP_FEATURES;

/// Configuration of the coarse-grained localization algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoarseConfig {
    /// Building-level lower threshold `τ_l`: gaps shorter than this are bootstrapped
    /// as *inside*. Default: 20 minutes (the paper's best value, Fig. 7).
    pub tau_low: Timestamp,
    /// Building-level upper threshold `τ_h`: gaps longer than this are bootstrapped as
    /// *outside*. Default: 180 minutes.
    pub tau_high: Timestamp,
    /// Region-level lower threshold `τ'_l`. Default: 20 minutes.
    pub region_tau_low: Timestamp,
    /// Region-level upper threshold `τ'_h`. Default: 40 minutes.
    pub region_tau_high: Timestamp,
    /// Length of the historical window `T` used to train the per-device models.
    /// Default: 8 weeks (where Fig. 8 plateaus).
    pub history: Timestamp,
    /// Upper bound on the number of historical gaps used for training (newest gaps are
    /// kept). Keeps per-device training time bounded on very chatty devices.
    pub max_training_gaps: usize,
    /// Configuration of the self-training loop (Algorithm 1).
    pub self_training: SelfTrainingConfig,
}

impl Default for CoarseConfig {
    fn default() -> Self {
        Self {
            tau_low: clock::minutes(20),
            tau_high: clock::minutes(180),
            region_tau_low: clock::minutes(20),
            region_tau_high: clock::minutes(40),
            history: clock::weeks(8),
            max_training_gaps: 600,
            self_training: SelfTrainingConfig {
                train: TrainConfig {
                    epochs: 80,
                    ..TrainConfig::default()
                },
                // The paper promotes one gap per round; batching keeps query latency
                // practical on large histories without changing the fixed point much.
                promote_per_round: 20,
                max_rounds: 400,
            },
        }
    }
}

/// Coarse-level location decided for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoarseLabel {
    /// The device was outside the building at the query time.
    Outside,
    /// The device was inside the building, in the given region.
    Inside(RegionId),
}

impl CoarseLabel {
    /// `true` if the label places the device inside the building.
    pub fn is_inside(&self) -> bool {
        matches!(self, CoarseLabel::Inside(_))
    }

    /// The region, if inside.
    pub fn region(&self) -> Option<RegionId> {
        match self {
            CoarseLabel::Inside(region) => Some(*region),
            CoarseLabel::Outside => None,
        }
    }
}

/// How the coarse label was derived. Reported for diagnostics and tested by the
/// evaluation harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoarseMethod {
    /// The query time was covered by a connectivity event's validity interval.
    CoveredByEvent,
    /// The query time lies before the first / after the last event of the device;
    /// treated as outside the building.
    OutOfSpan,
    /// The query gap was decided directly by the duration heuristics.
    BootstrapHeuristic,
    /// The query gap was decided by the trained (self-trained) classifiers.
    Classifier,
    /// Not enough history to train; fell back to the duration heuristic midpoint and
    /// the last known region.
    Fallback,
}

/// Result of coarse-grained localization for one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoarseOutcome {
    /// The decided label.
    pub label: CoarseLabel,
    /// How the label was derived.
    pub method: CoarseMethod,
    /// Confidence in `[0, 1]`: 1.0 for covered instants and heuristic decisions, the
    /// classifier's winning-class probability otherwise.
    pub confidence: f64,
    /// The gap the query fell into, if any.
    pub gap: Option<Gap>,
}

impl CoarseOutcome {
    fn certain(label: CoarseLabel, method: CoarseMethod, gap: Option<Gap>) -> Self {
        Self {
            label,
            method,
            confidence: 1.0,
            gap,
        }
    }
}

/// Per-device trained models: the inside/outside classifier and the region classifier
/// with its class → region mapping, plus bookkeeping about the training data.
#[derive(Debug, Clone)]
pub struct DeviceCoarseModel {
    /// Device the model belongs to.
    pub device: DeviceId,
    /// History window the model was trained on.
    pub history: Interval,
    /// Inside/outside classifier (class 0 = inside, 1 = outside), if trainable.
    building: Option<SelfTrainingClassifier>,
    /// Region classifier and its class-index → region mapping, if trainable.
    region: Option<(SelfTrainingClassifier, Vec<RegionId>)>,
    /// Bootstrapping counters for the training window.
    pub bootstrap: BootstrapSummary,
    /// Number of gaps used for training.
    pub training_gaps: usize,
    /// The most frequently seen region in the training history (fallback label).
    pub dominant_region: Option<RegionId>,
}

impl DeviceCoarseModel {
    /// `true` if a building-level classifier could be trained.
    pub fn has_building_classifier(&self) -> bool {
        self.building.is_some()
    }

    /// `true` if a region-level classifier could be trained.
    pub fn has_region_classifier(&self) -> bool {
        self.region.is_some()
    }
}

/// The coarse-grained localizer.
///
/// Stateless apart from its configuration; per-device models are returned to the
/// caller so they can be cached across queries.
#[derive(Debug, Clone, Default)]
pub struct CoarseLocalizer {
    config: CoarseConfig,
}

impl CoarseLocalizer {
    /// Creates a localizer with the given configuration.
    pub fn new(config: CoarseConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoarseConfig {
        &self.config
    }

    /// Full pipeline for one query: train (or retrain) the device model and classify.
    /// Use [`CoarseLocalizer::train_device_model`] + [`CoarseLocalizer::classify_with_model`]
    /// when issuing many queries against the same device.
    pub fn localize(
        &self,
        store: &dyn EventRead,
        device: DeviceId,
        t_q: Timestamp,
    ) -> Result<CoarseOutcome, LocaterError> {
        if device.index() >= store.num_devices() {
            return Err(LocaterError::UnknownDevice(device.to_string()));
        }
        // Step 1: covered instant.
        if let Some(region) = store.covering_region(device, t_q) {
            return Ok(CoarseOutcome::certain(
                CoarseLabel::Inside(region),
                CoarseMethod::CoveredByEvent,
                None,
            ));
        }
        // Step 2: find the gap. Outside the observed span ⇒ outside the building.
        let Some(gap) = store.gap_at(device, t_q) else {
            return Ok(CoarseOutcome::certain(
                CoarseLabel::Outside,
                CoarseMethod::OutOfSpan,
                None,
            ));
        };
        let model = self.train_device_model(store, device, t_q);
        Ok(self.classify_with_model(store, &model, &gap))
    }

    /// Trains the per-device classifiers over the `history` window ending at `until`.
    ///
    /// Training reads only the segments of the device timeline that overlap the
    /// history window: both the event scan and the gap scan are segment-pruned,
    /// so a device with years of history costs the same as one with exactly
    /// `history` worth of data.
    pub fn train_device_model(
        &self,
        store: &dyn EventRead,
        device: DeviceId,
        until: Timestamp,
    ) -> DeviceCoarseModel {
        let history = Interval::new(until - self.config.history, until);
        // One segment-pruned materialization of the window, shared by the
        // bootstrap heuristics and every per-gap feature extraction below.
        let events: Vec<StoredEvent> = store.events_of_in(device, history).copied().collect();
        let mut gaps: Vec<Gap> = store.gaps_of_in(device, history);
        if gaps.len() > self.config.max_training_gaps {
            let skip = gaps.len() - self.config.max_training_gaps;
            gaps.drain(..skip);
        }
        let (labels, bootstrap) = bootstrap_labels(
            &gaps,
            &events,
            self.config.tau_low,
            self.config.tau_high,
            self.config.region_tau_low,
            self.config.region_tau_high,
        );

        // Dominant region over the history window (fallback region label).
        let dominant_region = dominant_region(&events);

        // ---- Building-level classifier: class 0 = inside, 1 = outside. ----
        let mut building_labeled = Dataset::new(NUM_GAP_FEATURES, 2);
        let mut building_unlabeled: Vec<Vec<f64>> = Vec::new();
        for (gap, label) in gaps.iter().zip(&labels) {
            let features = GapFeatures::extract(gap, &events, history).to_vec();
            match label {
                BootstrapLabel::Inside(_) => building_labeled.push(features, 0),
                BootstrapLabel::Outside => building_labeled.push(features, 1),
                BootstrapLabel::Unlabeled => building_unlabeled.push(features),
            }
        }
        let building = if building_labeled.has_multiple_classes() {
            SelfTrainingClassifier::train(
                &building_labeled,
                &building_unlabeled,
                &self.config.self_training,
            )
            .ok()
        } else {
            None
        };

        // ---- Region-level classifier over the gaps labelled inside. ----
        let mut region_classes: Vec<RegionId> = Vec::new();
        let mut region_rows: Vec<(Vec<f64>, usize)> = Vec::new();
        let mut region_unlabeled: Vec<Vec<f64>> = Vec::new();
        for (gap, label) in gaps.iter().zip(&labels) {
            match label {
                BootstrapLabel::Inside(Some(region)) => {
                    let class = match region_classes.iter().position(|r| r == region) {
                        Some(idx) => idx,
                        None => {
                            region_classes.push(*region);
                            region_classes.len() - 1
                        }
                    };
                    region_rows.push((GapFeatures::extract(gap, &events, history).to_vec(), class));
                }
                BootstrapLabel::Inside(None) => {
                    region_unlabeled.push(GapFeatures::extract(gap, &events, history).to_vec());
                }
                _ => {}
            }
        }
        let region = if region_classes.len() >= 2 {
            let mut labeled = Dataset::new(NUM_GAP_FEATURES, region_classes.len());
            for (row, class) in region_rows {
                labeled.push(row, class);
            }
            SelfTrainingClassifier::train(&labeled, &region_unlabeled, &self.config.self_training)
                .ok()
                .map(|clf| (clf, region_classes.clone()))
        } else {
            None
        };

        DeviceCoarseModel {
            device,
            history,
            building,
            region,
            bootstrap,
            training_gaps: gaps.len(),
            dominant_region,
        }
    }

    /// Classifies the query gap with an already-trained device model.
    pub fn classify_with_model(
        &self,
        store: &dyn EventRead,
        model: &DeviceCoarseModel,
        gap: &Gap,
    ) -> CoarseOutcome {
        let duration = gap.duration();

        // Decisive durations are handled by the same heuristics used to bootstrap the
        // training labels: a classifier trained on those labels would agree.
        if duration >= self.config.tau_high {
            return CoarseOutcome::certain(
                CoarseLabel::Outside,
                CoarseMethod::BootstrapHeuristic,
                Some(*gap),
            );
        }
        if duration <= self.config.tau_low {
            let region = self.heuristic_region(store, model, gap);
            return CoarseOutcome::certain(
                CoarseLabel::Inside(region),
                CoarseMethod::BootstrapHeuristic,
                Some(*gap),
            );
        }

        // Ambiguous duration: ask the classifiers. The density feature scans
        // the model's history window through the zero-copy, segment-pruned
        // iterator; older segments stay cold and nothing is materialized.
        let features = GapFeatures::extract(
            gap,
            store.events_of_in(model.device, model.history),
            model.history,
        )
        .to_vec();
        match &model.building {
            Some(classifier) => {
                let prediction = classifier.model().predict(&features);
                if prediction.label == 1 {
                    return CoarseOutcome {
                        label: CoarseLabel::Outside,
                        method: CoarseMethod::Classifier,
                        confidence: prediction.confidence(),
                        gap: Some(*gap),
                    };
                }
                // Inside: pick the region.
                let (region, region_confidence) = match &model.region {
                    Some((clf, classes)) => {
                        let p = clf.model().predict(&features);
                        (classes[p.label], p.confidence())
                    }
                    None => (self.heuristic_region(store, model, gap), 1.0),
                };
                CoarseOutcome {
                    label: CoarseLabel::Inside(region),
                    method: CoarseMethod::Classifier,
                    confidence: prediction.confidence() * region_confidence,
                    gap: Some(*gap),
                }
            }
            None => {
                // Not enough history: split the ambiguous range at its midpoint.
                let midpoint = (self.config.tau_low + self.config.tau_high) / 2;
                let label = if duration >= midpoint {
                    CoarseLabel::Outside
                } else {
                    CoarseLabel::Inside(self.heuristic_region(store, model, gap))
                };
                CoarseOutcome {
                    label,
                    method: CoarseMethod::Fallback,
                    confidence: 0.5,
                    gap: Some(*gap),
                }
            }
        }
    }

    /// Region heuristic for gaps decided to be inside: same region if the gap starts
    /// and ends in the same region, otherwise the most visited region of the device in
    /// the gap's time-of-day window, otherwise the dominant region of the history,
    /// otherwise the gap's start region.
    fn heuristic_region(
        &self,
        store: &dyn EventRead,
        model: &DeviceCoarseModel,
        gap: &Gap,
    ) -> RegionId {
        if gap.same_region() {
            return gap.start_region();
        }
        crate::coarse::bootstrap::most_visited_region(
            gap,
            store.events_of_in(model.device, model.history),
        )
        .or(model.dominant_region)
        .unwrap_or_else(|| gap.start_region())
    }
}

/// The region with the most connectivity events among `events` (the device's
/// history window).
fn dominant_region(events: &[StoredEvent]) -> Option<RegionId> {
    let mut counts: std::collections::HashMap<RegionId, usize> = std::collections::HashMap::new();
    for event in events {
        *counts.entry(event.region()).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .map(|(region, _)| region)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_events::clock::at;
    use locater_space::{Space, SpaceBuilder};
    use locater_store::EventStore;

    fn space() -> Space {
        SpaceBuilder::new("coarse-test")
            .add_access_point("wap0", &["a", "b"])
            .add_access_point("wap1", &["b", "c"])
            .add_access_point("wap2", &["c", "d"])
            .build()
            .unwrap()
    }

    /// A device with a predictable weekday pattern over `weeks` weeks:
    /// * 09:00–12:00 connected to wap0 every ~15 minutes,
    /// * a 1-hour lunch gap (inside, returns to wap0),
    /// * 13:00–17:00 connected to wap0 every ~15 minutes,
    /// * overnight absence (outside).
    fn predictable_store(weeks: i64) -> EventStore {
        let mut store = EventStore::new(space());
        for week in 0..weeks {
            for day in 0..5 {
                let d = week * 7 + day;
                for slot in 0..12 {
                    store
                        .ingest_raw("worker", at(d, 9, slot * 15, 0), "wap0")
                        .unwrap();
                }
                for slot in 0..16 {
                    store
                        .ingest_raw("worker", at(d, 13, slot * 15, 0), "wap0")
                        .unwrap();
                }
            }
        }
        store
    }

    #[test]
    fn covered_instant_needs_no_cleaning() {
        let store = predictable_store(2);
        let device = store.device_id("worker").unwrap();
        let localizer = CoarseLocalizer::default();
        let out = localizer.localize(&store, device, at(8, 9, 5, 0)).unwrap();
        assert_eq!(out.method, CoarseMethod::CoveredByEvent);
        assert!(out.label.is_inside());
        assert_eq!(out.label.region(), Some(RegionId::new(0)));
    }

    #[test]
    fn out_of_span_is_outside() {
        let store = predictable_store(1);
        let device = store.device_id("worker").unwrap();
        let localizer = CoarseLocalizer::default();
        let out = localizer
            .localize(&store, device, at(300, 12, 0, 0))
            .unwrap();
        assert_eq!(out.method, CoarseMethod::OutOfSpan);
        assert_eq!(out.label, CoarseLabel::Outside);
        let out = localizer.localize(&store, device, 0).unwrap();
        assert_eq!(out.label, CoarseLabel::Outside);
    }

    #[test]
    fn unknown_device_is_an_error() {
        let store = predictable_store(1);
        let localizer = CoarseLocalizer::default();
        assert!(matches!(
            localizer.localize(&store, DeviceId::new(99), 100),
            Err(LocaterError::UnknownDevice(_))
        ));
    }

    #[test]
    fn lunch_gap_is_classified_inside() {
        let store = predictable_store(6);
        let device = store.device_id("worker").unwrap();
        let localizer = CoarseLocalizer::default();
        // Query in the middle of the lunch gap of the last Friday.
        let out = localizer
            .localize(&store, device, at(39, 12, 30, 0))
            .unwrap();
        assert!(out.label.is_inside(), "lunch gap should be inside: {out:?}");
        assert_eq!(out.label.region(), Some(RegionId::new(0)));
        assert!(out.gap.is_some());
    }

    #[test]
    fn overnight_gap_is_classified_outside() {
        let store = predictable_store(6);
        let device = store.device_id("worker").unwrap();
        let localizer = CoarseLocalizer::default();
        // Query at 03:00 between two workdays.
        let out = localizer.localize(&store, device, at(39, 3, 0, 0)).unwrap();
        assert_eq!(out.label, CoarseLabel::Outside, "{out:?}");
    }

    #[test]
    fn model_reuse_matches_full_pipeline() {
        let store = predictable_store(6);
        let device = store.device_id("worker").unwrap();
        let localizer = CoarseLocalizer::default();
        let t_q = at(39, 12, 30, 0);
        let model = localizer.train_device_model(&store, device, t_q);
        assert!(model.training_gaps > 0);
        let gap = store.gap_at(device, t_q).unwrap();
        let from_model = localizer.classify_with_model(&store, &model, &gap);
        let from_pipeline = localizer.localize(&store, device, t_q).unwrap();
        assert_eq!(from_model.label, from_pipeline.label);
    }

    #[test]
    fn sparse_history_falls_back_gracefully() {
        let mut store = EventStore::new(space());
        store.ingest_raw("ghost", at(0, 9, 0, 0), "wap1").unwrap();
        store.ingest_raw("ghost", at(0, 11, 0, 0), "wap1").unwrap();
        let device = store.device_id("ghost").unwrap();
        let localizer = CoarseLocalizer::default();
        let out = localizer.localize(&store, device, at(0, 10, 0, 0)).unwrap();
        // 2-hour gap, no history: ambiguous → fallback path, but must still answer.
        assert!(matches!(
            out.method,
            CoarseMethod::Fallback | CoarseMethod::Classifier | CoarseMethod::BootstrapHeuristic
        ));
    }

    #[test]
    fn short_gap_heuristic_keeps_region() {
        let mut store = EventStore::new(space());
        store.ingest_raw("d", at(0, 9, 0, 0), "wap2").unwrap();
        store.ingest_raw("d", at(0, 9, 40, 0), "wap2").unwrap();
        let device = store.device_id("d").unwrap();
        let localizer = CoarseLocalizer::default();
        let out = localizer.localize(&store, device, at(0, 9, 20, 0)).unwrap();
        assert_eq!(out.label, CoarseLabel::Inside(RegionId::new(2)));
        assert_eq!(out.method, CoarseMethod::BootstrapHeuristic);
    }

    #[test]
    fn bigger_history_window_sees_more_gaps() {
        let store = predictable_store(8);
        let device = store.device_id("worker").unwrap();
        let short = CoarseLocalizer::new(CoarseConfig {
            history: clock::weeks(1),
            ..CoarseConfig::default()
        });
        let long = CoarseLocalizer::new(CoarseConfig {
            history: clock::weeks(8),
            ..CoarseConfig::default()
        });
        let t_q = at(55, 12, 0, 0);
        let short_model = short.train_device_model(&store, device, t_q);
        let long_model = long.train_device_model(&store, device, t_q);
        assert!(long_model.training_gaps > short_model.training_gaps);
    }

    #[test]
    fn max_training_gaps_caps_the_dataset() {
        let store = predictable_store(8);
        let device = store.device_id("worker").unwrap();
        let capped = CoarseLocalizer::new(CoarseConfig {
            max_training_gaps: 10,
            ..CoarseConfig::default()
        });
        let model = capped.train_device_model(&store, device, at(55, 12, 0, 0));
        assert!(model.training_gaps <= 10);
    }
}
