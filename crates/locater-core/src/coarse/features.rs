//! Gap feature extraction (paper §3).
//!
//! For every gap the paper extracts: begin/end time of day, duration, begin/end day of
//! week, begin/end region, and the *connection density* ω — the average number of
//! events the device logs during the same time-of-day window on other days of the
//! history period.

use locater_events::clock;
use locater_events::{Gap, Interval, StoredEvent};
use serde::{Deserialize, Serialize};

/// Number of numeric features produced per gap.
pub const NUM_GAP_FEATURES: usize = 8;

/// The feature vector of one gap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapFeatures {
    /// Gap start, seconds since midnight (`gap.t_str.time`).
    pub start_time_of_day: f64,
    /// Gap end, seconds since midnight (`gap.t_end.time`).
    pub end_time_of_day: f64,
    /// Gap duration in seconds (`δ(gap)`).
    pub duration: f64,
    /// Day of week the gap starts in, 0 = Monday (`gap.t_str.day`).
    pub start_day: f64,
    /// Day of week the gap ends in (`gap.t_end.day`).
    pub end_day: f64,
    /// Raw region index the device was connected to before the gap (`gap.g_str`).
    pub start_region: f64,
    /// Raw region index the device connected to after the gap (`gap.g_end`).
    pub end_region: f64,
    /// Connection density ω.
    pub density: f64,
}

impl GapFeatures {
    /// Extracts features for `gap`, computing the connection density against the
    /// device's events over `history` (the `N`-day period `T` of the paper).
    /// `events` must already be restricted to the history window; the segmented
    /// store's windowed accessor (`EventStore::events_of_in`) produces exactly
    /// that as a zero-copy iterator, without scanning older segments.
    pub fn extract<'a>(
        gap: &Gap,
        events: impl IntoIterator<Item = &'a StoredEvent>,
        history: Interval,
    ) -> Self {
        Self {
            start_time_of_day: clock::seconds_of_day(gap.start) as f64,
            end_time_of_day: clock::seconds_of_day(gap.end) as f64,
            duration: gap.duration() as f64,
            start_day: gap.start_day().index() as f64,
            end_day: gap.end_day().index() as f64,
            start_region: gap.start_region().raw() as f64,
            end_region: gap.end_region().raw() as f64,
            density: connection_density(gap, events, history),
        }
    }

    /// The features as a dense vector for the learning substrate.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.start_time_of_day,
            self.end_time_of_day,
            self.duration,
            self.start_day,
            self.end_day,
            self.start_region,
            self.end_region,
            self.density,
        ]
    }
}

/// Connection density ω of a gap: the average number of the device's connectivity
/// events per day of the history period whose time of day falls within the gap's
/// time-of-day window. `events` must already be restricted to `history`.
pub fn connection_density<'a>(
    gap: &Gap,
    events: impl IntoIterator<Item = &'a StoredEvent>,
    history: Interval,
) -> f64 {
    let days = ((history.duration() + clock::SECONDS_PER_DAY - 1) / clock::SECONDS_PER_DAY).max(1);
    let window_start = clock::seconds_of_day(gap.start);
    let window_end = clock::seconds_of_day(gap.end);
    let count = events
        .into_iter()
        .filter(|e| {
            let sod = clock::seconds_of_day(e.t);
            if window_start <= window_end {
                sod >= window_start && sod <= window_end
            } else {
                // Gap wraps past midnight.
                sod >= window_start || sod <= window_end
            }
        })
        .count();
    count as f64 / days as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_events::clock::at;
    use locater_events::{gaps_in, EventSeq};

    fn gap_and_seq() -> (Gap, EventSeq) {
        // Events at 09:00 and 13:00 on day 3 create a gap; history contains events at
        // 10:00 and 11:00 on other days.
        let seq = EventSeq::from_pairs(&[
            (at(0, 10, 0, 0), 0),
            (at(1, 10, 30, 0), 1),
            (at(2, 20, 0, 0), 0),
            (at(3, 9, 0, 0), 2),
            (at(3, 13, 0, 0), 3),
        ]);
        let gaps = gaps_in(&seq, 600);
        let gap = *gaps
            .iter()
            .find(|g| g.prev_t == at(3, 9, 0, 0))
            .expect("gap between 09:00 and 13:00");
        (gap, seq)
    }

    #[test]
    fn features_reflect_gap_geometry() {
        let (gap, seq) = gap_and_seq();
        let history = Interval::new(0, at(4, 0, 0, 0));
        let f = GapFeatures::extract(&gap, seq.in_range(history), history);
        assert_eq!(f.start_time_of_day, (9 * 3600 + 600) as f64);
        assert_eq!(f.end_time_of_day, (13 * 3600 - 600) as f64);
        assert_eq!(f.duration, (4 * 3600 - 1200) as f64);
        assert_eq!(f.start_day, 3.0); // Thursday
        assert_eq!(f.end_day, 3.0);
        assert_eq!(f.start_region, 2.0);
        assert_eq!(f.end_region, 3.0);
        assert_eq!(f.to_vec().len(), NUM_GAP_FEATURES);
    }

    #[test]
    fn density_counts_events_in_time_window_across_days() {
        let (gap, seq) = gap_and_seq();
        // 4-day history: events at 10:00 (day 0) and 10:30 (day 1) fall in the gap's
        // 09:10–12:50 window; 20:00 (day 2) and the gap boundary events do not.
        let history = Interval::new(0, at(4, 0, 0, 0));
        let density = connection_density(&gap, seq.in_range(history), history);
        assert!((density - 2.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn density_handles_midnight_wrapping_gaps() {
        // Gap from 23:30 to 00:30 the next day.
        let seq = EventSeq::from_pairs(&[
            (at(0, 23, 45, 0), 0),
            (at(2, 23, 0, 0), 0),
            (at(3, 0, 50, 0), 1),
        ]);
        let gaps = gaps_in(&seq, 600);
        let gap = gaps.last().copied().unwrap();
        let history = Interval::new(0, at(4, 0, 0, 0));
        // Event at 23:45 on day 0 falls in the wrapped window (23:10 .. 00:40).
        let density = connection_density(&gap, seq.in_range(history), history);
        assert!(density > 0.0);
    }

    #[test]
    fn density_is_zero_with_no_matching_history() {
        let (gap, seq) = gap_and_seq();
        let history = Interval::new(at(2, 0, 0, 0), at(3, 0, 0, 0)); // only the 20:00 event
        assert_eq!(
            connection_density(&gap, seq.in_range(history), history),
            0.0
        );
    }
}
