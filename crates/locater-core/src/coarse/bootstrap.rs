//! Bootstrapping heuristics for labelling historical gaps (paper §3).
//!
//! The duration thresholds `τ_l` and `τ_h` split gaps into three classes: gaps shorter
//! than `τ_l` are labelled *inside* the building (a short silence almost never means
//! the person left), gaps longer than `τ_h` are labelled *outside*, and everything in
//! between stays *unlabeled* and is handed to the semi-supervised loop.
//!
//! Gaps labelled inside also need a region label to train the region classifier:
//!
//! * if the device reappears in the region it disappeared from (`g_str = g_end`), the
//!   gap is labelled with that region;
//! * otherwise the label is the region the device visits most often during the same
//!   time-of-day window on the other days of the history period (the "most visited
//!   region" heuristic);
//! * gaps longer than the region-level threshold `τ'_h` are left unlabeled at the
//!   region level even when they are labelled inside, since the device had plenty of
//!   time to move around.

use locater_events::clock::{self, Timestamp};
use locater_events::{Gap, StoredEvent};
use locater_space::RegionId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Label assigned to a historical gap by the bootstrapping heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BootstrapLabel {
    /// The device was outside the building for the whole gap.
    Outside,
    /// The device was inside; the region label is `Some` when the region-level
    /// heuristics were confident, `None` when the gap must go through region-level
    /// self-training unlabelled.
    Inside(Option<RegionId>),
    /// The building-level heuristics could not decide.
    Unlabeled,
}

impl BootstrapLabel {
    /// `true` for [`BootstrapLabel::Unlabeled`].
    pub fn is_unlabeled(&self) -> bool {
        matches!(self, BootstrapLabel::Unlabeled)
    }
}

/// Counters describing a bootstrapping pass, used in reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BootstrapSummary {
    /// Gaps labelled inside the building.
    pub inside: usize,
    /// Gaps labelled outside the building.
    pub outside: usize,
    /// Gaps left unlabeled at the building level.
    pub unlabeled: usize,
    /// Inside gaps that also received a region label.
    pub with_region: usize,
}

/// The most visited region of the device during the gap's time-of-day window across
/// the history period, if any events fall in that window.
///
/// `events` must be the device's events *already restricted to the history window*
/// (the segmented store produces exactly that, zero-copy, via
/// `EventStore::events_of_in(device, history)` without scanning older segments).
pub fn most_visited_region<'a>(
    gap: &Gap,
    events: impl IntoIterator<Item = &'a StoredEvent>,
) -> Option<RegionId> {
    let window_start = clock::seconds_of_day(gap.start);
    let window_end = clock::seconds_of_day(gap.end);
    let mut counts: HashMap<RegionId, usize> = HashMap::new();
    for event in events {
        let sod = clock::seconds_of_day(event.t);
        let in_window = if window_start <= window_end {
            sod >= window_start && sod <= window_end
        } else {
            sod >= window_start || sod <= window_end
        };
        if in_window {
            *counts.entry(event.region()).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .map(|(region, _)| region)
}

/// Applies the bootstrapping heuristics to one gap.
///
/// * `events` — the device's events within the history window (see
///   [`most_visited_region`]).
/// * `tau_low` / `tau_high` — building-level thresholds (`τ_l`, `τ_h`).
/// * `region_tau_low` / `region_tau_high` — region-level thresholds (`τ'_l`, `τ'_h`).
pub fn bootstrap_label<'a>(
    gap: &Gap,
    events: impl IntoIterator<Item = &'a StoredEvent>,
    tau_low: Timestamp,
    tau_high: Timestamp,
    region_tau_low: Timestamp,
    region_tau_high: Timestamp,
) -> BootstrapLabel {
    let duration = gap.duration();
    if duration >= tau_high {
        return BootstrapLabel::Outside;
    }
    if duration > tau_low {
        return BootstrapLabel::Unlabeled;
    }
    // Inside the building; decide the region label.
    let region = if duration <= region_tau_low && gap.same_region() {
        Some(gap.start_region())
    } else if duration <= region_tau_high {
        if gap.same_region() {
            Some(gap.start_region())
        } else {
            most_visited_region(gap, events).or(Some(gap.start_region()))
        }
    } else {
        None
    };
    BootstrapLabel::Inside(region)
}

/// Labels every gap in `gaps` and returns the labels alongside summary counters.
/// `events` is re-iterated once per gap, so it must be cheaply cloneable (a
/// slice reference or the store's windowed iterator both are).
pub fn bootstrap_labels<'a>(
    gaps: &[Gap],
    events: impl IntoIterator<Item = &'a StoredEvent> + Clone,
    tau_low: Timestamp,
    tau_high: Timestamp,
    region_tau_low: Timestamp,
    region_tau_high: Timestamp,
) -> (Vec<BootstrapLabel>, BootstrapSummary) {
    let mut summary = BootstrapSummary::default();
    let labels: Vec<BootstrapLabel> = gaps
        .iter()
        .map(|gap| {
            let label = bootstrap_label(
                gap,
                events.clone(),
                tau_low,
                tau_high,
                region_tau_low,
                region_tau_high,
            );
            match label {
                BootstrapLabel::Outside => summary.outside += 1,
                BootstrapLabel::Inside(region) => {
                    summary.inside += 1;
                    if region.is_some() {
                        summary.with_region += 1;
                    }
                }
                BootstrapLabel::Unlabeled => summary.unlabeled += 1,
            }
            label
        })
        .collect();
    (labels, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_events::clock::{at, minutes};
    use locater_events::{gaps_in, EventSeq};

    const TAU_L: Timestamp = minutes(20);
    const TAU_H: Timestamp = minutes(180);
    const RTAU_L: Timestamp = minutes(20);
    const RTAU_H: Timestamp = minutes(40);

    fn label_of(seq: &EventSeq, gap: &Gap) -> BootstrapLabel {
        bootstrap_label(gap, seq.events(), TAU_L, TAU_H, RTAU_L, RTAU_H)
    }

    #[test]
    fn short_same_region_gap_is_inside_with_region() {
        let seq = EventSeq::from_pairs(&[(at(0, 9, 0, 0), 2), (at(0, 9, 30, 0), 2)]);
        let gap = gaps_in(&seq, 300)[0];
        assert!(gap.duration() <= TAU_L);
        let label = label_of(&seq, &gap);
        assert_eq!(label, BootstrapLabel::Inside(Some(RegionId::new(2))));
    }

    #[test]
    fn long_gap_is_outside() {
        let seq = EventSeq::from_pairs(&[(at(0, 9, 0, 0), 2), (at(0, 16, 0, 0), 2)]);
        let gap = gaps_in(&seq, 300)[0];
        assert!(gap.duration() >= TAU_H);
        assert_eq!(label_of(&seq, &gap), BootstrapLabel::Outside);
    }

    #[test]
    fn medium_gap_is_unlabeled() {
        let seq = EventSeq::from_pairs(&[(at(0, 9, 0, 0), 2), (at(0, 10, 30, 0), 2)]);
        let gap = gaps_in(&seq, 300)[0];
        assert!(gap.duration() > TAU_L && gap.duration() < TAU_H);
        assert_eq!(label_of(&seq, &gap), BootstrapLabel::Unlabeled);
        assert!(label_of(&seq, &gap).is_unlabeled());
    }

    #[test]
    fn short_cross_region_gap_uses_most_visited_region() {
        // The device historically spends 10:00–10:20 in region 7 on other days.
        let seq = EventSeq::from_pairs(&[
            (at(1, 10, 5, 0), 7),
            (at(2, 10, 10, 0), 7),
            (at(3, 10, 2, 0), 5),
            (at(5, 10, 0, 0), 1),
            (at(5, 10, 18, 0), 3),
        ]);
        let gap = *gaps_in(&seq, 300).last().unwrap();
        assert!(!gap.same_region());
        let label = label_of(&seq, &gap);
        assert_eq!(label, BootstrapLabel::Inside(Some(RegionId::new(7))));
    }

    #[test]
    fn cross_region_gap_without_history_falls_back_to_start_region() {
        let seq = EventSeq::from_pairs(&[(at(0, 10, 0, 0), 1), (at(0, 10, 18, 0), 3)]);
        let gap = gaps_in(&seq, 300)[0];
        // Only the bounding events exist; they are outside the gap window, so the most
        // visited region is None and we fall back to the start region.
        let label = bootstrap_label(&gap, seq.events(), TAU_L, TAU_H, RTAU_L, RTAU_H);
        assert_eq!(label, BootstrapLabel::Inside(Some(RegionId::new(1))));
    }

    #[test]
    fn bootstrap_labels_summary_counts() {
        let seq = EventSeq::from_pairs(&[
            (at(0, 9, 0, 0), 2),
            (at(0, 9, 15, 0), 2), // short gap → inside
            (at(0, 11, 0, 0), 2), // 1h45 gap → unlabeled
            (at(0, 18, 0, 0), 2), // 7h gap → outside
        ]);
        let gaps = gaps_in(&seq, 300);
        assert_eq!(gaps.len(), 3);
        let (labels, summary) = bootstrap_labels(&gaps, seq.events(), TAU_L, TAU_H, RTAU_L, RTAU_H);
        assert_eq!(labels.len(), 3);
        assert_eq!(summary.inside, 1);
        assert_eq!(summary.unlabeled, 1);
        assert_eq!(summary.outside, 1);
        assert_eq!(summary.with_region, 1);
    }

    #[test]
    fn most_visited_region_breaks_ties_deterministically() {
        let seq = EventSeq::from_pairs(&[(at(1, 10, 5, 0), 4), (at(2, 10, 5, 0), 2)]);
        let probe = EventSeq::from_pairs(&[(at(5, 10, 0, 0), 0), (at(5, 10, 15, 0), 0)]);
        let gap = gaps_in(&probe, 300)[0];
        // Both regions seen once: the smaller region id wins (deterministic).
        assert_eq!(
            most_visited_region(&gap, seq.events()),
            Some(RegionId::new(2))
        );
    }
}
