//! # locater-core
//!
//! The LOCATER cleaning engine (the paper's primary contribution): semantic indoor
//! localization of devices from WiFi connectivity logs, framed as two data cleaning
//! problems plus a caching layer that makes query answering near real-time.
//!
//! * [`coarse`] — **missing-value detection and repair** (paper §3). When a query time
//!   falls in a *gap* of a device's log, a bootstrapped, semi-supervised classifier
//!   pipeline decides whether the device was outside the building or inside, and in
//!   which region.
//! * [`fine`] — **location disambiguation** (paper §4). Given the region (one AP's
//!   coverage, typically ~11 rooms), the most probable room is selected by combining
//!   *room affinities* (space metadata: preferred / public / private rooms) and *group
//!   affinities* (co-location patterns of devices) in an iterative Bayesian algorithm
//!   with early-stopping bounds. Both the independent (`I-FINE`) and the dependent,
//!   cluster-based (`D-FINE`) variants are implemented.
//! * [`cache`] — the **caching engine** (paper §5): local affinity graphs produced by
//!   each query are merged into a global affinity graph whose temporally-weighted
//!   edges drive the neighbor processing order of later queries.
//! * [`system`] — the [`Locater`](system::Locater) facade tying the engines together
//!   behind the query API `Q = (device, time)`.
//! * [`baselines`] — the two baselines of the evaluation (§6.1).
//! * [`metrics`] — the `P_c` / `P_f` / `P_o` precision metrics of §6.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod cache;
pub mod coarse;
mod error;
pub mod fine;
pub mod metrics;
pub mod system;

pub use error::LocaterError;
