//! # locater-core
//!
//! The LOCATER cleaning engine (the paper's primary contribution): semantic indoor
//! localization of devices from WiFi connectivity logs, framed as two data cleaning
//! problems plus a caching layer that makes query answering near real-time.
//!
//! * [`coarse`] — **missing-value detection and repair** (paper §3). When a query time
//!   falls in a *gap* of a device's log, a bootstrapped, semi-supervised classifier
//!   pipeline decides whether the device was outside the building or inside, and in
//!   which region.
//! * [`fine`] — **location disambiguation** (paper §4). Given the region (one AP's
//!   coverage, typically ~11 rooms), the most probable room is selected by combining
//!   *room affinities* (space metadata: preferred / public / private rooms) and *group
//!   affinities* (co-location patterns of devices) in an iterative Bayesian algorithm
//!   with early-stopping bounds. Both the independent (`I-FINE`) and the dependent,
//!   cluster-based (`D-FINE`) variants are implemented.
//! * [`cache`] — the **caching engine** (paper §5): local affinity graphs produced by
//!   each query are merged into a global affinity graph whose temporally-weighted
//!   edges drive the neighbor processing order of later queries.
//! * [`system`] — the [`Locater`](system::Locater) facade tying the engines together
//!   behind the query API `Q = (device, time)`, plus the live services:
//!   [`LocaterService`](system::LocaterService) (online ingestion + epoch-based
//!   cache invalidation) and [`ShardedLocaterService`](system::ShardedLocaterService)
//!   (N per-device partitions, each with its own store, lock, epochs and caches).
//! * [`baselines`] — the two baselines of the evaluation (§6.1).
//! * [`metrics`] — the `P_c` / `P_f` / `P_o` precision metrics of §6.1.
//!
//! ## Sharded ingest-then-locate
//!
//! The sharded service routes each event to its device's home shard, so
//! concurrent ingests for different devices never contend on a lock — and
//! answers stay byte-identical to a single-shard deployment:
//!
//! ```
//! use locater_core::system::{LocateRequest, LocaterConfig, ShardedLocaterService};
//! use locater_space::SpaceBuilder;
//! use locater_store::EventStore;
//!
//! let space = SpaceBuilder::new("demo")
//!     .add_access_point("wap1", &["101", "102"])
//!     .build()
//!     .unwrap();
//! let service =
//!     ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 4);
//!
//! // Ingest: write-locks only the device's home shard once the device is known.
//! service.ingest("aa:bb:cc:dd:ee:01", 1_000, "wap1").unwrap();
//! service.ingest("aa:bb:cc:dd:ee:01", 4_000, "wap1").unwrap();
//! service.ingest("aa:bb:cc:dd:ee:02", 1_500, "wap1").unwrap();
//!
//! // Locate: answers over the read-only multi-shard view.
//! let response = service
//!     .locate(&LocateRequest::by_mac("aa:bb:cc:dd:ee:01", 2_500))
//!     .unwrap();
//! assert!(response.answer.is_inside());
//! assert_eq!(response.events_seen, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod cache;
pub mod coarse;
mod error;
pub mod fine;
pub mod metrics;
pub mod system;

pub use error::LocaterError;
