//! Error type for the cleaning engine.

use std::fmt;

/// Errors produced by the LOCATER cleaning engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocaterError {
    /// The query referenced a device that has never appeared in the connectivity log.
    UnknownDevice(String),
    /// The query did not identify a device (neither MAC nor device id).
    MissingDevice,
    /// The underlying learning substrate failed.
    Learning(String),
}

impl fmt::Display for LocaterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocaterError::UnknownDevice(mac) => write!(f, "unknown device: {mac}"),
            LocaterError::MissingDevice => write!(f, "query does not identify a device"),
            LocaterError::Learning(msg) => write!(f, "learning error: {msg}"),
        }
    }
}

impl std::error::Error for LocaterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(LocaterError::UnknownDevice("ab".into())
            .to_string()
            .contains("ab"));
        assert!(LocaterError::MissingDevice.to_string().contains("device"));
        assert!(LocaterError::Learning("x".into()).to_string().contains("x"));
    }
}
