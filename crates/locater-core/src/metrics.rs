//! Quality metrics of the evaluation (paper §6.1).
//!
//! Given a query set `Q` with ground truth, the paper reports three precision
//! numbers:
//!
//! * `P_c = (|Q_out| + |Q_region|) / |Q|` — coarse precision: queries answered
//!   correctly as *outside* plus queries whose *region* was correct;
//! * `P_f = |Q_room| / |Q_region|` — fine precision: among the queries whose region
//!   was correct, the fraction whose *room* was also correct;
//! * `P_o = (|Q_room| + |Q_out|) / |Q|` — overall precision: room-correct plus
//!   outside-correct over all queries.
//!
//! [`PrecisionCounts`] accumulates those counters from `(ground truth, answer)`
//! pairs; [`EvaluationReport`] groups counters by a label (predictability band, user
//! profile, scenario, …) the way Tables 3 and 4 do.

use crate::system::{Answer, Location};
use locater_space::{RoomId, Space};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Ground-truth location of a device at a query time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TruthLocation {
    /// The person was outside the building.
    Outside,
    /// The person was in this room.
    Room(RoomId),
}

impl TruthLocation {
    /// `true` if the ground truth places the person inside the building.
    pub fn is_inside(&self) -> bool {
        matches!(self, TruthLocation::Room(_))
    }
}

/// Accumulated precision counters for one group of queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrecisionCounts {
    /// Total number of queries scored (`|Q|`).
    pub queries: usize,
    /// Queries whose ground truth was *outside*.
    pub truth_outside: usize,
    /// Queries answered *outside* correctly (`|Q_out|`).
    pub correct_outside: usize,
    /// Queries answered with the correct region (`|Q_region|`).
    pub correct_region: usize,
    /// Queries answered with the correct room (`|Q_room|`).
    pub correct_room: usize,
}

impl PrecisionCounts {
    /// Creates empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores one `(ground truth, answer)` pair.
    ///
    /// The predicted region is counted as correct when the ground-truth room is one of
    /// the rooms covered by that region; the predicted room is counted as correct only
    /// when it equals the ground-truth room (and, per the paper's definition of `P_f`,
    /// only region-correct answers can be room-correct).
    pub fn record(&mut self, space: &Space, truth: TruthLocation, predicted: &Location) {
        self.queries += 1;
        match truth {
            TruthLocation::Outside => {
                self.truth_outside += 1;
                if !predicted.is_inside() {
                    self.correct_outside += 1;
                }
            }
            TruthLocation::Room(truth_room) => {
                let Some(region) = predicted.region() else {
                    return; // predicted outside while the person was inside
                };
                if !space.rooms_in_region(region).contains(&truth_room) {
                    return;
                }
                self.correct_region += 1;
                if predicted.room() == Some(truth_room) {
                    self.correct_room += 1;
                }
            }
        }
    }

    /// Convenience: scores a full [`Answer`].
    pub fn record_answer(&mut self, space: &Space, truth: TruthLocation, answer: &Answer) {
        self.record(space, truth, &answer.location);
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &PrecisionCounts) {
        self.queries += other.queries;
        self.truth_outside += other.truth_outside;
        self.correct_outside += other.correct_outside;
        self.correct_region += other.correct_region;
        self.correct_room += other.correct_room;
    }

    /// Coarse precision `P_c`.
    pub fn pc(&self) -> f64 {
        ratio(self.correct_outside + self.correct_region, self.queries)
    }

    /// Fine precision `P_f`.
    pub fn pf(&self) -> f64 {
        ratio(self.correct_room, self.correct_region)
    }

    /// Overall precision `P_o`.
    pub fn po(&self) -> f64 {
        ratio(self.correct_room + self.correct_outside, self.queries)
    }

    /// `P_c`, `P_f`, `P_o` as percentages, the way the paper's tables print them.
    pub fn as_percentages(&self) -> (f64, f64, f64) {
        (self.pc() * 100.0, self.pf() * 100.0, self.po() * 100.0)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Precision counters grouped by a label, the way Tables 3 and 4 report per
/// predictability band / user profile.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// System or configuration name this report describes (e.g. "D-LOCATER").
    pub system: String,
    /// Counters per group label, ordered by label.
    pub groups: BTreeMap<String, PrecisionCounts>,
}

impl EvaluationReport {
    /// Creates an empty report for a system name.
    pub fn new(system: impl Into<String>) -> Self {
        Self {
            system: system.into(),
            groups: BTreeMap::new(),
        }
    }

    /// Scores one query under a group label.
    pub fn record(
        &mut self,
        group: &str,
        space: &Space,
        truth: TruthLocation,
        predicted: &Location,
    ) {
        self.groups
            .entry(group.to_string())
            .or_default()
            .record(space, truth, predicted);
    }

    /// The counters of one group, if present.
    pub fn group(&self, group: &str) -> Option<&PrecisionCounts> {
        self.groups.get(group)
    }

    /// Counters aggregated over all groups.
    pub fn overall(&self) -> PrecisionCounts {
        let mut total = PrecisionCounts::default();
        for counts in self.groups.values() {
            total.merge(counts);
        }
        total
    }

    /// Renders the report as a GitHub-flavoured markdown table with one row per group
    /// plus an overall row: `group | Pc | Pf | Po | queries`.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.system));
        out.push_str("| group | Pc | Pf | Po | queries |\n|---|---|---|---|---|\n");
        for (group, counts) in &self.groups {
            let (pc, pf, po) = counts.as_percentages();
            out.push_str(&format!(
                "| {group} | {pc:.1} | {pf:.1} | {po:.1} | {} |\n",
                counts.queries
            ));
        }
        let overall = self.overall();
        let (pc, pf, po) = overall.as_percentages();
        out.push_str(&format!(
            "| **overall** | {pc:.1} | {pf:.1} | {po:.1} | {} |\n",
            overall.queries
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_space::{RegionId, SpaceBuilder};

    fn space() -> Space {
        SpaceBuilder::new("metrics")
            .add_access_point("wap0", &["r1", "r2", "r3"])
            .add_access_point("wap1", &["r3", "r4"])
            .build()
            .unwrap()
    }

    fn room(space: &Space, name: &str) -> RoomId {
        space.room_id(name).unwrap()
    }

    #[test]
    fn paper_metric_definitions() {
        let space = space();
        let g0 = RegionId::new(0);
        let mut counts = PrecisionCounts::new();
        // 1. truth outside, predicted outside → Q_out.
        counts.record(&space, TruthLocation::Outside, &Location::Outside);
        // 2. truth r1, predicted room r1 in g0 → Q_region and Q_room.
        counts.record(
            &space,
            TruthLocation::Room(room(&space, "r1")),
            &Location::Room {
                room: room(&space, "r1"),
                region: g0,
            },
        );
        // 3. truth r2, predicted room r1 in g0 → Q_region only.
        counts.record(
            &space,
            TruthLocation::Room(room(&space, "r2")),
            &Location::Room {
                room: room(&space, "r1"),
                region: g0,
            },
        );
        // 4. truth r4, predicted region g0 (wrong region) → nothing.
        counts.record(
            &space,
            TruthLocation::Room(room(&space, "r4")),
            &Location::Region(g0),
        );
        // 5. truth outside, predicted a room → nothing.
        counts.record(
            &space,
            TruthLocation::Outside,
            &Location::Room {
                room: room(&space, "r1"),
                region: g0,
            },
        );
        assert_eq!(counts.queries, 5);
        assert_eq!(counts.correct_outside, 1);
        assert_eq!(counts.correct_region, 2);
        assert_eq!(counts.correct_room, 1);
        assert!((counts.pc() - 3.0 / 5.0).abs() < 1e-12);
        assert!((counts.pf() - 1.0 / 2.0).abs() < 1e-12);
        assert!((counts.po() - 2.0 / 5.0).abs() < 1e-12);
        let (pc, pf, po) = counts.as_percentages();
        assert!((pc - 60.0).abs() < 1e-9);
        assert!((pf - 50.0).abs() < 1e-9);
        assert!((po - 40.0).abs() < 1e-9);
    }

    #[test]
    fn predicted_outside_while_inside_scores_nothing() {
        let space = space();
        let mut counts = PrecisionCounts::new();
        counts.record(
            &space,
            TruthLocation::Room(room(&space, "r1")),
            &Location::Outside,
        );
        assert_eq!(counts.correct_region, 0);
        assert_eq!(counts.correct_outside, 0);
        assert_eq!(counts.pc(), 0.0);
    }

    #[test]
    fn region_only_prediction_counts_for_pc_but_not_pf() {
        let space = space();
        let mut counts = PrecisionCounts::new();
        counts.record(
            &space,
            TruthLocation::Room(room(&space, "r3")),
            &Location::Region(RegionId::new(1)),
        );
        assert_eq!(counts.correct_region, 1);
        assert_eq!(counts.correct_room, 0);
        assert_eq!(counts.pf(), 0.0);
        assert_eq!(counts.pc(), 1.0);
    }

    #[test]
    fn empty_counts_have_zero_metrics() {
        let counts = PrecisionCounts::new();
        assert_eq!(counts.pc(), 0.0);
        assert_eq!(counts.pf(), 0.0);
        assert_eq!(counts.po(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = PrecisionCounts {
            queries: 10,
            truth_outside: 2,
            correct_outside: 2,
            correct_region: 6,
            correct_room: 4,
        };
        let b = PrecisionCounts {
            queries: 5,
            truth_outside: 1,
            correct_outside: 0,
            correct_region: 3,
            correct_room: 3,
        };
        a.merge(&b);
        assert_eq!(a.queries, 15);
        assert_eq!(a.correct_room, 7);
        assert_eq!(a.correct_region, 9);
        assert_eq!(a.truth_outside, 3);
    }

    #[test]
    fn report_groups_and_overall() {
        let space = space();
        let mut report = EvaluationReport::new("I-LOCATER");
        let g0 = RegionId::new(0);
        report.record(
            "[40,55)",
            &space,
            TruthLocation::Room(room(&space, "r1")),
            &Location::Room {
                room: room(&space, "r1"),
                region: g0,
            },
        );
        report.record(
            "[55,70)",
            &space,
            TruthLocation::Outside,
            &Location::Outside,
        );
        assert_eq!(report.groups.len(), 2);
        assert_eq!(report.group("[40,55)").unwrap().correct_room, 1);
        assert!(report.group("[85,100)").is_none());
        let overall = report.overall();
        assert_eq!(overall.queries, 2);
        assert_eq!(overall.correct_room, 1);
        assert_eq!(overall.correct_outside, 1);
        let md = report.to_markdown();
        assert!(md.contains("I-LOCATER"));
        assert!(md.contains("[40,55)"));
        assert!(md.contains("**overall**"));
        assert!(md.lines().count() >= 6);
    }
}
