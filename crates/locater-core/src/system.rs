//! The LOCATER system facade (paper §5): query engine + cleaning engine + caching
//! engine behind the query API `Q = (device, time)`.
//!
//! [`Locater`] owns an [`EventStore`] and answers [`Query`]s with an [`Answer`]:
//!
//! 1. the **coarse** step ([`crate::coarse`]) decides whether the device was outside
//!    the building at the query time or inside a specific region — either trivially
//!    (a connectivity event is valid at that time) or by classifying the gap;
//! 2. the **fine** step ([`crate::fine`]) disambiguates the region to a room, using
//!    room and group affinities of the devices online around the query time;
//! 3. the **caching engine** ([`crate::cache`]) persists the pairwise affinities
//!    computed for the answer into the global affinity graph and uses it to order
//!    neighbor processing for subsequent queries.
//!
//! Per-device coarse models are trained lazily and cached; they are refreshed when a
//! query falls outside the window the model was trained for.

use crate::cache::GlobalAffinityGraph;
use crate::coarse::{
    CoarseConfig, CoarseLabel, CoarseLocalizer, CoarseMethod, CoarseOutcome, DeviceCoarseModel,
};
use crate::error::LocaterError;
use crate::fine::{FineConfig, FineLocalizer, FineOutcome, NeighborContribution};
use locater_events::clock::{self, Timestamp};
use locater_events::{DeviceId, Gap};
use locater_space::{RegionId, RoomId};
use locater_store::EventStore;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::{Duration, Instant};

pub use crate::fine::FineMode;

/// Whether the caching engine (global affinity graph) is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CacheMode {
    /// Affinities are cached and used to order neighbor processing (`+C` systems).
    #[default]
    Enabled,
    /// Every query recomputes affinities and processes neighbors in natural order.
    Disabled,
}

/// A location query `Q = (d_i, t_q)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Device MAC address / log identifier, if the caller knows it.
    pub mac: Option<String>,
    /// Already-resolved device id, if the caller has one.
    pub device: Option<DeviceId>,
    /// Query time.
    pub t: Timestamp,
}

impl Query {
    /// Query by MAC address.
    pub fn by_mac(mac: impl Into<String>, t: Timestamp) -> Self {
        Self {
            mac: Some(mac.into()),
            device: None,
            t,
        }
    }

    /// Query by device id.
    pub fn by_device(device: DeviceId, t: Timestamp) -> Self {
        Self {
            mac: None,
            device: Some(device),
            t,
        }
    }
}

/// A semantic location at one of the three granularities of the space model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Location {
    /// Outside the building.
    Outside,
    /// Inside the building, in this region, room unknown (coarse-only answers).
    Region(RegionId),
    /// Inside the building, in this room of this region.
    Room {
        /// The selected room.
        room: RoomId,
        /// The region the room was selected from.
        region: RegionId,
    },
}

impl Location {
    /// `true` if the location is inside the building.
    pub fn is_inside(&self) -> bool {
        !matches!(self, Location::Outside)
    }

    /// The region, if inside.
    pub fn region(&self) -> Option<RegionId> {
        match self {
            Location::Outside => None,
            Location::Region(region) => Some(*region),
            Location::Room { region, .. } => Some(*region),
        }
    }

    /// The room, if resolved to room level.
    pub fn room(&self) -> Option<RoomId> {
        match self {
            Location::Room { room, .. } => Some(*room),
            _ => None,
        }
    }
}

/// The answer to a [`Query`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Answer {
    /// The resolved device.
    pub device: DeviceId,
    /// The query time.
    pub t: Timestamp,
    /// The cleaned semantic location.
    pub location: Location,
    /// How the coarse step decided the building/region label.
    pub coarse_method: CoarseMethod,
    /// Combined confidence of the answer in `[0, 1]`.
    pub confidence: f64,
}

impl Answer {
    /// `true` if the device was located inside the building.
    pub fn is_inside(&self) -> bool {
        self.location.is_inside()
    }

    /// `true` if the device was located outside the building.
    pub fn is_outside(&self) -> bool {
        !self.is_inside()
    }

    /// The region, if inside.
    pub fn region(&self) -> Option<RegionId> {
        self.location.region()
    }

    /// The room, if resolved to room level.
    pub fn room(&self) -> Option<RoomId> {
        self.location.room()
    }
}

/// Diagnostics collected while answering one query; used by the evaluation harness.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryDiagnostics {
    /// Outcome of the coarse step.
    pub coarse: CoarseOutcome,
    /// Outcome of the fine step (absent for outside answers).
    pub fine: Option<FineOutcome>,
    /// Wall-clock time spent answering the query.
    pub elapsed: Duration,
    /// Whether a cached per-device coarse model was reused.
    pub coarse_model_reused: bool,
    /// Whether the global affinity graph already had an edge for the queried device.
    pub cache_warm: bool,
}

/// Configuration of the full LOCATER system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocaterConfig {
    /// Coarse-grained localization parameters (§3).
    pub coarse: CoarseConfig,
    /// Fine-grained localization parameters (§4).
    pub fine: FineConfig,
    /// Whether the caching engine is active (§5).
    pub cache: CacheMode,
    /// A cached per-device coarse model is reused as long as the query time is within
    /// this many seconds after the end of the window it was trained on.
    pub model_refresh_slack: Timestamp,
}

impl Default for LocaterConfig {
    fn default() -> Self {
        Self {
            coarse: CoarseConfig::default(),
            fine: FineConfig::default(),
            cache: CacheMode::Enabled,
            model_refresh_slack: clock::days(7),
        }
    }
}

impl LocaterConfig {
    /// Returns a copy configured for the given fine-grained mode (I-FINE / D-FINE).
    pub fn with_fine_mode(mut self, mode: FineMode) -> Self {
        self.fine.mode = mode;
        self
    }

    /// Returns a copy with the caching engine enabled or disabled.
    pub fn with_cache(mut self, cache: CacheMode) -> Self {
        self.cache = cache;
        self
    }

    /// Returns a copy with the given amount of history (both coarse training history
    /// and fine affinity window are clamped to it). Used by the Fig. 8 experiment.
    pub fn with_history(mut self, history: Timestamp) -> Self {
        self.coarse.history = history.max(1);
        self.fine.affinity_window = history.clamp(1, self.fine.affinity_window.max(1));
        self
    }
}

/// The LOCATER system: cleaning engine + caching engine over one event store.
#[derive(Debug)]
pub struct Locater {
    store: EventStore,
    config: LocaterConfig,
    coarse: CoarseLocalizer,
    fine: FineLocalizer,
    cache: RwLock<GlobalAffinityGraph>,
    models: RwLock<HashMap<DeviceId, DeviceCoarseModel>>,
}

impl Locater {
    /// Creates a system over `store` with the given configuration.
    pub fn new(store: EventStore, config: LocaterConfig) -> Self {
        Self {
            store,
            config,
            coarse: CoarseLocalizer::new(config.coarse),
            fine: FineLocalizer::new(config.fine),
            cache: RwLock::new(GlobalAffinityGraph::new()),
            models: RwLock::new(HashMap::new()),
        }
    }

    /// The underlying event store.
    pub fn store(&self) -> &EventStore {
        &self.store
    }

    /// The system configuration.
    pub fn config(&self) -> &LocaterConfig {
        &self.config
    }

    /// Number of edges and samples currently held by the caching engine.
    pub fn cache_stats(&self) -> (usize, usize) {
        let cache = self.cache.read();
        (cache.num_edges(), cache.num_samples())
    }

    /// Drops all cached affinities and per-device coarse models.
    pub fn clear_cache(&self) {
        self.cache.write().clear();
        self.models.write().clear();
    }

    /// Resolves the device a query refers to.
    pub fn resolve(&self, query: &Query) -> Result<DeviceId, LocaterError> {
        if let Some(device) = query.device {
            if device.index() < self.store.num_devices() {
                return Ok(device);
            }
            return Err(LocaterError::UnknownDevice(device.to_string()));
        }
        match &query.mac {
            Some(mac) => self
                .store
                .device_id(mac)
                .ok_or_else(|| LocaterError::UnknownDevice(mac.clone())),
            None => Err(LocaterError::MissingDevice),
        }
    }

    /// Answers a query.
    pub fn locate(&self, query: &Query) -> Result<Answer, LocaterError> {
        self.locate_detailed(query).map(|(answer, _)| answer)
    }

    /// Answers a query and returns per-query diagnostics alongside the answer.
    pub fn locate_detailed(
        &self,
        query: &Query,
    ) -> Result<(Answer, QueryDiagnostics), LocaterError> {
        let start = Instant::now();
        let device = self.resolve(query)?;
        let t_q = query.t;

        // ---- Coarse step --------------------------------------------------
        let (coarse, model_reused) = self.coarse_outcome(device, t_q);
        let region = match coarse.label {
            CoarseLabel::Outside => {
                let answer = assemble_answer(device, t_q, &coarse, None);
                let diagnostics = QueryDiagnostics {
                    coarse,
                    fine: None,
                    elapsed: start.elapsed(),
                    coarse_model_reused: model_reused,
                    cache_warm: false,
                };
                return Ok((answer, diagnostics));
            }
            CoarseLabel::Inside(region) => region,
        };

        // ---- Fine step ----------------------------------------------------
        // The neighbor scan and the fine localization both run lock-free; the
        // graph read lock covers only the plan extraction between them.
        let plan = match self.config.cache {
            CacheMode::Enabled => {
                let neighbors = self.fine_neighbors(device, t_q, region);
                let cache = self.cache.read();
                Some(self.fine_plan(device, t_q, &neighbors, &cache))
            }
            CacheMode::Disabled => None,
        };
        let (fine, cache_warm) = self.fine_exec(device, t_q, region, plan);
        if self.config.cache == CacheMode::Enabled && !fine.contributions.is_empty() {
            self.cache
                .write()
                .merge_local(device, &fine.contributions, t_q);
        }

        let answer = assemble_answer(device, t_q, &coarse, Some((&fine, region)));
        let diagnostics = QueryDiagnostics {
            coarse,
            fine: Some(fine),
            elapsed: start.elapsed(),
            coarse_model_reused: model_reused,
            cache_warm,
        };
        Ok((answer, diagnostics))
    }

    /// Runs the coarse step, reusing the cached per-device model when it is still
    /// valid for the query time. Returns the outcome and whether the model was reused.
    ///
    /// Lock discipline is read-mostly: the reuse check and classification take
    /// read locks, and expensive model training happens outside any lock, so
    /// concurrent `locate` callers with warm models never serialize.
    fn coarse_outcome(&self, device: DeviceId, t_q: Timestamp) -> (CoarseOutcome, bool) {
        let gap = match self.coarse_shortcut(device, t_q) {
            CoarseShortcut::Trivial(outcome) => return (outcome, false),
            CoarseShortcut::Gap(gap) => gap,
        };
        let reusable = {
            let models = self.models.read();
            models
                .get(&device)
                .is_some_and(|model| self.model_covers(model, t_q))
        };
        if !reusable {
            let model = self.coarse.train_device_model(&self.store, device, t_q);
            self.models.write().insert(device, model);
        }
        let models = self.models.read();
        let model = models
            .get(&device)
            .expect("model was inserted above if missing");
        (
            self.coarse.classify_with_model(&self.store, model, &gap),
            reusable,
        )
    }

    /// `true` if a cached model is still valid for a query at `t_q`.
    fn model_covers(&self, model: &DeviceCoarseModel, t_q: Timestamp) -> bool {
        t_q >= model.history.start && t_q <= model.history.end + self.config.model_refresh_slack
    }

    /// The model-free coarse answers (covered by an event, out of the log
    /// span), or the gap that needs model-based classification.
    fn coarse_shortcut(&self, device: DeviceId, t_q: Timestamp) -> CoarseShortcut {
        if let Some(region) = self.store.covering_region(device, t_q) {
            return CoarseShortcut::Trivial(CoarseOutcome {
                label: CoarseLabel::Inside(region),
                method: CoarseMethod::CoveredByEvent,
                confidence: 1.0,
                gap: None,
            });
        }
        match self.store.gap_at(device, t_q) {
            Some(gap) => CoarseShortcut::Gap(gap),
            None => CoarseShortcut::Trivial(CoarseOutcome {
                label: CoarseLabel::Outside,
                method: CoarseMethod::OutOfSpan,
                confidence: 1.0,
                gap: None,
            }),
        }
    }

    /// Runs the coarse step against an explicit model map (a shard-local map in
    /// the batch pipeline). Returns the outcome and how the model map was used,
    /// so callers can tell freshly trained models from untouched seeds.
    fn coarse_outcome_in(
        &self,
        models: &mut HashMap<DeviceId, DeviceCoarseModel>,
        device: DeviceId,
        t_q: Timestamp,
    ) -> (CoarseOutcome, ModelUse) {
        let gap = match self.coarse_shortcut(device, t_q) {
            CoarseShortcut::Trivial(outcome) => return (outcome, ModelUse::NotNeeded),
            CoarseShortcut::Gap(gap) => gap,
        };
        let reused = models
            .get(&device)
            .is_some_and(|model| self.model_covers(model, t_q));
        if !reused {
            let model = self.coarse.train_device_model(&self.store, device, t_q);
            models.insert(device, model);
        }
        let model = models
            .get(&device)
            .expect("model was inserted above if missing");
        let outcome = self.coarse.classify_with_model(&self.store, model, &gap);
        let usage = if reused {
            ModelUse::Reused
        } else {
            ModelUse::Trained
        };
        (outcome, usage)
    }

    /// The neighbor devices eligible for the fine step — a store scan that
    /// needs no lock.
    fn fine_neighbors(&self, device: DeviceId, t_q: Timestamp, region: RegionId) -> Vec<DeviceId> {
        self.fine
            .candidate_neighbors(&self.store, device, t_q, region)
            .into_iter()
            .map(|(d, _)| d)
            .collect()
    }

    /// Extracts what the fine step needs from the affinity graph: the neighbor
    /// processing order, cached pairwise affinities (which replace the per-pair
    /// history scans of cold queries), and cache warmth. Callers take the graph
    /// lock only for this extraction; the neighbor scan
    /// ([`Locater::fine_neighbors`]) and [`Locater::fine_exec`] run lock-free.
    fn fine_plan(
        &self,
        device: DeviceId,
        t_q: Timestamp,
        neighbors: &[DeviceId],
        cache: &GlobalAffinityGraph,
    ) -> FinePlan {
        let warm = neighbors
            .iter()
            .any(|&n| !cache.samples(device, n).is_empty());
        let cached: HashMap<DeviceId, f64> = neighbors
            .iter()
            .filter_map(|&n| {
                cache
                    .cached_pair_affinity(device, n, t_q)
                    .map(|affinity| (n, affinity))
            })
            .collect();
        let order = cache.order_neighbors(device, neighbors, t_q);
        FinePlan {
            order,
            cached,
            warm,
        }
    }

    /// Runs the fine step with an optional cache plan. Returns the outcome and
    /// whether the affinity graph was warm for the queried device.
    fn fine_exec(
        &self,
        device: DeviceId,
        t_q: Timestamp,
        region: RegionId,
        plan: Option<FinePlan>,
    ) -> (FineOutcome, bool) {
        let Some(FinePlan {
            order,
            cached,
            warm,
        }) = plan
        else {
            return (
                self.fine.locate(&self.store, device, t_q, region, None),
                false,
            );
        };
        let lookup = move |neighbor: DeviceId| cached.get(&neighbor).copied();
        let fine = self.fine.locate_with_cache(
            &self.store,
            device,
            t_q,
            region,
            Some(&order),
            Some(&lookup),
        );
        (fine, warm)
    }

    /// Answers a batch of queries, sharded across `jobs` worker threads.
    ///
    /// The batch pipeline is built for determinism: results are **identical for
    /// every `jobs` value** (including the sequential `jobs = 1` path) and are
    /// returned in query order. Three properties make that hold:
    ///
    /// 1. every query is answered against a *frozen* snapshot of the global
    ///    affinity graph (cloned under a brief read lock), so no shard observes
    ///    another shard's cache warming — and, unlike per-query `locate` loops,
    ///    no query observes warming from *earlier batch queries* either;
    /// 2. queries are sharded **by device** — a device's queries are processed
    ///    by one shard in query order, so its lazily trained coarse model
    ///    evolves exactly as in the sequential path (shard-local model maps are
    ///    seeded from the shared model cache, which is also per-device);
    /// 3. the shard-local affinity contributions are merged into the global
    ///    graph only after all shards join, in ascending query order.
    ///
    /// Device → shard assignment balances per-device query counts greedily, so
    /// skewed workloads still spread across the pool.
    pub fn locate_batch(
        &self,
        queries: &[Query],
        jobs: usize,
    ) -> Vec<Result<Answer, LocaterError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        // Resolve every query up front; unresolvable queries error in place and
        // never reach a shard.
        let resolved: Vec<Result<DeviceId, LocaterError>> =
            queries.iter().map(|q| self.resolve(q)).collect();

        // Deterministic device → shard assignment: devices ordered by
        // decreasing query count (ties by device id) go to the least-loaded
        // shard (ties by shard index). A shard is a real worker thread, so the
        // job count is capped by the distinct-device count — extra shards
        // could only ever be empty.
        let mut query_counts: HashMap<DeviceId, usize> = HashMap::new();
        for device in resolved.iter().flatten() {
            *query_counts.entry(*device).or_insert(0) += 1;
        }
        let jobs = jobs.clamp(1, queries.len()).min(query_counts.len().max(1));
        let mut devices: Vec<(DeviceId, usize)> = query_counts.into_iter().collect();
        devices.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut load = vec![0usize; jobs];
        let mut shard_of: HashMap<DeviceId, usize> = HashMap::new();
        for (device, count) in devices {
            let shard = (0..jobs).min_by_key(|&i| (load[i], i)).expect("jobs >= 1");
            load[shard] += count;
            shard_of.insert(device, shard);
        }
        let mut shards: Vec<Vec<usize>> = vec![Vec::new(); jobs];
        for (idx, device) in resolved.iter().enumerate() {
            if let Ok(device) = device {
                shards[shard_of[device]].push(idx);
            }
        }

        // Seed shard-local model maps from the shared cache: per-device state
        // crosses into exactly one shard, preserving sequential semantics.
        let seeds: Vec<HashMap<DeviceId, DeviceCoarseModel>> = {
            let models = self.models.read();
            shards
                .iter()
                .map(|indices| {
                    let mut seed: HashMap<DeviceId, DeviceCoarseModel> = HashMap::new();
                    for &idx in indices {
                        if let Ok(device) = resolved[idx] {
                            if let Some(model) = models.get(&device) {
                                seed.entry(device).or_insert_with(|| model.clone());
                            }
                        }
                    }
                    seed
                })
                .collect()
        };

        // Parallel phase: all shards answer against the same frozen graph. The
        // snapshot is a clone taken under a brief read lock, so concurrent
        // single-query callers are never stalled for the batch's duration.
        let snapshot: Option<GlobalAffinityGraph> = match self.config.cache {
            CacheMode::Enabled => Some(self.cache.read().clone()),
            CacheMode::Disabled => None,
        };
        let frozen: Option<&GlobalAffinityGraph> = snapshot.as_ref();
        let mut outputs: Vec<ShardOutput> = Vec::new();
        outputs.resize_with(jobs, ShardOutput::default);
        rayon::scope(|scope| {
            for ((indices, seed), out) in shards.iter().zip(seeds).zip(outputs.iter_mut()) {
                if indices.is_empty() {
                    continue;
                }
                let resolved = &resolved;
                scope.spawn(move |_| {
                    *out = self.run_shard(queries, indices, resolved, seed, frozen);
                });
            }
        });

        // Deterministic merge: contributions in query order, models per device.
        let mut answers: Vec<Option<Answer>> = vec![None; queries.len()];
        let mut contributions: Vec<ShardContribution> = Vec::new();
        let mut trained: HashMap<DeviceId, DeviceCoarseModel> = HashMap::new();
        for output in outputs {
            for (idx, answer) in output.answers {
                answers[idx] = Some(answer);
            }
            contributions.extend(output.contributions);
            trained.extend(output.models);
        }
        if self.config.cache == CacheMode::Enabled && !contributions.is_empty() {
            contributions.sort_by_key(|c| c.query_index);
            let mut cache = self.cache.write();
            for contribution in &contributions {
                cache.merge_local(contribution.device, &contribution.neighbors, contribution.t);
            }
        }
        if !trained.is_empty() {
            self.models.write().extend(trained);
        }

        answers
            .into_iter()
            .zip(resolved)
            .map(|(answer, device)| match device {
                Ok(_) => Ok(answer.expect("every resolved query is answered by its shard")),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Answers one shard's queries (in query order) against the frozen graph,
    /// collecting answers, affinity contributions, and freshly trained models
    /// (untouched seed models are not reported back).
    fn run_shard(
        &self,
        queries: &[Query],
        indices: &[usize],
        resolved: &[Result<DeviceId, LocaterError>],
        mut models: HashMap<DeviceId, DeviceCoarseModel>,
        graph: Option<&GlobalAffinityGraph>,
    ) -> ShardOutput {
        let mut output = ShardOutput::default();
        let mut trained: std::collections::HashSet<DeviceId> = std::collections::HashSet::new();
        for &idx in indices {
            let device = match resolved[idx] {
                Ok(device) => device,
                Err(_) => continue,
            };
            let t_q = queries[idx].t;
            let (coarse, model_use) = self.coarse_outcome_in(&mut models, device, t_q);
            if model_use == ModelUse::Trained {
                trained.insert(device);
            }
            let answer = match coarse.label {
                CoarseLabel::Outside => assemble_answer(device, t_q, &coarse, None),
                CoarseLabel::Inside(region) => {
                    let plan = graph.map(|cache| {
                        let neighbors = self.fine_neighbors(device, t_q, region);
                        self.fine_plan(device, t_q, &neighbors, cache)
                    });
                    let (mut fine, _) = self.fine_exec(device, t_q, region, plan);
                    let answer = assemble_answer(device, t_q, &coarse, Some((&fine, region)));
                    if graph.is_some() && !fine.contributions.is_empty() {
                        output.contributions.push(ShardContribution {
                            query_index: idx,
                            device,
                            t: t_q,
                            neighbors: std::mem::take(&mut fine.contributions),
                        });
                    }
                    answer
                }
            };
            output.answers.push((idx, answer));
        }
        models.retain(|device, _| trained.contains(device));
        output.models = models;
        output
    }
}

/// Builds the [`Answer`] for one query from its coarse (and, when inside, fine)
/// outcomes — the single place the answer/confidence composition lives, shared
/// by the single-query and batch paths.
fn assemble_answer(
    device: DeviceId,
    t_q: Timestamp,
    coarse: &CoarseOutcome,
    fine: Option<(&FineOutcome, RegionId)>,
) -> Answer {
    match fine {
        None => Answer {
            device,
            t: t_q,
            location: Location::Outside,
            coarse_method: coarse.method,
            confidence: coarse.confidence,
        },
        Some((fine, region)) => Answer {
            device,
            t: t_q,
            location: Location::Room {
                room: fine.room,
                region,
            },
            coarse_method: coarse.method,
            confidence: coarse.confidence * fine.confidence(),
        },
    }
}

/// How the coarse step used the model map for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelUse {
    /// The query was answered without a model (covered / out of span).
    NotNeeded,
    /// A cached model was still valid and reused.
    Reused,
    /// A model was (re)trained for this query.
    Trained,
}

/// The graph-derived inputs of one fine-step execution: neighbor processing
/// order, cached pairwise affinities, and whether the graph was warm for the
/// queried device. Extracted under the graph lock; executed lock-free.
struct FinePlan {
    order: Vec<DeviceId>,
    cached: HashMap<DeviceId, f64>,
    warm: bool,
}

/// Outcome of the model-free coarse checks: a trivial answer, or the gap that
/// needs model-based classification.
enum CoarseShortcut {
    Trivial(CoarseOutcome),
    Gap(Gap),
}

/// The local affinity graph of one batch-answered query, queued for the
/// post-join merge into the global graph.
#[derive(Debug, Clone)]
struct ShardContribution {
    query_index: usize,
    device: DeviceId,
    t: Timestamp,
    neighbors: Vec<NeighborContribution>,
}

/// Everything one batch shard produces: answers (tagged with their query
/// index), affinity contributions, and the shard-local trained models.
#[derive(Debug, Default)]
struct ShardOutput {
    answers: Vec<(usize, Answer)>,
    contributions: Vec<ShardContribution>,
    models: HashMap<DeviceId, DeviceCoarseModel>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_space::{RoomType, Space, SpaceBuilder};

    fn space() -> Space {
        SpaceBuilder::new("system-test")
            .add_access_point("wap0", &["office-a", "office-b", "lounge"])
            .add_access_point("wap1", &["lounge", "lab"])
            .room_type("lounge", RoomType::Public)
            .room_owner("office-a", "alice")
            .room_owner("office-b", "bob")
            .build()
            .unwrap()
    }

    /// Alice and Bob work together on wap0 on weekdays for `weeks` weeks.
    fn office_store(weeks: i64) -> EventStore {
        let mut store = EventStore::new(space());
        for week in 0..weeks {
            for day in 0..5 {
                let d = week * 7 + day;
                for slot in 0..16 {
                    let t = clock::at(d, 9, slot * 30, 0);
                    store.ingest_raw("alice", t, "wap0").unwrap();
                    store.ingest_raw("bob", t + 45, "wap0").unwrap();
                }
            }
        }
        store
    }

    #[test]
    fn query_resolution_by_mac_and_id() {
        let locater = Locater::new(office_store(1), LocaterConfig::default());
        let alice = locater.store().device_id("alice").unwrap();
        assert_eq!(locater.resolve(&Query::by_mac("alice", 0)).unwrap(), alice);
        assert_eq!(locater.resolve(&Query::by_device(alice, 0)).unwrap(), alice);
        assert!(matches!(
            locater.resolve(&Query::by_mac("nobody", 0)),
            Err(LocaterError::UnknownDevice(_))
        ));
        assert!(matches!(
            locater.resolve(&Query::by_device(DeviceId::new(99), 0)),
            Err(LocaterError::UnknownDevice(_))
        ));
        assert!(matches!(
            locater.resolve(&Query {
                mac: None,
                device: None,
                t: 0
            }),
            Err(LocaterError::MissingDevice)
        ));
    }

    #[test]
    fn covered_query_resolves_to_a_room_in_the_covering_region() {
        let locater = Locater::new(office_store(2), LocaterConfig::default());
        let t_q = clock::at(8, 9, 5, 10);
        let answer = locater.locate(&Query::by_mac("alice", t_q)).unwrap();
        assert!(answer.is_inside());
        assert_eq!(answer.coarse_method, CoarseMethod::CoveredByEvent);
        let region = answer.region().unwrap();
        assert_eq!(region, RegionId::new(0));
        let room = answer.room().unwrap();
        assert!(locater
            .store()
            .space()
            .rooms_in_region(region)
            .contains(&room));
        assert!(answer.confidence > 0.0);
    }

    #[test]
    fn overnight_query_is_outside() {
        let locater = Locater::new(office_store(4), LocaterConfig::default());
        let t_q = clock::at(22, 3, 0, 0);
        let answer = locater.locate(&Query::by_mac("alice", t_q)).unwrap();
        assert!(answer.is_outside());
        assert_eq!(answer.location, Location::Outside);
        assert_eq!(answer.room(), None);
        assert_eq!(answer.region(), None);
    }

    #[test]
    fn out_of_span_query_is_outside() {
        let locater = Locater::new(office_store(1), LocaterConfig::default());
        let answer = locater
            .locate(&Query::by_mac("alice", clock::at(400, 12, 0, 0)))
            .unwrap();
        assert!(answer.is_outside());
        assert_eq!(answer.coarse_method, CoarseMethod::OutOfSpan);
    }

    #[test]
    fn coarse_models_are_cached_and_reused() {
        let locater = Locater::new(office_store(4), LocaterConfig::default());
        // A query in a short mid-day gap on the last week.
        let t_q = clock::at(22, 9, 20, 10);
        let (_, first) = locater
            .locate_detailed(&Query::by_mac("alice", t_q))
            .unwrap();
        let (_, second) = locater
            .locate_detailed(&Query::by_mac("alice", t_q + 60))
            .unwrap();
        // The first gap-classifying query trains the model; the second reuses it
        // (covered queries never touch the model, so pick gap times).
        if first.coarse.gap.is_some() && second.coarse.gap.is_some() {
            assert!(!first.coarse_model_reused);
            assert!(second.coarse_model_reused);
        }
    }

    #[test]
    fn caching_engine_accumulates_edges_across_queries() {
        let locater = Locater::new(office_store(3), LocaterConfig::default());
        assert_eq!(locater.cache_stats(), (0, 0));
        // Alice is covered at this time and Bob is online nearby: the fine step runs
        // and produces contributions.
        let t_q = clock::at(15, 9, 30, 20);
        let (_, diag) = locater
            .locate_detailed(&Query::by_mac("alice", t_q))
            .unwrap();
        assert!(diag.fine.is_some());
        let (edges, samples) = locater.cache_stats();
        assert!(edges >= 1, "expected cached edges after a fine query");
        assert!(samples >= 1);
        // The second query sees a warm cache.
        let (_, diag2) = locater
            .locate_detailed(&Query::by_mac("alice", t_q + 120))
            .unwrap();
        assert!(diag2.cache_warm);
        locater.clear_cache();
        assert_eq!(locater.cache_stats(), (0, 0));
    }

    #[test]
    fn disabled_cache_never_stores_affinities() {
        let config = LocaterConfig::default().with_cache(CacheMode::Disabled);
        let locater = Locater::new(office_store(3), config);
        let t_q = clock::at(15, 9, 30, 20);
        let _ = locater.locate(&Query::by_mac("alice", t_q)).unwrap();
        assert_eq!(locater.cache_stats(), (0, 0));
    }

    #[test]
    fn config_builders_adjust_modes() {
        let config = LocaterConfig::default()
            .with_fine_mode(FineMode::Dependent)
            .with_cache(CacheMode::Disabled)
            .with_history(clock::weeks(2));
        assert_eq!(config.fine.mode, FineMode::Dependent);
        assert_eq!(config.cache, CacheMode::Disabled);
        assert_eq!(config.coarse.history, clock::weeks(2));
        let locater = Locater::new(office_store(2), config);
        let answer = locater
            .locate(&Query::by_mac("bob", clock::at(8, 9, 30, 10)))
            .unwrap();
        assert!(answer.is_inside());
    }

    /// A mixed batch workload over the office store: covered instants, gaps,
    /// out-of-span times, and an unknown device.
    fn batch_queries() -> Vec<Query> {
        let mut queries = Vec::new();
        for day in 10..20 {
            for (mac, minute) in [("alice", 5), ("bob", 20), ("alice", 40)] {
                queries.push(Query::by_mac(mac, clock::at(day, 9, minute, 10)));
                queries.push(Query::by_mac(mac, clock::at(day, 13, minute, 0)));
                queries.push(Query::by_mac(mac, clock::at(day, 3, minute, 0)));
            }
        }
        queries.push(Query::by_mac("ghost", clock::at(12, 9, 0, 0)));
        queries.push(Query::by_mac("alice", clock::at(400, 9, 0, 0)));
        queries
    }

    #[test]
    fn locate_batch_is_identical_across_job_counts() {
        let queries = batch_queries();
        let baseline = Locater::new(office_store(4), LocaterConfig::default());
        let sequential = baseline.locate_batch(&queries, 1);
        for jobs in [2, 3, 8, 64] {
            let locater = Locater::new(office_store(4), LocaterConfig::default());
            let parallel = locater.locate_batch(&queries, jobs);
            assert_eq!(sequential, parallel, "jobs={jobs} diverged from jobs=1");
        }
    }

    #[test]
    fn locate_batch_preserves_query_order_and_errors() {
        let locater = Locater::new(office_store(3), LocaterConfig::default());
        let queries = batch_queries();
        let results = locater.locate_batch(&queries, 4);
        assert_eq!(results.len(), queries.len());
        for (query, result) in queries.iter().zip(&results) {
            match result {
                Ok(answer) => assert_eq!(answer.t, query.t),
                Err(e) => assert!(matches!(e, LocaterError::UnknownDevice(_))),
            }
        }
        // The ghost query errors in place; its neighbors are still answered.
        let ghost = queries
            .iter()
            .position(|q| q.mac.as_deref() == Some("ghost"));
        assert!(results[ghost.unwrap()].is_err());
        assert!(results.iter().filter(|r| r.is_ok()).count() >= queries.len() - 1);
    }

    #[test]
    fn locate_batch_warms_cache_and_models_afterwards() {
        let locater = Locater::new(office_store(3), LocaterConfig::default());
        assert_eq!(locater.cache_stats(), (0, 0));
        let queries: Vec<Query> = (0..8)
            .map(|i| Query::by_mac("alice", clock::at(15, 9, 30, 20 + i)))
            .collect();
        let results = locater.locate_batch(&queries, 2);
        assert!(results.iter().all(Result::is_ok));
        let (edges, samples) = locater.cache_stats();
        assert!(
            edges >= 1,
            "batch contributions must reach the global graph"
        );
        assert!(samples >= 1);
    }

    #[test]
    fn locate_batch_with_cache_disabled_stores_nothing() {
        let config = LocaterConfig::default().with_cache(CacheMode::Disabled);
        let locater = Locater::new(office_store(3), config);
        let queries = batch_queries();
        let results = locater.locate_batch(&queries, 4);
        assert!(results.iter().any(Result::is_ok));
        assert_eq!(locater.cache_stats(), (0, 0));
    }

    #[test]
    fn locate_batch_on_empty_input_is_empty() {
        let locater = Locater::new(office_store(1), LocaterConfig::default());
        assert!(locater.locate_batch(&[], 4).is_empty());
    }

    #[test]
    fn location_accessors() {
        let outside = Location::Outside;
        assert!(!outside.is_inside());
        assert_eq!(outside.room(), None);
        let region = Location::Region(RegionId::new(2));
        assert!(region.is_inside());
        assert_eq!(region.region(), Some(RegionId::new(2)));
        assert_eq!(region.room(), None);
        let room = Location::Room {
            room: RoomId::new(5),
            region: RegionId::new(2),
        };
        assert_eq!(room.room(), Some(RoomId::new(5)));
        assert_eq!(room.region(), Some(RegionId::new(2)));
    }
}
