//! Property-based tests of the cleaning engine's probabilistic invariants:
//! room-affinity distributions, group affinities, the possible-world bounds of
//! Theorems 1–3, the stop conditions, and the caching engine's ordering.

use locater_core::cache::GlobalAffinityGraph;
use locater_core::fine::{AffinityEngine, PosteriorBounds, RoomAffinityWeights, RoomPosterior};
use locater_events::DeviceId;
use locater_space::{RoomType, Space, SpaceBuilder};
use locater_store::EventStore;
use proptest::prelude::*;

/// Builds a space with `num_aps` access points each covering `rooms_per_ap` rooms with
/// one room of overlap, and marks every third room public.
fn build_space(num_aps: usize, rooms_per_ap: usize) -> Space {
    let mut builder = SpaceBuilder::new("prop-space");
    let total_rooms = num_aps * (rooms_per_ap - 1) + 1;
    let names: Vec<String> = (0..total_rooms).map(|i| format!("r{i}")).collect();
    for ap in 0..num_aps {
        let start = ap * (rooms_per_ap - 1);
        let end = (start + rooms_per_ap).min(total_rooms);
        let coverage: Vec<&str> = names[start..end].iter().map(String::as_str).collect();
        builder = builder.add_access_point(&format!("wap{ap}"), &coverage);
    }
    for (i, name) in names.iter().enumerate() {
        if i % 3 == 0 {
            builder = builder.room_type(name, RoomType::Public);
        }
    }
    builder.build().unwrap()
}

fn arb_weights() -> impl Strategy<Value = RoomAffinityWeights> {
    prop::sample::select(RoomAffinityWeights::TABLE2.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Room affinities always form a probability distribution over the candidate
    /// rooms, for any space shape, any device and any weight combination (§4.1).
    #[test]
    fn room_affinities_are_a_distribution(
        num_aps in 2usize..6,
        rooms_per_ap in 3usize..8,
        weights in arb_weights(),
        preferred_room in 0usize..10,
        region_idx in 0usize..6,
    ) {
        let space = build_space(num_aps, rooms_per_ap);
        let mut store = EventStore::new(space);
        store.ingest_raw("probe", 100, "wap0").unwrap();
        let device = store.device_id("probe").unwrap();
        // Optionally give the device a preferred room via a second store with metadata.
        let _ = preferred_room;
        let engine = AffinityEngine::new(&store, weights, 3_600);
        let region = locater_space::RegionId::new((region_idx % num_aps) as u32);
        let affinity = engine.room_affinities(device, region);
        let total: f64 = affinity.affinities.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
        prop_assert!(affinity.affinities.iter().all(|&a| a > 0.0 && a <= 1.0));
        prop_assert_eq!(affinity.rooms.len(), store.space().rooms_in_region(region).len());
        // Public rooms never get less affinity than non-preferred private rooms.
        let space = store.space();
        let min_public = affinity
            .rooms
            .iter()
            .zip(&affinity.affinities)
            .filter(|(r, _)| space.is_public(**r))
            .map(|(_, a)| *a)
            .fold(f64::INFINITY, f64::min);
        let max_private = affinity
            .rooms
            .iter()
            .zip(&affinity.affinities)
            .filter(|(r, _)| !space.is_public(**r))
            .map(|(_, a)| *a)
            .fold(0.0, f64::max);
        if min_public.is_finite() && max_private > 0.0 {
            prop_assert!(min_public >= max_private - 1e-12);
        }
    }

    /// Device affinity is symmetric in its arguments, bounded to [0, 1], and zero for
    /// devices that never co-occur.
    #[test]
    fn device_affinity_is_symmetric_and_bounded(
        events_a in prop::collection::vec((0i64..200_000, 0u8..3), 1..60),
        events_b in prop::collection::vec((0i64..200_000, 0u8..3), 1..60),
    ) {
        let space = build_space(3, 4);
        let mut store = EventStore::new(space);
        for (t, ap) in &events_a {
            store.ingest_raw("dev-a", *t, &format!("wap{ap}")).unwrap();
        }
        for (t, ap) in &events_b {
            store.ingest_raw("dev-b", *t, &format!("wap{ap}")).unwrap();
        }
        let a = store.device_id("dev-a").unwrap();
        let b = store.device_id("dev-b").unwrap();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::default(), 400_000);
        let ab = engine.pair_affinity(a, b, 250_000);
        let ba = engine.pair_affinity(b, a, 250_000);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    /// Group affinity never exceeds the device affinity it is derived from, is zero
    /// outside the intersection of the group's regions, and sums to at most the device
    /// affinity over the candidate rooms (Eq. 1).
    #[test]
    fn group_affinity_is_dominated_by_device_affinity(
        device_affinity in 0.0f64..1.0,
        region_a in 0usize..3,
        region_b in 0usize..3,
    ) {
        let space = build_space(3, 5);
        let mut store = EventStore::new(space);
        store.ingest_raw("d1", 1_000, &format!("wap{region_a}")).unwrap();
        store.ingest_raw("d2", 1_000, &format!("wap{region_b}")).unwrap();
        let d1 = store.device_id("d1").unwrap();
        let d2 = store.device_id("d2").unwrap();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::default(), 3_600);
        let ga = locater_space::RegionId::new(region_a as u32);
        let gb = locater_space::RegionId::new(region_b as u32);
        let group = [(d1, ga), (d2, gb)];
        let space = store.space();
        let intersection = space.intersect_regions(&[ga, gb]);
        let mut sum = 0.0;
        for room in space.rooms() {
            let alpha = engine.group_affinity(&group, room.id, device_affinity);
            prop_assert!(alpha >= 0.0);
            prop_assert!(alpha <= device_affinity + 1e-12);
            if !intersection.contains(&room.id) {
                prop_assert_eq!(alpha, 0.0);
            }
            sum += alpha;
        }
        prop_assert!(sum <= device_affinity + 1e-9);
    }

    /// The possible-world envelope of Theorems 1–3 is always ordered
    /// `min ≤ expected ≤ max`, and collapses to a point when no devices are left
    /// unprocessed.
    #[test]
    fn posterior_bounds_are_ordered(
        prior in 0.0f64..1.0,
        observations in prop::collection::vec(0.0f64..1.0, 0..6),
        unprocessed in 0usize..8,
        lo in 0.0f64..1.0,
        hi in 0.0f64..1.0,
    ) {
        let mut posterior = RoomPosterior::from_prior(prior);
        for obs in observations {
            posterior.observe(obs);
        }
        let bounds = PosteriorBounds::compute(&posterior, unprocessed, lo, hi);
        prop_assert!(bounds.is_consistent(), "{bounds:?}");
        if unprocessed == 0 {
            prop_assert_eq!(bounds.min, bounds.max);
        }
        prop_assert!((0.0..=1.0).contains(&bounds.expected));
        prop_assert!((0.0..=1.0).contains(&bounds.min));
        prop_assert!((0.0..=1.0).contains(&bounds.max));
    }

    /// The caching engine's neighbor ordering is a permutation of its input and is
    /// sorted by decreasing cached weight.
    #[test]
    fn cache_ordering_is_a_sorted_permutation(
        edges in prop::collection::vec((1u32..40, 0.0f64..1.0, 0i64..500_000), 0..60),
        candidates in prop::collection::vec(1u32..40, 1..20),
        t_q in 0i64..500_000,
    ) {
        let center = DeviceId::new(0);
        let mut graph = GlobalAffinityGraph::new();
        for (other, weight, t) in edges {
            graph.record(center, DeviceId::new(other), weight, weight, t);
        }
        let candidate_ids: Vec<DeviceId> = candidates.iter().map(|&c| DeviceId::new(c)).collect();
        let ordered = graph.order_neighbors(center, &candidate_ids, t_q);
        prop_assert_eq!(ordered.len(), candidate_ids.len());
        let mut sorted_input = candidate_ids.clone();
        sorted_input.sort();
        let mut sorted_output = ordered.clone();
        sorted_output.sort();
        prop_assert_eq!(sorted_input, sorted_output);
        let weights: Vec<f64> = ordered.iter().map(|&d| graph.weight(center, d, t_q)).collect();
        for pair in weights.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-12);
        }
    }
}
