//! Figure 9 bench: end-to-end query latency of the cached variants (I-LOCATER+C and
//! D-LOCATER+C) whose precision trade-off `exp_fig9_caching_precision` reports.

mod common;

use criterion::{criterion_main, Criterion};
use locater_core::system::{CacheMode, FineMode, LocaterConfig};

fn bench(c: &mut Criterion) {
    let fixture = common::fixture();
    let mut group = c.benchmark_group("fig9_cached_variants");
    for (label, mode) in [
        ("I-LOCATER+C", FineMode::Independent),
        ("D-LOCATER+C", FineMode::Dependent),
    ] {
        let config = LocaterConfig::default()
            .with_fine_mode(mode)
            .with_cache(CacheMode::Enabled);
        let locater = common::warmed_locater(&fixture, config);
        let query = common::inside_query(&fixture, &locater);
        group.bench_function(label, |b| {
            b.iter(|| criterion::black_box(locater.locate(&query).unwrap().location))
        });
    }
    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
