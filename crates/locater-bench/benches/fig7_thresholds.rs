//! Figure 7 bench: cost of coarse-grained gap classification (per-device model
//! training + query-gap classification) at different τ_l thresholds.
//!
//! The precision sweep itself is produced by `exp_fig7_thresholds`; this bench
//! measures the latency of the coarse pipeline the sweep exercises.

mod common;

use criterion::{criterion_main, Criterion};
use locater_core::coarse::{CoarseConfig, CoarseLocalizer};
use locater_events::clock;

fn bench(c: &mut Criterion) {
    let fixture = common::fixture();
    let device = fixture
        .store
        .device_id(&fixture.output.monitored().next().unwrap().mac)
        .expect("monitored device is in the store");
    let until = fixture.store.time_span().unwrap().end;

    let mut group = c.benchmark_group("fig7_coarse_pipeline");
    for tau_l in [10_i64, 20, 30] {
        let config = CoarseConfig {
            tau_low: clock::minutes(tau_l),
            ..CoarseConfig::default()
        };
        let localizer = CoarseLocalizer::new(config);
        group.bench_function(format!("train_and_classify_tau_l_{tau_l}m"), |b| {
            b.iter(|| {
                let model = localizer.train_device_model(&fixture.store, device, until);
                criterion::black_box(model.training_gaps)
            })
        });
    }
    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
