//! Figure 10 bench: steady-state (warm cache) query latency of I-LOCATER+C vs
//! D-LOCATER+C, and the cold-cache cost of the very first D-LOCATER+C query. The full
//! "average time vs processed queries" curves are produced by `exp_fig10_efficiency`.

mod common;

use criterion::{criterion_main, Criterion};
use locater_core::system::{CacheMode, FineMode, Locater, LocaterConfig};

fn bench(c: &mut Criterion) {
    let fixture = common::fixture();
    let mut group = c.benchmark_group("fig10_efficiency");

    for (label, mode) in [
        ("I-LOCATER+C_warm", FineMode::Independent),
        ("D-LOCATER+C_warm", FineMode::Dependent),
    ] {
        let config = LocaterConfig::default()
            .with_fine_mode(mode)
            .with_cache(CacheMode::Enabled);
        let locater = common::warmed_locater(&fixture, config);
        let query = common::inside_query(&fixture, &locater);
        group.bench_function(label, |b| {
            b.iter(|| criterion::black_box(locater.locate(&query).unwrap().location))
        });
    }

    // Cold start: a fresh system (empty affinity graph, no cached coarse models)
    // answering its first fine-grained query — the left edge of the Fig. 10 curves.
    let reference = common::warmed_locater(&fixture, LocaterConfig::default());
    let query = common::inside_query(&fixture, &reference);
    group.bench_function("D-LOCATER+C_cold_start", |b| {
        b.iter_with_setup(
            || {
                Locater::new(
                    fixture.store.clone(),
                    LocaterConfig::default()
                        .with_fine_mode(FineMode::Dependent)
                        .with_cache(CacheMode::Enabled),
                )
            },
            |locater| criterion::black_box(locater.locate(&query).unwrap().location),
        )
    });
    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
