//! Figure 11 bench: I-LOCATER query latency with and without the loosened stop
//! conditions of §4.2 (without them, every neighbor device is processed).

mod common;

use criterion::{criterion_main, Criterion};
use locater_core::system::{FineMode, LocaterConfig};

fn bench(c: &mut Criterion) {
    let fixture = common::fixture();
    let mut group = c.benchmark_group("fig11_stop_conditions");
    for (label, use_stop) in [
        ("with_stop_conditions", true),
        ("without_stop_conditions", false),
    ] {
        let mut config = LocaterConfig::default().with_fine_mode(FineMode::Independent);
        config.fine.use_stop_conditions = use_stop;
        let locater = common::warmed_locater(&fixture, config);
        let query = common::inside_query(&fixture, &locater);
        group.bench_function(label, |b| {
            b.iter(|| criterion::black_box(locater.locate(&query).unwrap().location))
        });
    }
    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
