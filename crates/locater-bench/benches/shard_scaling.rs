//! Shard-scaling bench: concurrent ingest and locate throughput of the
//! [`ShardedLocaterService`] at 1 / 2 / 4 / 8 shards on the `metro_campus`
//! corpus.
//!
//! Every ingest on a single-shard service serializes through one store write
//! lock; the sharded service write-locks only the event's home shard, so
//! concurrent writers for different devices proceed in parallel. This bench
//! measures that directly:
//!
//! * **ingest/shards_N** — worker threads replay the corpus concurrently,
//!   each thread owning a disjoint set of devices (the realistic regime:
//!   events of one device arrive in order, different devices race). Devices
//!   are pre-interned so the measurement hits the steady-state home-shard
//!   fast path, not the one-time all-shard interning of first contact.
//! * **locate/shards_N** — worker threads answer a fixed query workload
//!   concurrently against a pre-warmed service (reads take per-shard read
//!   guards; the comparison isolates the view/guard overhead, since answers
//!   are byte-identical for every shard count).
//!
//! Size the corpus with `LOCATER_METRO_SCALE` / `LOCATER_METRO_WEEKS` (CI
//! runs a reduced scale).

mod common;

use criterion::{black_box, criterion_main, Criterion};
use locater_core::system::{LocateRequest, LocaterConfig, ShardedLocaterService};
use locater_sim::{generated_workload, CampusConfig, Simulator};
use locater_store::{EventStore, RawEvent};

const WORKER_THREADS: usize = 4;
/// Events replayed per ingest iteration (a slice of the corpus keeps one
/// iteration short enough for CI smoke runs).
const INGEST_EVENTS: usize = 8_000;
const LOCATE_QUERIES: usize = 400;

fn bench(c: &mut Criterion) {
    let config = CampusConfig::metro_from_env();
    let output = Simulator::new(7).run_campus(&config);
    let empty = EventStore::new(output.space.clone());
    let events: Vec<RawEvent> = output.events.iter().take(INGEST_EVENTS).cloned().collect();
    println!(
        "metro_campus: replaying {} of {} events, {} devices, {WORKER_THREADS} writer threads",
        events.len(),
        output.events.len(),
        output.people.len()
    );

    // One seed event per device: pre-interns every device so measured ingests
    // take the home-shard fast path.
    let mut seen = std::collections::HashSet::new();
    let seed_events: Vec<RawEvent> = output
        .events
        .iter()
        .filter(|event| seen.insert(event.mac.clone()))
        .cloned()
        .collect();

    // Per-thread event slices, partitioned by device so each device's events
    // stay in order within one thread.
    let thread_events: Vec<Vec<RawEvent>> = {
        let mut slices: Vec<Vec<RawEvent>> = vec![Vec::new(); WORKER_THREADS];
        let mut device_of: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for event in &events {
            let next = device_of.len() % WORKER_THREADS;
            let slot = *device_of.entry(event.mac.clone()).or_insert(next);
            slices[slot].push(event.clone());
        }
        slices
    };

    let mut group = c.benchmark_group("shard_scaling");
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("ingest/shards_{shards}"), |b| {
            b.iter_with_setup(
                || {
                    let service =
                        ShardedLocaterService::new(empty.clone(), LocaterConfig::default(), shards);
                    service
                        .ingest_batch(seed_events.iter())
                        .expect("seeds ingest");
                    service
                },
                |service| {
                    std::thread::scope(|scope| {
                        for slice in &thread_events {
                            let service = &service;
                            scope.spawn(move || {
                                for event in slice {
                                    service
                                        .ingest(&event.mac, event.t, &event.ap)
                                        .expect("replayed event ingests");
                                }
                            });
                        }
                    });
                    black_box(service.num_events())
                },
            )
        });
    }

    // Locate throughput: a warmed service per shard count, queried from
    // WORKER_THREADS reader threads.
    let workload = generated_workload(&output, LOCATE_QUERIES, 0x5AD5);
    let requests: Vec<LocateRequest> = workload
        .queries
        .iter()
        .map(|q| LocateRequest::by_mac(&q.mac, q.t))
        .collect();
    for shards in [1usize, 2, 4, 8] {
        let mut store = output.build_store();
        store.estimate_deltas();
        let service = ShardedLocaterService::new(store, LocaterConfig::default(), shards);
        // Warm models and affinity caches once.
        for request in &requests {
            let _ = service.locate(request);
        }
        group.bench_function(format!("locate/shards_{shards}"), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for chunk in requests.chunks(requests.len().div_ceil(WORKER_THREADS)) {
                        let service = &service;
                        scope.spawn(move || {
                            for request in chunk {
                                black_box(service.locate(request).ok());
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
