//! Table 3 bench: per-query latency of the four systems Table 3 compares
//! (Baseline1, Baseline2, I-LOCATER, D-LOCATER). The precision comparison per
//! predictability group is produced by `exp_table3_groups`.

mod common;

use criterion::{criterion_main, Criterion};
use locater_core::baselines::{Baseline1, Baseline2, BaselineSystem};
use locater_core::system::{FineMode, LocaterConfig};

fn bench(c: &mut Criterion) {
    let fixture = common::fixture();
    let locater = common::warmed_locater(&fixture, LocaterConfig::default());
    let query = common::inside_query(&fixture, &locater);
    let device = locater.resolve(&query).unwrap();

    let mut group = c.benchmark_group("table3_systems");
    group.bench_function("Baseline1", |b| {
        let mut baseline = Baseline1::default();
        b.iter(|| criterion::black_box(baseline.locate(&fixture.store, device, query.t).location))
    });
    group.bench_function("Baseline2", |b| {
        let mut baseline = Baseline2::default();
        b.iter(|| criterion::black_box(baseline.locate(&fixture.store, device, query.t).location))
    });
    for (label, mode) in [
        ("I-LOCATER", FineMode::Independent),
        ("D-LOCATER", FineMode::Dependent),
    ] {
        let system =
            common::warmed_locater(&fixture, LocaterConfig::default().with_fine_mode(mode));
        group.bench_function(label, |b| {
            b.iter(|| criterion::black_box(system.locate(&query).unwrap().location))
        });
    }
    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
