//! Crash-recovery benchmark: checkpoint + WAL-tail replay vs cold CSV replay
//! on the `metro_campus` scenario.
//!
//! A durable restart must rebuild its [`locater_store::EventStore`] before it
//! can answer a single query. The regimes compared here:
//!
//! * **cold_csv_replay** — parse the `mac,timestamp,ap` log, re-intern
//!   devices, re-sort every timeline and re-estimate validity periods (the
//!   restart cost without any durability subsystem);
//! * **recovery_checkpoint_tail** — [`locater_store::recover_store`]: one
//!   sequential checkpoint-snapshot load (device table and estimated δs
//!   included) plus a replay of the WAL tail — the crash-recovery path, with
//!   ~5% of the corpus in the tail;
//! * **recovery_checkpoint_only** — the same path against a drained log
//!   (empty tail): what a clean restart pays.
//!
//! Recovery is asserted byte-identical to direct ingestion before anything is
//! timed. Besides the Criterion output, the bench writes a machine-readable
//! `BENCH_7.json` (override with `LOCATER_WAL_BENCH_JSON`) recording corpus
//! size, tail length and measured means, and with `LOCATER_BENCH_GUARD=1`
//! (set in CI) it **fails** if checkpoint+tail recovery is not faster than
//! the cold CSV replay it replaces.
//!
//! Size the corpus with `LOCATER_METRO_SCALE` / `LOCATER_METRO_WEEKS` (CI
//! runs a reduced scale).

mod common;

use criterion::{black_box, criterion_main, Criterion};
use locater_sim::{CampusConfig, Simulator};
use locater_store::{recover_store, Durability, DurableEventStore, EventStore, FsyncPolicy};
use std::path::PathBuf;
use std::time::Instant;

/// Mean nanoseconds per execution of `f`: the best (minimum) mean across
/// several batches, which rejects scheduler/thermal noise spikes — every
/// regime is measured the same way, so the comparison stays fair.
fn mean_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    // One untimed warm-up pass.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(started.elapsed().as_nanos() as f64 / reps as f64);
    }
    best
}

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("locater-bench-wal-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn bench(c: &mut Criterion) {
    let config = CampusConfig::metro_from_env();
    let output = Simulator::new(7).run_campus(&config);
    let space = output.space.clone();
    let events = &output.events;
    // ~5% of the corpus lands in the WAL tail; the rest is checkpointed.
    let tail_len = (events.len() / 20).max(1).min(events.len());
    let (base, tail) = events.split_at(events.len() - tail_len);

    // The checkpointed base: ingested, with validity periods estimated (the
    // checkpoint carries the δs, so recovery never re-estimates).
    let mut base_store = EventStore::new(space.clone());
    for event in base {
        base_store
            .ingest_raw(&event.mac, event.t, &event.ap)
            .expect("base ingest");
    }
    base_store.estimate_deltas();

    // The uncrashed reference: base (with δs) plus the tail, ingested
    // directly.
    let mut direct = base_store.clone();
    for event in tail {
        direct
            .ingest_raw(&event.mac, event.t, &event.ap)
            .expect("tail ingest");
    }
    let expected = direct.to_snapshot_bytes().expect("reference snapshot");
    let csv = direct.to_csv();

    // Crash with a tail: checkpoint the base, append the tail to the log,
    // drop without checkpointing.
    let tail_dir = wal_dir("tail");
    {
        let durability = Durability::new(&tail_dir).with_fsync(FsyncPolicy::EveryN(1024));
        let (mut durable, _) =
            DurableEventStore::open(durability, base_store.clone()).expect("durable open");
        for event in tail {
            durable
                .ingest_raw(&event.mac, event.t, &event.ap)
                .expect("wal ingest");
        }
        durable.sync().expect("wal sync");
    }
    // Clean shutdown: full checkpoint, empty tail.
    let drained_dir = wal_dir("drained");
    {
        let durability = Durability::new(&drained_dir).with_fsync(FsyncPolicy::EveryN(1024));
        let (mut durable, _) =
            DurableEventStore::open(durability, direct.clone()).expect("durable open");
        durable.checkpoint().expect("drain checkpoint");
    }

    // Correctness first: both recovery regimes reproduce the reference store
    // bit for bit before anything is timed.
    let (recovered, report) =
        recover_store(&tail_dir, EventStore::new(space.clone())).expect("tail recovery");
    assert_eq!(report.replayed, tail.len() as u64);
    assert_eq!(
        recovered.to_snapshot_bytes().expect("recovered snapshot"),
        expected,
        "checkpoint+tail recovery diverged from direct ingestion"
    );
    let (drained, report) =
        recover_store(&drained_dir, EventStore::new(space.clone())).expect("drained recovery");
    assert_eq!(report.replayed, 0);
    assert_eq!(
        drained.to_snapshot_bytes().expect("drained snapshot"),
        expected
    );
    println!(
        "metro_campus: {} events, {} devices; wal tail {} frame(s), csv {} B, checkpoint {} B",
        direct.num_events(),
        direct.num_devices(),
        tail.len(),
        csv.len(),
        expected.len()
    );

    // JSON means (measured outside Criterion so the report does not depend on
    // the shim's internals).
    let recovery_tail_ns = mean_ns(2, || {
        black_box(recover_store(&tail_dir, EventStore::new(space.clone())).expect("recovers"));
    });
    let recovery_only_ns = mean_ns(2, || {
        black_box(recover_store(&drained_dir, EventStore::new(space.clone())).expect("recovers"));
    });
    let csv_replay_ns = mean_ns(1, || {
        let mut replayed = EventStore::from_csv(space.clone(), black_box(&csv)).expect("replays");
        replayed.estimate_deltas();
        black_box(replayed.num_events());
    });
    let speedup = csv_replay_ns / recovery_tail_ns.max(1.0);
    println!(
        "restart: checkpoint+tail {:.2} ms, checkpoint-only {:.2} ms, cold csv replay {:.2} ms ({speedup:.1}x)",
        recovery_tail_ns / 1e6,
        recovery_only_ns / 1e6,
        csv_replay_ns / 1e6
    );

    // Machine-readable trajectory record (workspace root by default — cargo
    // runs benches with the package directory as cwd).
    let json_path = std::env::var("LOCATER_WAL_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_7.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        "{{\n  \"bench\": \"wal_replay\",\n  \"corpus\": \"metro_campus\",\n  \"events\": {},\n  \"devices\": {},\n  \"tail_frames\": {},\n  \"csv_bytes\": {},\n  \"checkpoint_bytes\": {},\n  \"results\": {{\n    \"recovery_checkpoint_tail_mean_ns\": {:.0},\n    \"recovery_checkpoint_only_mean_ns\": {:.0},\n    \"cold_csv_replay_mean_ns\": {:.0}\n  }},\n  \"speedup\": {{\n    \"recovery_vs_csv_replay\": {:.2}\n  }}\n}}\n",
        direct.num_events(),
        direct.num_devices(),
        tail.len(),
        csv.len(),
        expected.len(),
        recovery_tail_ns,
        recovery_only_ns,
        csv_replay_ns,
        speedup,
    );
    std::fs::write(&json_path, &json).expect("write bench JSON");
    println!("wrote {json_path}");

    // Regression guard (CI sets LOCATER_BENCH_GUARD=1): recovery must beat
    // the cold replay it replaces.
    if std::env::var("LOCATER_BENCH_GUARD").is_ok_and(|v| v == "1") {
        assert!(
            recovery_tail_ns < csv_replay_ns,
            "regression: checkpoint+tail recovery ({recovery_tail_ns:.0} ns) is not faster than cold CSV replay ({csv_replay_ns:.0} ns)"
        );
    }

    // Criterion numbers for the human-readable bench log.
    let mut group = c.benchmark_group("wal_replay");
    group.bench_function("recovery/checkpoint_tail", |b| {
        b.iter(|| {
            black_box(recover_store(&tail_dir, EventStore::new(space.clone())).expect("recovers"))
        })
    });
    group.bench_function("recovery/checkpoint_only", |b| {
        b.iter(|| {
            black_box(
                recover_store(&drained_dir, EventStore::new(space.clone())).expect("recovers"),
            )
        })
    });
    group.bench_function("cold_start/csv_replay", |b| {
        b.iter(|| {
            let mut replayed =
                EventStore::from_csv(space.clone(), black_box(&csv)).expect("replays");
            replayed.estimate_deltas();
            black_box(replayed.num_events())
        })
    });
    group.finish();

    std::fs::remove_dir_all(&tail_dir).ok();
    std::fs::remove_dir_all(&drained_dir).ok();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
