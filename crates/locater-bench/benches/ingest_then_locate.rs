//! Live-service bench: interleaved ingestion and querying through
//! `LocaterService`, tracked alongside `batch_throughput` so the cost of
//! epoch-based cache invalidation shows up in the perf trajectory.
//!
//! Three measurements:
//! * `locate_warm`   — queries only, cache allowed to stay warm (baseline);
//! * `ingest_only`   — appending a batch of events (the write path alone);
//! * `ingest_then_locate` — a batch of appends followed by queries, so every
//!   round pays the invalidation the appends caused.

mod common;

use criterion::{criterion_main, Criterion};
use locater_core::system::{LocateRequest, LocaterConfig, LocaterService};
use locater_store::RawEvent;

/// The devices and query times the bench rounds cycle through, plus a cursor
/// generating fresh future events for those devices.
struct LiveWorkload {
    service: LocaterService,
    requests: Vec<LocateRequest>,
    macs: Vec<String>,
    ap: String,
    cursor: i64,
}

fn workload() -> LiveWorkload {
    let fixture = common::fixture();
    let service = LocaterService::new(fixture.store.clone(), LocaterConfig::default());
    let requests: Vec<LocateRequest> = fixture
        .university
        .queries
        .iter()
        .take(24)
        .map(|q| LocateRequest::by_mac(&q.mac, q.t))
        .collect();
    // The devices the queries target are the ones whose invalidation matters.
    let macs: Vec<String> = requests.iter().filter_map(|r| r.mac.clone()).collect();
    let ap = fixture.store.space().access_point(0.into()).name.clone();
    let cursor = fixture.store.time_span().map(|span| span.end).unwrap_or(0);
    LiveWorkload {
        service,
        requests,
        macs,
        ap,
        cursor,
    }
}

impl LiveWorkload {
    /// The next batch of future events: one fresh event per queried device,
    /// timestamps strictly advancing so every round appends at the log tail.
    fn next_chunk(&mut self) -> Vec<RawEvent> {
        let chunk: Vec<RawEvent> = self
            .macs
            .iter()
            .enumerate()
            .map(|(idx, mac)| RawEvent::new(mac, self.cursor + idx as i64, &self.ap))
            .collect();
        self.cursor += self.macs.len() as i64 + 60;
        chunk
    }

    fn locate_all(&self) -> usize {
        self.requests
            .iter()
            .filter(|request| self.service.locate(request).is_ok())
            .count()
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_then_locate");

    let warm = workload();
    // Warm the models and the affinity graph once so `locate_warm` measures
    // the steady state the ingest rounds will keep invalidating.
    warm.locate_all();
    group.bench_function(
        format!("locate_warm/queries_{}", warm.requests.len()),
        |b| b.iter(|| criterion::black_box(warm.locate_all())),
    );

    let mut ingest = workload();
    group.bench_function(format!("ingest_only/events_{}", ingest.macs.len()), |b| {
        b.iter(|| {
            let chunk = ingest.next_chunk();
            criterion::black_box(ingest.service.ingest_batch(chunk.iter()).unwrap())
        })
    });

    let mut live = workload();
    live.locate_all();
    group.bench_function(
        format!(
            "ingest_then_locate/events_{}_queries_{}",
            live.macs.len(),
            live.requests.len()
        ),
        |b| {
            b.iter(|| {
                let chunk = live.next_chunk();
                live.service.ingest_batch(chunk.iter()).unwrap();
                criterion::black_box(live.locate_all())
            })
        },
    );

    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
