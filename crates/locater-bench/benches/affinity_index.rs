//! Co-location-index bench: cold fine-grained localization on the
//! `metro_campus` corpus, indexed vs scan path.
//!
//! The fine step's cost is dominated by pairwise device-affinity computation.
//! Against raw timelines every *cold* pair pays a per-event rescan of the
//! neighbor's history around each event in the window; the
//! [`locater_store::ColocationIndex`] turns the same count into a
//! bucket-intersection merge over only the access points both devices touched
//! (see `crates/locater-store/src/colocation.rs`). Answers are bit-identical
//! — this bench asserts that on every query before timing anything.
//!
//! * **cold_fine_locate/indexed** — `FineLocalizer::locate` against the store
//!   (its index answers the affinity probes); no affinity cache, no warm
//!   state: the cold-query regime the epoch cache cannot amortize.
//! * **cold_fine_locate/scan** — the same queries against
//!   [`locater_store::ScanRead`] of the same store, which masks the index and
//!   forces the original timeline scans.
//! * **pair_affinity/{indexed,scan}** — the underlying primitive, measured on
//!   the device pairs the locate queries actually probed.
//!
//! Besides the Criterion output, the bench writes a machine-readable
//! `BENCH_5.json` (override the path with `LOCATER_BENCH_JSON`) recording the
//! corpus size and the measured means, so the perf trajectory is tracked
//! across PRs. With `LOCATER_BENCH_GUARD=1` (set in CI) the bench **fails**
//! if the indexed path is not faster than the scan path — the regression
//! guard for the fast path.
//!
//! Size the corpus with `LOCATER_METRO_SCALE` / `LOCATER_METRO_WEEKS` (CI
//! runs a reduced scale).

mod common;

use criterion::{black_box, criterion_main, Criterion};
use locater_core::fine::{AffinityEngine, FineConfig, FineLocalizer};
use locater_events::{DeviceId, Timestamp};
use locater_sim::{generated_workload, CampusConfig, Simulator};
use locater_space::RegionId;
use locater_store::{EventStore, ScanRead};
use std::time::Instant;

/// Queries benchmarked (each runs the full cold fine step).
const QUERIES: usize = 16;

/// One resolved cold fine-mode query.
struct FineQuery {
    device: DeviceId,
    t: Timestamp,
    region: RegionId,
}

/// Mean nanoseconds per execution of `f`: the best (minimum) mean across
/// several batches, which rejects scheduler/thermal noise spikes — both the
/// indexed and the scan path are measured the same way, so the comparison
/// stays fair. (Criterion prints its own numbers separately.)
fn mean_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    // One untimed warm-up pass.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let started = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(started.elapsed().as_nanos() as f64 / reps as f64);
    }
    best
}

fn resolve_queries(store: &EventStore, output: &locater_sim::SimOutput) -> Vec<FineQuery> {
    // Fine-step queries need a region; take probe times covered by an event
    // (the coarse step would answer `CoveredByEvent` and hand the region to
    // the fine step), and keep only queries with at least one neighbor so the
    // affinity path actually runs.
    let workload = generated_workload(output, QUERIES * 20, 0xC0106);
    let localizer = FineLocalizer::default();
    let mut queries = Vec::new();
    for q in &workload.queries {
        if queries.len() >= QUERIES {
            break;
        }
        let Some(device) = store.device_id(&q.mac) else {
            continue;
        };
        let Some(region) = store.covering_region(device, q.t) else {
            continue;
        };
        if localizer
            .candidate_neighbors(store, device, q.t, region)
            .is_empty()
        {
            continue;
        }
        queries.push(FineQuery {
            device,
            t: q.t,
            region,
        });
    }
    queries
}

fn bench(c: &mut Criterion) {
    let config = CampusConfig::metro_from_env();
    let output = Simulator::new(7).run_campus(&config);
    let mut store = output.build_store();
    store.estimate_deltas();
    let scan = ScanRead::new(&store);
    let index_stats = store.colocation_stats();
    println!(
        "metro_campus: {} events, {} devices; index: {} AP posting lists, {} buckets",
        store.num_events(),
        store.num_devices(),
        index_stats.ap_lists,
        index_stats.buckets
    );

    let queries = resolve_queries(&store, &output);
    assert!(
        !queries.is_empty(),
        "the corpus must yield fine-mode queries with neighbors"
    );
    println!("cold fine-mode queries: {}", queries.len());

    let localizer = FineLocalizer::default();
    let fine_config = FineConfig::default();

    // Correctness first: the indexed and scan paths must agree bit for bit on
    // every benchmarked query (FineOutcome compares its f64s exactly).
    let mut pairs: Vec<(DeviceId, DeviceId, Timestamp)> = Vec::new();
    for q in &queries {
        let indexed = localizer.locate(&store, q.device, q.t, q.region, None);
        let scanned = localizer.locate(&scan, q.device, q.t, q.region, None);
        assert_eq!(
            indexed, scanned,
            "indexed and scan-backed fine outcomes diverged"
        );
        for (neighbor, _) in localizer
            .candidate_neighbors(&store, q.device, q.t, q.region)
            .into_iter()
            .take(4)
        {
            pairs.push((q.device, neighbor, q.t));
        }
    }

    // JSON means (measured outside Criterion so the report does not depend on
    // the shim's internals).
    let indexed_locate_ns = mean_ns(3, || {
        for q in &queries {
            black_box(localizer.locate(&store, q.device, q.t, q.region, None));
        }
    }) / queries.len() as f64;
    let scan_locate_ns = mean_ns(3, || {
        for q in &queries {
            black_box(localizer.locate(&scan, q.device, q.t, q.region, None));
        }
    }) / queries.len() as f64;

    let engine_indexed =
        AffinityEngine::new(&store, fine_config.weights, fine_config.affinity_window);
    let engine_scan = AffinityEngine::new(&scan, fine_config.weights, fine_config.affinity_window);
    for &(a, b, t) in &pairs {
        let x = engine_indexed.pair_affinity(a, b, t);
        let y = engine_scan.pair_affinity(a, b, t);
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "pair affinity diverged for {a:?}/{b:?} at {t}"
        );
    }
    let indexed_pair_ns = mean_ns(5, || {
        for &(a, b, t) in &pairs {
            black_box(engine_indexed.pair_affinity(a, b, t));
        }
    }) / pairs.len().max(1) as f64;
    let scan_pair_ns = mean_ns(5, || {
        for &(a, b, t) in &pairs {
            black_box(engine_scan.pair_affinity(a, b, t));
        }
    }) / pairs.len().max(1) as f64;

    let locate_speedup = scan_locate_ns / indexed_locate_ns.max(1.0);
    let pair_speedup = scan_pair_ns / indexed_pair_ns.max(1.0);
    println!(
        "cold fine locate: indexed {:.0} ns/query vs scan {:.0} ns/query ({locate_speedup:.1}x)",
        indexed_locate_ns, scan_locate_ns
    );
    println!(
        "pair affinity:    indexed {:.0} ns/pair  vs scan {:.0} ns/pair  ({pair_speedup:.1}x)",
        indexed_pair_ns, scan_pair_ns
    );

    // Machine-readable trajectory record (workspace root by default — cargo
    // runs benches with the package directory as cwd).
    let json_path = std::env::var("LOCATER_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_5.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        "{{\n  \"bench\": \"affinity_index\",\n  \"corpus\": \"metro_campus\",\n  \"events\": {},\n  \"devices\": {},\n  \"shards\": 1,\n  \"queries\": {},\n  \"pairs\": {},\n  \"results\": {{\n    \"cold_fine_locate_indexed_mean_ns\": {:.0},\n    \"cold_fine_locate_scan_mean_ns\": {:.0},\n    \"pair_affinity_indexed_mean_ns\": {:.0},\n    \"pair_affinity_scan_mean_ns\": {:.0}\n  }},\n  \"speedup\": {{\n    \"cold_fine_locate\": {:.2},\n    \"pair_affinity\": {:.2}\n  }}\n}}\n",
        store.num_events(),
        store.num_devices(),
        queries.len(),
        pairs.len(),
        indexed_locate_ns,
        scan_locate_ns,
        indexed_pair_ns,
        scan_pair_ns,
        locate_speedup,
        pair_speedup,
    );
    std::fs::write(&json_path, &json).expect("write bench JSON");
    println!("wrote {json_path}");

    // Regression guard (CI sets LOCATER_BENCH_GUARD=1): the indexed path must
    // not be slower than the scan path it replaces.
    if std::env::var("LOCATER_BENCH_GUARD").is_ok_and(|v| v == "1") {
        assert!(
            indexed_locate_ns < scan_locate_ns,
            "regression: indexed cold locate ({indexed_locate_ns:.0} ns) is not faster than the scan path ({scan_locate_ns:.0} ns)"
        );
        assert!(
            indexed_pair_ns < scan_pair_ns,
            "regression: indexed pair affinity ({indexed_pair_ns:.0} ns) is not faster than the scan path ({scan_pair_ns:.0} ns)"
        );
    }

    // Criterion numbers for the human-readable bench log.
    let mut group = c.benchmark_group("affinity_index");
    group.bench_function("cold_fine_locate/indexed", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(localizer.locate(&store, q.device, q.t, q.region, None));
            }
        })
    });
    group.bench_function("cold_fine_locate/scan", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(localizer.locate(&scan, q.device, q.t, q.region, None));
            }
        })
    });
    group.bench_function("pair_affinity/indexed", |b| {
        b.iter(|| {
            for &(a, b, t) in &pairs {
                black_box(engine_indexed.pair_affinity(a, b, t));
            }
        })
    });
    group.bench_function("pair_affinity/scan", |b| {
        b.iter(|| {
            for &(a, b, t) in &pairs {
                black_box(engine_scan.pair_affinity(a, b, t));
            }
        })
    });
    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
