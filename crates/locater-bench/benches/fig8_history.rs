//! Figure 8 bench: cost of training the per-device coarse models as a function of the
//! amount of historical data (1 vs 3 vs 8 weeks). The precision curves are produced
//! by `exp_fig8_history`.

mod common;

use criterion::{criterion_main, Criterion};
use locater_core::coarse::{CoarseConfig, CoarseLocalizer};
use locater_events::clock;

fn bench(c: &mut Criterion) {
    let fixture = common::fixture();
    let device = fixture
        .store
        .device_id(&fixture.output.monitored().next().unwrap().mac)
        .expect("monitored device is in the store");
    let until = fixture.store.time_span().unwrap().end;

    let mut group = c.benchmark_group("fig8_history_training");
    for weeks in [1_i64, 3, 8] {
        let localizer = CoarseLocalizer::new(CoarseConfig {
            history: clock::weeks(weeks),
            ..CoarseConfig::default()
        });
        group.bench_function(format!("train_{weeks}_weeks"), |b| {
            b.iter(|| {
                criterion::black_box(
                    localizer
                        .train_device_model(&fixture.store, device, until)
                        .training_gaps,
                )
            })
        });
    }
    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
