//! Ablation benches for the design choices called out in `DESIGN.md`:
//! neighbor-processing order, the self-training loop, and the validity period δ.
//! The corresponding precision comparisons are produced by `exp_ablations`.

mod common;

use criterion::{criterion_main, Criterion};
use locater_core::coarse::{CoarseConfig, CoarseLocalizer};
use locater_core::system::{CacheMode, FineMode, LocaterConfig};
use locater_events::clock;

fn bench(c: &mut Criterion) {
    let fixture = common::fixture();

    // 1. Neighbor processing order: warm cached order vs natural order.
    let mut group = c.benchmark_group("ablation_neighbor_order");
    for (label, cache) in [
        ("cached_affinity_order", CacheMode::Enabled),
        ("natural_order", CacheMode::Disabled),
    ] {
        let config = LocaterConfig::default()
            .with_fine_mode(FineMode::Independent)
            .with_cache(cache);
        let locater = common::warmed_locater(&fixture, config);
        let query = common::inside_query(&fixture, &locater);
        group.bench_function(label, |b| {
            b.iter(|| criterion::black_box(locater.locate(&query).unwrap().location))
        });
    }
    group.finish();

    // 2. Self-training: full Algorithm 1 vs bootstrap-labels-only training.
    let device = fixture
        .store
        .device_id(&fixture.output.monitored().next().unwrap().mac)
        .unwrap();
    let until = fixture.store.time_span().unwrap().end;
    let mut group = c.benchmark_group("ablation_self_training");
    for (label, rounds) in [("with_self_training", 400usize), ("bootstrap_only", 0)] {
        let mut config = CoarseConfig::default();
        config.self_training.max_rounds = rounds;
        let localizer = CoarseLocalizer::new(config);
        group.bench_function(label, |b| {
            b.iter(|| {
                criterion::black_box(
                    localizer
                        .train_device_model(&fixture.store, device, until)
                        .training_gaps,
                )
            })
        });
    }
    group.finish();

    // 3. Validity period δ: the cost of gap detection under different δ policies.
    let mut group = c.benchmark_group("ablation_validity_delta");
    for (label, delta) in [
        ("delta_2_minutes", clock::minutes(2)),
        ("delta_estimated", fixture.store.delta(device)),
        ("delta_30_minutes", clock::minutes(30)),
    ] {
        let timeline = fixture.store.timeline_of(device);
        group.bench_function(label, |b| {
            b.iter(|| criterion::black_box(timeline.gaps(delta).len()))
        });
    }
    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
