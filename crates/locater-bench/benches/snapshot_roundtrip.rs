//! Cold-start benchmark: binary snapshot load vs CSV replay on the
//! `metro_campus` scenario.
//!
//! A service restart must rebuild its [`locater_store::EventStore`] before it
//! can answer a single query. The two paths compared here:
//!
//! * **csv_replay** — parse the `mac,timestamp,ap` log, re-intern devices,
//!   re-sort every timeline and re-estimate validity periods (what every
//!   restart cost before snapshots existed);
//! * **snapshot_load** — one sequential read of the versioned binary snapshot,
//!   which already contains the device table, estimated δs and the segment
//!   runs verbatim.
//!
//! The dataset is the `metro_campus` large scenario; size it with
//! `LOCATER_METRO_SCALE` / `LOCATER_METRO_WEEKS` (CI runs a reduced scale,
//! local runs default to the full ~400k-event corpus).

use criterion::{black_box, criterion_main, Criterion};
use locater_sim::{CampusConfig, Simulator};
use locater_store::EventStore;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let config = CampusConfig::metro_from_env();
    let output = Simulator::new(7).run_campus(&config);
    let mut store = output.build_store();
    store.estimate_deltas();
    let space = (**store.space()).clone();
    let csv = store.to_csv();
    let snapshot = store.to_snapshot_bytes().expect("snapshot encodes");
    println!(
        "metro_campus: {} events, {} devices, {} segments; csv {} B, snapshot {} B",
        store.num_events(),
        store.num_devices(),
        store.num_segments(),
        csv.len(),
        snapshot.len()
    );

    let mut group = c.benchmark_group("snapshot_roundtrip");
    group.bench_function("cold_start_csv_replay", |b| {
        b.iter(|| {
            let mut replayed =
                EventStore::from_csv(space.clone(), black_box(&csv)).expect("csv replays");
            replayed.estimate_deltas();
            black_box(replayed.num_events())
        })
    });
    group.bench_function("cold_start_snapshot_load", |b| {
        b.iter(|| {
            let loaded =
                EventStore::from_snapshot_bytes(black_box(&snapshot)).expect("snapshot loads");
            black_box(loaded.num_events())
        })
    });
    group.bench_function("snapshot_save", |b| {
        b.iter(|| black_box(store.to_snapshot_bytes().expect("snapshot encodes").len()))
    });
    group.finish();
}

fn benches() {
    let mut criterion = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    bench(&mut criterion);
}

criterion_main!(benches);
