//! Table 2 bench: fine-grained localization latency under the four room-affinity
//! weight combinations C1..C4 (the precision comparison is produced by
//! `exp_table2_weights`).

mod common;

use criterion::{criterion_main, Criterion};
use locater_core::fine::{FineConfig, FineLocalizer, RoomAffinityWeights};

fn bench(c: &mut Criterion) {
    let fixture = common::fixture();
    let locater = common::warmed_locater(&fixture, Default::default());
    let query = common::inside_query(&fixture, &locater);
    let device = locater.resolve(&query).unwrap();
    let region = locater
        .locate(&query)
        .ok()
        .and_then(|a| a.region())
        .unwrap_or(locater_space::RegionId::new(0));

    let mut group = c.benchmark_group("table2_fine_weights");
    for (label, weights) in ["C1", "C2", "C3", "C4"]
        .iter()
        .zip(RoomAffinityWeights::TABLE2)
    {
        let localizer = FineLocalizer::new(FineConfig {
            weights,
            ..FineConfig::default()
        });
        group.bench_function(*label, |b| {
            b.iter(|| {
                criterion::black_box(
                    localizer
                        .locate(&fixture.store, device, query.t, region, None)
                        .room,
                )
            })
        });
    }
    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
