//! Table 4 bench: D-LOCATER query latency on each of the four simulated scenarios
//! (office, university, mall, airport). The per-profile accuracy table is produced by
//! `exp_table4_scenarios`.

mod common;

use criterion::{criterion_main, Criterion};
use locater_bench::datasets::{scenario_fixture, BenchScale};
use locater_core::system::{FineMode, Locater, LocaterConfig, Query};
use locater_sim::ScenarioKind;

fn bench(c: &mut Criterion) {
    let scale = BenchScale::micro();
    let mut group = c.benchmark_group("table4_scenarios");
    for kind in ScenarioKind::ALL {
        let fixture = scenario_fixture(kind, &scale);
        let locater = Locater::new(
            fixture.store.clone(),
            LocaterConfig::default().with_fine_mode(FineMode::Dependent),
        );
        // Warm the per-device models with a few workload queries, then pick one that
        // resolves to a room.
        let mut chosen = None;
        for workload_query in fixture.workload.queries.iter().take(20) {
            let query = Query::by_mac(&workload_query.mac, workload_query.t);
            if let Ok(answer) = locater.locate(&query) {
                if answer.is_inside() && chosen.is_none() {
                    chosen = Some(query.clone());
                }
            }
        }
        let query = chosen.unwrap_or_else(|| {
            let first = &fixture.workload.queries[0];
            Query::by_mac(&first.mac, first.t)
        });
        group.bench_function(kind.name(), |b| {
            b.iter(|| criterion::black_box(locater.locate(&query).unwrap().location))
        });
    }
    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
