//! Windowed-query benchmark: segment-pruned accessors vs full-history scans.
//!
//! The cleaning algorithms are window-shaped — coarse training reads an 8-week
//! history, affinity computation reads a validity-sized neighborhood — but
//! before time-partitioning every such query paid for the device's *entire*
//! history. This bench pits the segment-pruned store accessors against
//! equivalent brute-force scans over the same [`locater_store::DeviceTimeline`]
//! on the `metro_campus` corpus (size with `LOCATER_METRO_SCALE` /
//! `LOCATER_METRO_WEEKS`):
//!
//! * windowed gap detection (`gaps_of_in`) vs detect-all-then-filter;
//! * windowed event iteration (`events_of_in`) vs iterate-all-then-filter;
//! * coarse model training, which composes both pruned paths.

use criterion::{black_box, criterion_main, Criterion};
use locater_core::coarse::CoarseLocalizer;
use locater_events::{clock, DeviceId, Interval};
use locater_sim::{CampusConfig, Simulator};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let config = CampusConfig::metro_from_env();
    let output = Simulator::new(7).run_campus(&config);
    let mut store = output.build_store();
    store.estimate_deltas();

    // The busiest device gives the starkest full-scan-vs-pruned contrast.
    let device: DeviceId = (0..store.num_devices() as u32)
        .map(DeviceId::new)
        .max_by_key(|&d| store.timeline_of(d).len())
        .expect("metro campus has devices");
    let timeline = store.timeline_of(device);
    let delta = store.delta(device);
    let span = timeline.span().expect("device has events");
    // A two-week window ending at the newest event: the always-on regime where
    // most history is strictly older than anything the query needs.
    let window = Interval::new(span.end - clock::weeks(2), span.end);
    println!(
        "metro_campus device {device}: {} events in {} segments; window covers {} events",
        timeline.len(),
        timeline.num_segments(),
        store.events_of_in(device, window).count()
    );

    let mut group = c.benchmark_group("segment_pruning");
    group.bench_function("gaps_full_scan_then_filter", |b| {
        b.iter(|| {
            black_box(
                timeline
                    .gaps(delta)
                    .into_iter()
                    .filter(|g| g.interval().overlaps(&window))
                    .count(),
            )
        })
    });
    group.bench_function("gaps_segment_pruned", |b| {
        b.iter(|| black_box(store.gaps_of_in(device, window).len()))
    });
    group.bench_function("window_events_full_scan_then_filter", |b| {
        b.iter(|| {
            black_box(
                timeline
                    .iter()
                    .filter(|e| e.t >= window.start && e.t < window.end)
                    .count(),
            )
        })
    });
    group.bench_function("window_events_segment_pruned", |b| {
        b.iter(|| black_box(store.events_of_in(device, window).count()))
    });
    group.bench_function("coarse_training_pruned_window", |b| {
        let localizer = CoarseLocalizer::default();
        b.iter(|| {
            black_box(
                localizer
                    .train_device_model(&store, device, span.end - 1)
                    .training_gaps,
            )
        })
    });
    group.finish();
}

fn benches() {
    let mut criterion = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    bench(&mut criterion);
}

criterion_main!(benches);
