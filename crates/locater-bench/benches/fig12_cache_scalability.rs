//! Figure 12 bench: D-LOCATER query latency with and without the caching engine, and
//! the scalability of the caching engine itself under concurrent readers.

mod common;

use criterion::{criterion_main, Criterion};
use locater_core::cache::SharedAffinityGraph;
use locater_core::system::{CacheMode, FineMode, LocaterConfig};
use locater_events::DeviceId;

fn bench(c: &mut Criterion) {
    let fixture = common::fixture();
    let mut group = c.benchmark_group("fig12_caching");
    for (label, cache) in [
        ("D-LOCATER+C", CacheMode::Enabled),
        ("D-LOCATER_no_cache", CacheMode::Disabled),
    ] {
        let config = LocaterConfig::default()
            .with_fine_mode(FineMode::Dependent)
            .with_cache(cache);
        let locater = common::warmed_locater(&fixture, config);
        let query = common::inside_query(&fixture, &locater);
        group.bench_function(label, |b| {
            b.iter(|| criterion::black_box(locater.locate(&query).unwrap().location))
        });
    }

    // Concurrent readers on the shared global affinity graph (crossbeam scoped
    // threads), the access pattern of a multi-client deployment.
    let shared = SharedAffinityGraph::new();
    shared.write(|graph| {
        for i in 0..200u32 {
            for j in 0..8u32 {
                graph.record(
                    DeviceId::new(i),
                    DeviceId::new(i + j + 1),
                    0.3,
                    0.3,
                    (i * 100 + j * 10) as i64,
                );
            }
        }
    });
    group.bench_function("shared_graph_concurrent_reads", |b| {
        b.iter(|| {
            crossbeam::thread::scope(|scope| {
                for t in 0..4 {
                    let graph = shared.clone();
                    scope.spawn(move |_| {
                        let mut acc = 0.0;
                        for i in 0..50u32 {
                            acc += graph.read(|g| {
                                g.weight(
                                    DeviceId::new(t * 40 + i),
                                    DeviceId::new(t * 40 + i + 1),
                                    5_000,
                                )
                            });
                        }
                        criterion::black_box(acc)
                    });
                }
            })
            .unwrap();
        })
    });
    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
