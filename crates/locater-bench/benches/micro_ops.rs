//! Micro-benchmarks of the hot paths identified in `DESIGN.md`: gap detection,
//! pairwise device-affinity computation, room-affinity computation, global affinity
//! graph merge/ordering, and timeline neighbor lookup.

mod common;

use criterion::{criterion_main, Criterion};
use locater_core::cache::GlobalAffinityGraph;
use locater_core::fine::{AffinityEngine, RoomAffinityWeights};
use locater_events::DeviceId;
use locater_sim::WorkloadQuery;

fn bench(c: &mut Criterion) {
    let fixture = common::fixture();
    let store = &fixture.store;
    let monitored: Vec<DeviceId> = fixture
        .output
        .monitored()
        .filter_map(|record| store.device_id(&record.mac))
        .collect();
    let device = monitored[0];
    let other = monitored[1 % monitored.len()];
    let WorkloadQuery { t, .. } = fixture.university.queries[0].clone();

    let mut group = c.benchmark_group("micro_ops");

    group.bench_function("gap_detection_full_history", |b| {
        let timeline = store.timeline_of(device);
        let delta = store.delta(device);
        b.iter(|| criterion::black_box(timeline.gaps(delta).len()))
    });

    group.bench_function("pair_device_affinity_3_weeks", |b| {
        let engine = AffinityEngine::new(
            store,
            RoomAffinityWeights::default(),
            locater_events::clock::weeks(3),
        );
        b.iter(|| criterion::black_box(engine.pair_affinity(device, other, t)))
    });

    group.bench_function("room_affinity_distribution", |b| {
        let engine = AffinityEngine::new(
            store,
            RoomAffinityWeights::default(),
            locater_events::clock::weeks(3),
        );
        let region = store
            .covering_region(device, t)
            .unwrap_or(locater_space::RegionId::new(0));
        b.iter(|| criterion::black_box(engine.room_affinities(device, region).affinities.len()))
    });

    group.bench_function("timeline_devices_online_at", |b| {
        b.iter(|| criterion::black_box(store.devices_online_at(t, Some(device)).len()))
    });

    group.bench_function("global_graph_merge_and_order", |b| {
        let candidates: Vec<DeviceId> = (0..64).map(DeviceId::new).collect();
        b.iter(|| {
            let mut graph = GlobalAffinityGraph::new();
            for i in 0..64u32 {
                graph.record(device, DeviceId::new(i), 0.4, 0.4, t - i as i64);
            }
            criterion::black_box(graph.order_neighbors(device, &candidates, t).len())
        })
    });

    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
