//! Shared setup for the Criterion benches: a micro-scale campus fixture, a warmed
//! LOCATER instance and a query that exercises the fine-grained (room-level) path.

// Each bench target compiles this module independently and uses a different subset of
// the helpers.
#![allow(dead_code)]

use criterion::Criterion;
use locater_bench::datasets::{campus_fixture, BenchScale, CampusFixture};
use locater_bench::runner::warm_up;
use locater_core::system::{Locater, LocaterConfig, Query};
use std::time::Duration;

/// Criterion configuration tuned so the whole bench suite finishes in minutes: small
/// sample counts, short measurement windows.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(300))
        .configure_from_args()
}

/// Builds the micro-scale campus fixture shared by the query-latency benches.
pub fn fixture() -> CampusFixture {
    campus_fixture(&BenchScale::micro())
}

/// Builds a LOCATER instance over the fixture and warms its per-device models and
/// affinity cache with a few queries.
pub fn warmed_locater(fixture: &CampusFixture, config: LocaterConfig) -> Locater {
    let locater = Locater::new(fixture.store.clone(), config);
    warm_up(&locater, fixture, 10);
    locater
}

/// Picks a query from the university workload that the given system answers with a
/// room (i.e. one that exercises the fine-grained path), falling back to the first
/// query of the workload.
pub fn inside_query(fixture: &CampusFixture, locater: &Locater) -> Query {
    for workload_query in &fixture.university.queries {
        let query = Query::by_mac(&workload_query.mac, workload_query.t);
        if let Ok(answer) = locater.locate(&query) {
            if answer.is_inside() {
                return query;
            }
        }
    }
    let first = &fixture.university.queries[0];
    Query::by_mac(&first.mac, first.t)
}
