//! Batch-cleaning throughput bench: `Locater::locate_batch` across thread
//! counts on a uniform campus query workload. Demonstrates the scaling of the
//! sharded batch pipeline (answers are identical for every job count, so the
//! comparison is pure throughput).

mod common;

use criterion::{criterion_main, Criterion};
use locater_core::system::{Locater, LocaterConfig, Query};
use locater_sim::generated_workload;

fn bench(c: &mut Criterion) {
    let fixture = common::fixture();
    let locater = Locater::new(fixture.store.clone(), LocaterConfig::default());
    let workload = generated_workload(&fixture.output, 2_000, 0xBA7C4);
    let queries: Vec<Query> = workload
        .queries
        .iter()
        .map(|q| Query::by_mac(&q.mac, q.t))
        .collect();
    // Warm the per-device coarse models once so every measured batch sees the
    // same model-cache state and the comparison isolates the sharded cleaning.
    let _ = locater.locate_batch(&queries, 8);

    let mut group = c.benchmark_group("batch_throughput");
    for jobs in [1usize, 2, 4, 8] {
        group.bench_function(format!("jobs_{jobs}/queries_{}", queries.len()), |b| {
            b.iter(|| criterion::black_box(locater.locate_batch(&queries, jobs)))
        });
    }
    group.finish();
}

fn benches() {
    let mut criterion = common::criterion();
    bench(&mut criterion);
}

criterion_main!(benches);
