//! One module per table/figure of the paper's evaluation (§6), plus the ablation
//! studies called out in `DESIGN.md`.
//!
//! Every module exposes `run(scale) -> Vec<Table>`: it builds the required synthetic
//! datasets, evaluates the relevant systems, and returns result tables that contain
//! the measured values of this reproduction next to the values the paper reports.
//! The `exp_*` binaries print those tables; `exp_all` concatenates them into the
//! content of `EXPERIMENTS.md`.

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table2;
pub mod table3;
pub mod table4;

use crate::datasets::BenchScale;
use crate::report::Table;

/// Runs every experiment in paper order and returns all result tables.
pub fn run_all(scale: &BenchScale) -> Vec<Table> {
    let mut tables = Vec::new();
    tables.extend(fig7::run(scale));
    tables.extend(table2::run(scale));
    tables.extend(fig8::run(scale));
    tables.extend(fig9::run(scale));
    tables.extend(table3::run(scale));
    tables.extend(table4::run(scale));
    tables.extend(fig10::run(scale));
    tables.extend(fig11::run(scale));
    tables.extend(fig12::run(scale));
    tables.extend(ablation::run(scale));
    tables
}

/// The scale used by the experiment unit tests: small enough for CI, large enough to
/// exercise every code path.
#[cfg(test)]
pub(crate) fn test_scale() -> BenchScale {
    BenchScale {
        campus_weeks: 2,
        campus_population: 16,
        campus_access_points: 5,
        campus_monitored: 4,
        queries_per_person: 4,
        generated_queries: 30,
        scenario_scale: 0.15,
        scenario_days: 3,
    }
}
