//! Table 3 — precision per predictability group: baselines vs I-LOCATER vs
//! D-LOCATER.
//!
//! The paper groups the monitored users by the fraction of in-building time they
//! spend in their preferred room ([40,55) … [85,100)) and reports `Pc|Pf|Po` per
//! system. Both LOCATER variants beat Baseline1 everywhere and Baseline2 everywhere
//! except the most predictable group, where selecting the metadata room is already
//! nearly optimal; D-LOCATER is consistently at or above I-LOCATER.

use crate::datasets::{campus_fixture, BenchScale};
use crate::report::{triple, Table};
use crate::runner::{evaluate_baseline, evaluate_locater, predictability_group, SystemEvaluation};
use locater_core::baselines::{Baseline1, Baseline2};
use locater_core::system::{FineMode, LocaterConfig};

/// The predictability groups of Table 3, in paper order.
pub const GROUPS: [&str; 4] = ["[40,55)", "[55,70)", "[70,85)", "[85,100)"];

/// The paper's Table 3 (`Pc|Pf|Po`, percent) for reference, row per system.
pub const PAPER_ROWS: [(&str, [&str; 4]); 4] = [
    ("Baseline1", ["56|10|24", "63|8|25", "67|10|26", "73|12|27"]),
    (
        "Baseline2",
        ["62|45|39", "67|63|50", "69|75|57", "76|93|72"],
    ),
    (
        "I-LOCATER",
        ["76|72|61", "83|78|70", "87|84|77", "93|87|84"],
    ),
    (
        "D-LOCATER",
        ["76|77|63", "83|82|72", "87|87|79", "93|92|88"],
    ),
];

fn row_for(table: &mut Table, eval: &SystemEvaluation, paper: &[&str; 4]) {
    let mut cells = vec![eval.name.clone()];
    for (band, paper_cell) in GROUPS.iter().zip(paper) {
        match eval.report.group(band) {
            Some(counts) => {
                cells.push(format!(
                    "{} (paper {paper_cell})",
                    triple(counts.pc(), counts.pf(), counts.po())
                ));
            }
            None => cells.push(format!("n/a (paper {paper_cell})")),
        }
    }
    let overall = eval.overall();
    cells.push(triple(overall.pc(), overall.pf(), overall.po()));
    table.push_row(cells);
}

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Vec<Table> {
    let fixture = campus_fixture(scale);
    let group = |mac: &str| predictability_group(&fixture.output, mac);

    let mut table = Table::new(
        "Table 3 — Pc|Pf|Po per predictability group",
        "Campus dataset, university-style workload, 8 weeks of history. Cells are \
         measured Pc|Pf|Po with the paper's values in parentheses.",
        &[
            "system",
            "[40,55)",
            "[55,70)",
            "[70,85)",
            "[85,100)",
            "overall (measured)",
        ],
    );

    let mut baseline1 = Baseline1::default();
    let b1 = evaluate_baseline(
        &fixture.output,
        &fixture.store,
        &mut baseline1,
        &fixture.university,
        &group,
    );
    row_for(&mut table, &b1, &PAPER_ROWS[0].1);

    let mut baseline2 = Baseline2::default();
    let b2 = evaluate_baseline(
        &fixture.output,
        &fixture.store,
        &mut baseline2,
        &fixture.university,
        &group,
    );
    row_for(&mut table, &b2, &PAPER_ROWS[1].1);

    let i_locater = evaluate_locater(
        "I-LOCATER",
        &fixture.output,
        &fixture.store,
        LocaterConfig::default().with_fine_mode(FineMode::Independent),
        &fixture.university,
        &group,
    );
    row_for(&mut table, &i_locater, &PAPER_ROWS[2].1);

    let d_locater = evaluate_locater(
        "D-LOCATER",
        &fixture.output,
        &fixture.store,
        LocaterConfig::default().with_fine_mode(FineMode::Dependent),
        &fixture.university,
        &group,
    );
    row_for(&mut table, &d_locater, &PAPER_ROWS[3].1);

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn table3_lists_all_four_systems() {
        let tables = run(&test_scale());
        assert_eq!(tables.len(), 1);
        let table = &tables[0];
        assert_eq!(table.num_rows(), 4);
        let systems: Vec<&str> = table.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(
            systems,
            vec!["Baseline1", "Baseline2", "I-LOCATER", "D-LOCATER"]
        );
        // Overall column is always a Pc|Pf|Po triple.
        for row in &table.rows {
            assert_eq!(row.last().unwrap().split('|').count(), 3);
        }
    }
}
