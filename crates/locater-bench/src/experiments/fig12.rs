//! Figure 12 — effect of the caching engine on query latency (D-LOCATER).
//!
//! The caching strategy replaces recomputation of device affinities with lookups in
//! the global affinity graph and drives the neighbor processing order; the paper
//! reports the average time per query dropping from ~5 s to ~1 s once the cache is
//! in place.

use crate::datasets::{campus_fixture, BenchScale};
use crate::report::{millis, Table};
use crate::runner::evaluate_locater;
use locater_core::system::{CacheMode, FineMode, LocaterConfig};
use locater_sim::QueryWorkload;

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Vec<Table> {
    let fixture = campus_fixture(scale);
    let workloads: Vec<(&str, &QueryWorkload)> = vec![
        ("university", &fixture.university),
        ("generated", &fixture.generated),
    ];

    let mut table = Table::new(
        "Figure 12 — average time per query with and without caching (D-LOCATER)",
        "The paper reports the caching engine cutting the average query time roughly \
         five-fold on both query workloads; absolute numbers differ on the synthetic \
         substrate but the with-cache column must be at or below the without-cache one.",
        &["query set", "D-LOCATER+C (ms)", "D-LOCATER (ms)"],
    );

    for (name, workload) in workloads {
        let cached = evaluate_locater(
            "D-LOCATER+C",
            &fixture.output,
            &fixture.store,
            LocaterConfig::default()
                .with_fine_mode(FineMode::Dependent)
                .with_cache(CacheMode::Enabled),
            workload,
            &|_| "all".to_string(),
        );
        let uncached = evaluate_locater(
            "D-LOCATER",
            &fixture.output,
            &fixture.store,
            LocaterConfig::default()
                .with_fine_mode(FineMode::Dependent)
                .with_cache(CacheMode::Disabled),
            workload,
            &|_| "all".to_string(),
        );
        table.push_row(vec![
            name.to_string(),
            millis(cached.avg_query_time()),
            millis(uncached.avg_query_time()),
        ]);
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn fig12_reports_cached_and_uncached_latencies() {
        let tables = run(&test_scale());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].num_rows(), 2);
        for row in &tables[0].rows {
            let cached: f64 = row[1].parse().unwrap();
            let uncached: f64 = row[2].parse().unwrap();
            assert!(cached >= 0.0 && uncached >= 0.0);
        }
    }
}
