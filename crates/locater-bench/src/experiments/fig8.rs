//! Figure 8 — impact of the amount of historical data on `P_c`, `P_f` and `P_o`.
//!
//! The paper varies the history from 0 to 9 weeks for the two least-predictable user
//! groups and observes: coarse precision keeps improving and plateaus around 8 weeks;
//! fine precision roughly doubles from 0 to 1 week of history and plateaus around 3
//! weeks; the overall precision follows the same pattern, and every curve is higher
//! for the more predictable group.

use crate::datasets::{campus_fixture, BenchScale};
use crate::report::{pct, Table};
use crate::runner::{evaluate_locater, predictability_group};
use locater_core::system::{FineMode, LocaterConfig};
use locater_events::clock;

/// The history lengths (weeks) evaluated; a subset of the paper's 0..9 sweep chosen to
/// show the knee of every curve.
pub const WEEKS: [i64; 5] = [0, 1, 3, 5, 8];

/// The predictability groups plotted by Fig. 8.
pub const GROUPS: [&str; 2] = ["[40,55)", "[55,70)"];

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Vec<Table> {
    let fixture = campus_fixture(scale);
    let group = |mac: &str| predictability_group(&fixture.output, mac);

    let mut tables = Vec::new();
    for mode in [FineMode::Independent, FineMode::Dependent] {
        let mut table = Table::new(
            format!("Figure 8 — precision vs weeks of history ({mode})"),
            "Per predictability group; the paper reports the coarse precision plateauing \
             around 8 weeks of history and the fine precision around 3 weeks, with a large \
             jump from 0 to 1 week.",
            &[
                "weeks",
                "group",
                "Pc measured (%)",
                "Pf measured (%)",
                "Po measured (%)",
            ],
        );
        for &weeks in &WEEKS {
            let config = LocaterConfig::default()
                .with_fine_mode(mode)
                .with_history(clock::weeks(weeks).max(1));
            let eval = evaluate_locater(
                &format!("{mode}-{weeks}w"),
                &fixture.output,
                &fixture.store,
                config,
                &fixture.university,
                &group,
            );
            for band in GROUPS {
                if let Some(counts) = eval.report.group(band) {
                    table.push_row(vec![
                        weeks.to_string(),
                        band.to_string(),
                        pct(counts.pc()),
                        pct(counts.pf()),
                        pct(counts.po()),
                    ]);
                }
            }
            // Also report the aggregate over all groups so the trend is visible even
            // when a band happens to be sparsely populated at small scales.
            let overall = eval.overall();
            table.push_row(vec![
                weeks.to_string(),
                "all".to_string(),
                pct(overall.pc()),
                pct(overall.pf()),
                pct(overall.po()),
            ]);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn fig8_reports_every_history_length() {
        let tables = run(&test_scale());
        assert_eq!(tables.len(), 2);
        for table in &tables {
            // At least the "all" row exists for every history length.
            let weeks_seen: std::collections::HashSet<&str> =
                table.rows.iter().map(|r| r[0].as_str()).collect();
            assert_eq!(weeks_seen.len(), WEEKS.len());
            for row in &table.rows {
                for cell in &row[2..] {
                    let value: f64 = cell.parse().unwrap();
                    assert!((0.0..=100.0).contains(&value));
                }
            }
        }
    }
}
