//! Table 4 — accuracy per user profile on the four simulated scenarios (office,
//! university, mall, airport).
//!
//! The paper runs D-LOCATER (the better variant) on SmartBench-generated datasets and
//! reports `Pc|Pf|Po` per profile, plus the difference between LOCATER's overall
//! precision and the best baseline's (Baseline2). LOCATER wins everywhere; the margin
//! shrinks for highly unpredictable profiles (passengers, random customers), and the
//! coarse precision stays above ~80% in every scenario.

use crate::datasets::{scenario_fixture, BenchScale};
use crate::report::{triple, Table};
use crate::runner::{evaluate_baseline, evaluate_locater, profile_group};
use locater_core::baselines::{Baseline1, Baseline2};
use locater_core::system::{FineMode, LocaterConfig};
use locater_sim::ScenarioKind;

/// The paper's Table 4 per-profile cells (`Pc|Pf|Po(Δ)` percent), for reference.
pub fn paper_reference(kind: ScenarioKind) -> Vec<(&'static str, &'static str)> {
    match kind {
        ScenarioKind::Office => vec![
            ("Janitorial", "88|32|31(8)"),
            ("Visitors", "86|36|30(8)"),
            ("Manager", "92|72|69(15)"),
            ("Employees", "90|76|73(22)"),
            ("Receptionist", "92|85|81(21)"),
        ],
        ScenarioKind::University => vec![
            ("Visitors", "85|29|27(5)"),
            ("Undergraduate", "86|52|51(12)"),
            ("Professor", "85|76|68(9)"),
            ("Graduate", "87|81|73(21)"),
            ("Staff", "90|87|80(26)"),
        ],
        ScenarioKind::Mall => vec![
            ("Random Customer", "82|31|27(9)"),
            ("Regular Customer", "83|48|34(20)"),
            ("Staff", "86|55|50(14)"),
            ("Salesman(Res)", "87|72|66(16)"),
            ("Salesman(Shops)", "88|77|65(19)"),
        ],
        ScenarioKind::Airport => vec![
            ("Passenger", "90|29|37(16)"),
            ("TSA", "91|42|43(12)"),
            ("Airline-Represent", "88|71|65(25)"),
            ("Store-Staff", "92|79|80(31)"),
            ("Res-Staff", "90|85|80(27)"),
        ],
    }
}

/// Runs the experiment: one table per scenario.
pub fn run(scale: &BenchScale) -> Vec<Table> {
    ScenarioKind::ALL
        .iter()
        .map(|&kind| run_scenario(kind, scale))
        .collect()
}

/// Runs one scenario and builds its table.
pub fn run_scenario(kind: ScenarioKind, scale: &BenchScale) -> Table {
    let fixture = scenario_fixture(kind, scale);
    let group = |mac: &str| profile_group(&fixture.output, mac);

    let d_locater = evaluate_locater(
        "D-LOCATER",
        &fixture.output,
        &fixture.store,
        LocaterConfig::default().with_fine_mode(FineMode::Dependent),
        &fixture.workload,
        &group,
    );
    let mut baseline1 = Baseline1::default();
    let b1 = evaluate_baseline(
        &fixture.output,
        &fixture.store,
        &mut baseline1,
        &fixture.workload,
        &group,
    );
    let mut baseline2 = Baseline2::default();
    let b2 = evaluate_baseline(
        &fixture.output,
        &fixture.store,
        &mut baseline2,
        &fixture.workload,
        &group,
    );

    let mut table = Table::new(
        format!("Table 4 — {kind} scenario: D-LOCATER accuracy per profile"),
        "Cells are measured Pc|Pf|Po with, in parentheses, the improvement of Po over the \
         best baseline (negative means the baseline won). The paper's cells are shown in \
         the last column.",
        &[
            "profile",
            "D-LOCATER measured Pc|Pf|Po(Δ best baseline)",
            "queries",
            "paper Pc|Pf|Po(Δ)",
        ],
    );

    for (profile, paper) in paper_reference(kind) {
        let measured = d_locater.report.group(profile);
        let cell = match measured {
            Some(counts) => {
                let best_baseline_po = [&b1, &b2]
                    .iter()
                    .filter_map(|eval| eval.report.group(profile).map(|c| c.po()))
                    .fold(0.0f64, f64::max);
                let delta = (counts.po() - best_baseline_po) * 100.0;
                format!(
                    "{}({:+.0})",
                    triple(counts.pc(), counts.pf(), counts.po()),
                    delta
                )
            }
            None => "n/a".to_string(),
        };
        let queries = measured.map(|c| c.queries).unwrap_or(0);
        table.push_row(vec![
            profile.to_string(),
            cell,
            queries.to_string(),
            paper.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn table4_covers_one_scenario_with_all_profiles() {
        // Run a single scenario in the unit test to keep it fast; the full sweep is
        // exercised by the exp_table4_scenarios binary.
        let table = run_scenario(ScenarioKind::Office, &test_scale());
        assert_eq!(table.num_rows(), 5);
        let profiles: Vec<&str> = table.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(
            profiles,
            vec![
                "Janitorial",
                "Visitors",
                "Manager",
                "Employees",
                "Receptionist"
            ]
        );
    }

    #[test]
    fn paper_reference_lists_five_profiles_per_scenario() {
        for kind in ScenarioKind::ALL {
            assert_eq!(paper_reference(kind).len(), 5);
        }
    }
}
