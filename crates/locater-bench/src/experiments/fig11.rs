//! Figure 11 — effect of the loosened stop conditions on query latency.
//!
//! Without the early-stop bounds of §4.2, I-LOCATER must process every neighbor
//! device; with them it stops as soon as the leading room can no longer be overtaken.
//! The paper reports a considerable latency improvement with no precision cost.

use crate::datasets::{campus_fixture, BenchScale};
use crate::report::{millis, pct, Table};
use crate::runner::evaluate_locater;
use locater_core::system::{FineMode, LocaterConfig};
use locater_sim::QueryWorkload;

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Vec<Table> {
    let fixture = campus_fixture(scale);
    let workloads: Vec<(&str, &QueryWorkload)> = vec![
        ("university", &fixture.university),
        ("generated", &fixture.generated),
    ];

    let mut table = Table::new(
        "Figure 11 — average time per query with and without the stop conditions (I-LOCATER)",
        "The loosened early-stop conditions of §4.2 let the iterative algorithm answer \
         before processing every neighbor. The paper reports a large constant-factor \
         latency win at equal precision.",
        &[
            "query set",
            "with stop conditions (ms)",
            "without stop conditions (ms)",
            "Po with (%)",
            "Po without (%)",
        ],
    );

    for (name, workload) in workloads {
        let with_stop = evaluate_locater(
            "I-LOCATER",
            &fixture.output,
            &fixture.store,
            LocaterConfig::default().with_fine_mode(FineMode::Independent),
            workload,
            &|_| "all".to_string(),
        );
        let mut config = LocaterConfig::default().with_fine_mode(FineMode::Independent);
        config.fine.use_stop_conditions = false;
        let without_stop = evaluate_locater(
            "I-LOCATER (no stop)",
            &fixture.output,
            &fixture.store,
            config,
            workload,
            &|_| "all".to_string(),
        );
        table.push_row(vec![
            name.to_string(),
            millis(with_stop.avg_query_time()),
            millis(without_stop.avg_query_time()),
            pct(with_stop.overall().po()),
            pct(without_stop.overall().po()),
        ]);
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn fig11_reports_both_query_sets() {
        let tables = run(&test_scale());
        assert_eq!(tables.len(), 1);
        let table = &tables[0];
        assert_eq!(table.num_rows(), 2);
        for row in &table.rows {
            let with: f64 = row[1].parse().unwrap();
            let without: f64 = row[2].parse().unwrap();
            assert!(with >= 0.0 && without >= 0.0);
        }
    }
}
