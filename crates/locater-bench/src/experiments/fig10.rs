//! Figure 10 — efficiency: average time per query as more queries are processed,
//! for I-LOCATER+C and D-LOCATER+C on the university and generated query sets.
//!
//! The paper observes that D-LOCATER+C starts expensive (cold global affinity graph),
//! then converges down as the cache warms, while I-LOCATER+C stays flat and cheaper
//! throughout.

use crate::datasets::{campus_fixture, BenchScale};
use crate::report::{millis, Table};
use crate::runner::evaluate_locater;
use locater_core::system::{CacheMode, FineMode, LocaterConfig};
use locater_sim::QueryWorkload;

/// Number of checkpoints reported along each curve.
pub const CHECKPOINTS: usize = 8;

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Vec<Table> {
    let fixture = campus_fixture(scale);
    let workloads: Vec<(&str, &QueryWorkload)> = vec![
        ("university", &fixture.university),
        ("generated", &fixture.generated),
    ];

    let mut tables = Vec::new();
    for (workload_name, workload) in workloads {
        let mut table = Table::new(
            format!("Figure 10 — average time per query vs processed queries ({workload_name} query set)"),
            "Cumulative average wall-clock time per query. The paper reports D-LOCATER+C \
             starting around 5 s on a cold cache and converging to ~1 s, while I-LOCATER+C \
             stays flat and lower; absolute numbers differ on the synthetic substrate but \
             the cold-start/convergence shape is the comparison point.",
            &[
                "processed queries",
                "I-LOCATER+C avg (ms)",
                "D-LOCATER+C avg (ms)",
            ],
        );
        let i_eval = evaluate_locater(
            "I-LOCATER+C",
            &fixture.output,
            &fixture.store,
            LocaterConfig::default()
                .with_fine_mode(FineMode::Independent)
                .with_cache(CacheMode::Enabled),
            workload,
            &|_| "all".to_string(),
        );
        let d_eval = evaluate_locater(
            "D-LOCATER+C",
            &fixture.output,
            &fixture.store,
            LocaterConfig::default()
                .with_fine_mode(FineMode::Dependent)
                .with_cache(CacheMode::Enabled),
            workload,
            &|_| "all".to_string(),
        );
        let i_series = i_eval.cumulative_average_series(CHECKPOINTS);
        let d_series = d_eval.cumulative_average_series(CHECKPOINTS);
        for (i_point, d_point) in i_series.iter().zip(&d_series) {
            table.push_row(vec![
                i_point.0.to_string(),
                millis(i_point.1),
                millis(d_point.1),
            ]);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn fig10_produces_two_latency_curves() {
        let tables = run(&test_scale());
        assert_eq!(tables.len(), 2);
        for table in &tables {
            assert!(table.num_rows() >= 2);
            for row in &table.rows {
                let processed: usize = row[0].parse().unwrap();
                assert!(processed > 0);
                let i_ms: f64 = row[1].parse().unwrap();
                let d_ms: f64 = row[2].parse().unwrap();
                assert!(i_ms >= 0.0 && d_ms >= 0.0);
            }
        }
    }
}
