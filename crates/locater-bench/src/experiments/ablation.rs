//! Ablation studies for the design choices called out in `DESIGN.md`:
//!
//! 1. **Neighbor processing order** — §5 argues that processing neighbors in
//!    decreasing cached-affinity order makes the iterative fine-grained algorithm
//!    converge faster than a natural/random order.
//! 2. **Semi-supervised self-training** — §3's Algorithm 1 grows the training set of
//!    the coarse classifiers from heuristically labelled gaps; the ablation disables
//!    the self-training loop and trains on the bootstrap labels only.
//! 3. **Validity period δ** — §2 attaches a per-device validity period to every
//!    event; the ablation replaces the data-driven estimate with fixed small / large
//!    values.

use crate::datasets::{campus_fixture, BenchScale};
use crate::report::{millis, pct, Table};
use crate::runner::{evaluate_locater, truth_at};
use locater_core::metrics::EvaluationReport;
use locater_core::system::{CacheMode, FineMode, Locater, LocaterConfig, Location, Query};
use locater_events::clock;
use std::time::{Duration, Instant};

/// Runs all three ablations.
pub fn run(scale: &BenchScale) -> Vec<Table> {
    vec![
        neighbor_order(scale),
        self_training(scale),
        validity_sensitivity(scale),
    ]
}

/// Ablation 1: cached-affinity neighbor ordering vs natural order.
pub fn neighbor_order(scale: &BenchScale) -> Table {
    let fixture = campus_fixture(scale);
    let mut table = Table::new(
        "Ablation — neighbor processing order (I-LOCATER)",
        "With the caching engine the neighbors of a query are processed in decreasing \
         cached-affinity order; without it, in natural order. §5 predicts faster \
         convergence (fewer neighbors processed before the stop conditions fire) with \
         the affinity order once the cache is warm.",
        &[
            "ordering",
            "avg neighbors processed",
            "avg query time (ms)",
            "Po (%)",
        ],
    );

    for (label, cache) in [
        ("cached-affinity order", CacheMode::Enabled),
        ("natural order", CacheMode::Disabled),
    ] {
        let config = LocaterConfig::default()
            .with_fine_mode(FineMode::Independent)
            .with_cache(cache);
        let locater = Locater::new(fixture.store.clone(), config);
        let mut report = EvaluationReport::new(label);
        let mut neighbors_processed = 0usize;
        let mut fine_queries = 0usize;
        let mut elapsed = Duration::ZERO;
        for query in &fixture.university.queries {
            let started = Instant::now();
            let outcome = locater.locate_detailed(&Query::by_mac(&query.mac, query.t));
            elapsed += started.elapsed();
            let predicted = match &outcome {
                Ok((answer, diagnostics)) => {
                    if let Some(fine) = &diagnostics.fine {
                        neighbors_processed += fine.neighbors_processed;
                        fine_queries += 1;
                    }
                    answer.location
                }
                Err(_) => Location::Outside,
            };
            let truth = truth_at(&fixture.output, &query.mac, query.t);
            report.record("all", &fixture.output.space, truth, &predicted);
        }
        let avg_neighbors = neighbors_processed as f64 / fine_queries.max(1) as f64;
        let avg_time = elapsed / fixture.university.len().max(1) as u32;
        table.push_row(vec![
            label.to_string(),
            format!("{avg_neighbors:.2}"),
            millis(avg_time),
            pct(report.overall().po()),
        ]);
    }
    table
}

/// Ablation 2: Algorithm 1 self-training vs bootstrap-labels-only classifiers.
pub fn self_training(scale: &BenchScale) -> Table {
    let fixture = campus_fixture(scale);
    let group = |_: &str| "all".to_string();
    let mut table = Table::new(
        "Ablation — semi-supervised self-training (coarse classifiers)",
        "Default LOCATER grows the coarse training set with Algorithm 1; the ablation \
         trains only on the heuristically (bootstrap) labelled gaps, leaving ambiguous \
         gaps out of the training set.",
        &["variant", "Pc (%)", "Po (%)"],
    );
    for (label, rounds) in [
        ("with self-training", 400usize),
        ("bootstrap labels only", 0),
    ] {
        let mut config = LocaterConfig::default();
        config.coarse.self_training.max_rounds = rounds;
        let eval = evaluate_locater(
            label,
            &fixture.output,
            &fixture.store,
            config,
            &fixture.university,
            &group,
        );
        table.push_row(vec![
            label.to_string(),
            pct(eval.overall().pc()),
            pct(eval.overall().po()),
        ]);
    }
    table
}

/// Ablation 3: sensitivity to the validity period δ.
pub fn validity_sensitivity(scale: &BenchScale) -> Table {
    let fixture = campus_fixture(scale);
    let group = |_: &str| "all".to_string();
    let mut table = Table::new(
        "Ablation — validity period δ",
        "LOCATER estimates δ per device from its reconnection pattern (Appendix 9.1). \
         The ablation replaces the estimate with fixed values: a small δ turns most of \
         the timeline into gaps, a large δ hides genuine absences.",
        &["δ policy", "Pc (%)", "Po (%)"],
    );
    let policies: [(&str, Option<i64>); 3] = [
        ("estimated per device (default)", None),
        ("fixed 2 minutes", Some(clock::minutes(2))),
        ("fixed 30 minutes", Some(clock::minutes(30))),
    ];
    for (label, delta) in policies {
        let mut store = fixture.store.clone();
        if let Some(delta) = delta {
            for id in 0..store.num_devices() {
                store.set_delta(locater_events::DeviceId::new(id as u32), delta);
            }
        }
        let eval = evaluate_locater(
            label,
            &fixture.output,
            &store,
            LocaterConfig::default(),
            &fixture.university,
            &group,
        );
        table.push_row(vec![
            label.to_string(),
            pct(eval.overall().pc()),
            pct(eval.overall().po()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn ablation_tables_have_expected_shape() {
        let scale = test_scale();
        let order = neighbor_order(&scale);
        assert_eq!(order.num_rows(), 2);
        let selftrain = self_training(&scale);
        assert_eq!(selftrain.num_rows(), 2);
        let validity = validity_sensitivity(&scale);
        assert_eq!(validity.num_rows(), 3);
        for table in [&order, &selftrain, &validity] {
            for row in &table.rows {
                assert!(!row[0].is_empty());
            }
        }
    }
}
