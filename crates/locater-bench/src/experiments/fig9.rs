//! Figure 9 — impact of the caching engine on precision.
//!
//! The caching engine reuses affinities computed for earlier queries to order the
//! neighbor processing of later ones; the paper reports that this costs only 5–10
//! points of overall precision (while cutting query latency several-fold, Fig. 12).

use crate::datasets::{campus_fixture, BenchScale};
use crate::report::{pct, Table};
use crate::runner::evaluate_locater;
use locater_core::system::{CacheMode, FineMode, LocaterConfig};

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Vec<Table> {
    let fixture = campus_fixture(scale);
    let group = |_: &str| "all".to_string();

    let mut table = Table::new(
        "Figure 9 — overall precision with and without the caching engine",
        "I-LOCATER / D-LOCATER vs their +C (cached) variants on the university-style \
         workload. The paper reports caching costs 5–10 points of precision at most.",
        &[
            "system",
            "Pc measured (%)",
            "Pf measured (%)",
            "Po measured (%)",
        ],
    );

    for mode in [FineMode::Independent, FineMode::Dependent] {
        for cache in [CacheMode::Disabled, CacheMode::Enabled] {
            let label = match (mode, cache) {
                (FineMode::Independent, CacheMode::Disabled) => "I-LOCATER",
                (FineMode::Independent, CacheMode::Enabled) => "I-LOCATER+C",
                (FineMode::Dependent, CacheMode::Disabled) => "D-LOCATER",
                (FineMode::Dependent, CacheMode::Enabled) => "D-LOCATER+C",
            };
            let config = LocaterConfig::default()
                .with_fine_mode(mode)
                .with_cache(cache);
            let eval = evaluate_locater(
                label,
                &fixture.output,
                &fixture.store,
                config,
                &fixture.university,
                &group,
            );
            let overall = eval.overall();
            table.push_row(vec![
                label.to_string(),
                pct(overall.pc()),
                pct(overall.pf()),
                pct(overall.po()),
            ]);
        }
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn fig9_compares_cached_and_uncached_variants() {
        let tables = run(&test_scale());
        assert_eq!(tables.len(), 1);
        let table = &tables[0];
        assert_eq!(table.num_rows(), 4);
        let systems: Vec<&str> = table.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(systems.contains(&"I-LOCATER+C"));
        assert!(systems.contains(&"D-LOCATER"));
    }
}
