//! Figure 7 — coarse precision `P_c` versus the bootstrapping thresholds `τ_l` and
//! `τ_h`.
//!
//! The paper sweeps `τ_l` from 10 to 30 minutes (with `τ_h = 180`) and `τ_h` from 60
//! to 180 minutes (with `τ_l = 20`) and reports that `P_c` peaks around `τ_l = 20`
//! minutes and keeps improving with `τ_h`, levelling off around 170 minutes.

use crate::datasets::{campus_fixture, BenchScale};
use crate::report::{pct, Table};
use crate::runner::evaluate_locater;
use locater_core::system::LocaterConfig;
use locater_events::clock;

/// The `τ_l` sweep (minutes) of the left plot of Fig. 7.
pub const TAU_L_MINUTES: [i64; 5] = [10, 15, 20, 25, 30];
/// Paper-reported `P_c` (percent, read off the figure) for the `τ_l` sweep.
pub const PAPER_TAU_L: [f64; 5] = [83.0, 84.5, 85.5, 85.2, 84.8];
/// The `τ_h` sweep (minutes) of the right plot of Fig. 7.
pub const TAU_H_MINUTES: [i64; 5] = [60, 90, 120, 150, 180];
/// Paper-reported `P_c` (percent, read off the figure) for the `τ_h` sweep.
pub const PAPER_TAU_H: [f64; 5] = [77.0, 80.0, 82.5, 84.5, 85.8];

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Vec<Table> {
    let fixture = campus_fixture(scale);
    let group = |_: &str| "all".to_string();

    let mut tau_l_table = Table::new(
        "Figure 7 (left) — coarse precision vs τ_l (τ_h = 180 min)",
        "University-style query workload over the synthetic campus dataset. The paper \
         observes Pc rising to a peak at τ_l = 20 minutes and dipping slightly after.",
        &["τ_l (min)", "Pc measured (%)", "Pc paper (%)"],
    );
    for (&minutes, &paper) in TAU_L_MINUTES.iter().zip(&PAPER_TAU_L) {
        let mut config = LocaterConfig::default();
        config.coarse.tau_low = clock::minutes(minutes);
        config.coarse.tau_high = clock::minutes(180);
        let eval = evaluate_locater(
            &format!("tau_l={minutes}"),
            &fixture.output,
            &fixture.store,
            config,
            &fixture.university,
            &group,
        );
        tau_l_table.push_row(vec![
            minutes.to_string(),
            pct(eval.overall().pc()),
            format!("{paper:.1}"),
        ]);
    }

    let mut tau_h_table = Table::new(
        "Figure 7 (right) — coarse precision vs τ_h (τ_l = 20 min)",
        "The paper observes Pc increasing with τ_h and levelling off beyond ~170 minutes.",
        &["τ_h (min)", "Pc measured (%)", "Pc paper (%)"],
    );
    for (&minutes, &paper) in TAU_H_MINUTES.iter().zip(&PAPER_TAU_H) {
        let mut config = LocaterConfig::default();
        config.coarse.tau_low = clock::minutes(20);
        config.coarse.tau_high = clock::minutes(minutes);
        let eval = evaluate_locater(
            &format!("tau_h={minutes}"),
            &fixture.output,
            &fixture.store,
            config,
            &fixture.university,
            &group,
        );
        tau_h_table.push_row(vec![
            minutes.to_string(),
            pct(eval.overall().pc()),
            format!("{paper:.1}"),
        ]);
    }

    vec![tau_l_table, tau_h_table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn fig7_produces_both_sweeps() {
        let tables = run(&test_scale());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].num_rows(), TAU_L_MINUTES.len());
        assert_eq!(tables[1].num_rows(), TAU_H_MINUTES.len());
        // Every measured cell parses as a percentage.
        for table in &tables {
            for row in &table.rows {
                let measured: f64 = row[1].parse().unwrap();
                assert!((0.0..=100.0).contains(&measured));
            }
        }
    }
}
