//! Table 2 — impact of the room-affinity weight combinations `C1..C4` on the fine
//! precision `P_f`, for I-FINE and D-FINE.
//!
//! The paper reports that all four combinations perform similarly (C2 slightly best)
//! and that D-FINE outperforms I-FINE by ≈4.6 points on average.

use crate::datasets::{campus_fixture, BenchScale};
use crate::report::{pct, Table};
use crate::runner::evaluate_locater;
use locater_core::fine::RoomAffinityWeights;
use locater_core::system::{FineMode, LocaterConfig};

/// The paper's Table 2 values (percent): `P_f` of I-FINE for C1..C4.
pub const PAPER_I_FINE: [f64; 4] = [81.8, 83.4, 82.3, 82.4];
/// The paper's Table 2 values (percent): `P_f` of D-FINE for C1..C4.
pub const PAPER_D_FINE: [f64; 4] = [86.1, 87.5, 86.6, 86.4];

/// Runs the experiment.
pub fn run(scale: &BenchScale) -> Vec<Table> {
    let fixture = campus_fixture(scale);
    let group = |_: &str| "all".to_string();
    let combos = ["C1", "C2", "C3", "C4"];

    let mut table = Table::new(
        "Table 2 — fine precision Pf per room-affinity weight combination",
        "C1={0.7,0.2,0.1}, C2={0.6,0.3,0.1}, C3={0.5,0.3,0.2}, C4={0.5,0.4,0.1}. The paper \
         finds the algorithm insensitive to the combination (C2 slightly best) and D-FINE \
         above I-FINE by ~4.6 points.",
        &[
            "combination",
            "I-FINE measured",
            "I-FINE paper",
            "D-FINE measured",
            "D-FINE paper",
        ],
    );

    for (idx, (label, weights)) in combos.iter().zip(RoomAffinityWeights::TABLE2).enumerate() {
        let mut row = vec![label.to_string()];
        for mode in [FineMode::Independent, FineMode::Dependent] {
            let mut config = LocaterConfig::default().with_fine_mode(mode);
            config.fine.weights = weights;
            let eval = evaluate_locater(
                &format!("{label}-{mode}"),
                &fixture.output,
                &fixture.store,
                config,
                &fixture.university,
                &group,
            );
            row.push(pct(eval.overall().pf()));
            let paper = match mode {
                FineMode::Independent => PAPER_I_FINE[idx],
                FineMode::Dependent => PAPER_D_FINE[idx],
            };
            row.push(format!("{paper:.1}"));
        }
        // Reorder into (combo, I measured, I paper, D measured, D paper).
        table.push_row(vec![
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
            row[3].clone(),
            row[4].clone(),
        ]);
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_scale;

    #[test]
    fn table2_covers_all_weight_combinations() {
        let tables = run(&test_scale());
        assert_eq!(tables.len(), 1);
        let table = &tables[0];
        assert_eq!(table.num_rows(), 4);
        let labels: Vec<&str> = table.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(labels, vec!["C1", "C2", "C3", "C4"]);
        for row in &table.rows {
            for cell in &row[1..] {
                let value: f64 = cell.parse().unwrap();
                assert!((0.0..=100.0).contains(&value));
            }
        }
    }
}
