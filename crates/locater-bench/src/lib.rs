//! # locater-bench
//!
//! The experiment harness of the LOCATER reproduction: for **every table and figure**
//! of the paper's evaluation (§6) there is a module under [`experiments`] that builds
//! the required synthetic dataset, evaluates the relevant systems (LOCATER
//! configurations and the §6.1 baselines) and produces a result table containing the
//! measured values next to the values the paper reports.
//!
//! Three layers:
//!
//! * [`datasets`] — synthetic campus / scenario fixtures sized by a [`datasets::BenchScale`]
//!   (`quick` by default, `LOCATER_BENCH_SCALE=full` for paper-sized runs);
//! * [`runner`] — the query-evaluation loops (precision scoring + per-query timing);
//! * [`experiments`] — one module per table/figure plus the ablations, each exposing
//!   `run(scale) -> Vec<Table>`.
//!
//! The `exp_*` binaries print individual experiments; `exp_all` runs the whole
//! evaluation and emits the markdown that `EXPERIMENTS.md` is built from. The
//! Criterion benches in `benches/` measure the latency-oriented aspects of the same
//! experiments (query latency with/without caching, with/without stop conditions,
//! micro-operations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod datasets;
pub mod experiments;
pub mod report;
pub mod runner;

pub use chaos::{ChaosAction, ChaosConfig, ChaosCounters, ChaosProxy};
pub use datasets::{campus_fixture, scenario_fixture, BenchScale, CampusFixture, ScenarioFixture};
pub use report::Table;
pub use runner::{evaluate_baseline, evaluate_locater, truth_at, SystemEvaluation};

/// Prints a list of result tables to stdout as markdown, separated by blank lines.
pub fn print_tables(tables: &[Table]) {
    for table in tables {
        println!("{}", table.to_markdown());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_tables_does_not_panic() {
        let mut table = Table::new("t", "c", &["a"]);
        table.push_row(vec!["1".into()]);
        print_tables(&[table]);
    }
}
