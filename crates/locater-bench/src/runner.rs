//! Query-evaluation loops shared by all experiments.
//!
//! An experiment evaluates one or more *systems* (LOCATER configurations or the
//! baselines of §6.1) against a [`QueryWorkload`], scoring every answer against the
//! simulator ground truth with the paper's `P_c` / `P_f` / `P_o` metrics and timing
//! every query for the efficiency experiments.

use crate::datasets::CampusFixture;
use locater_core::baselines::BaselineSystem;
use locater_core::metrics::{EvaluationReport, PrecisionCounts, TruthLocation};
use locater_core::system::{Locater, LocaterConfig, Location, Query};
use locater_events::clock::Timestamp;
use locater_sim::{QueryWorkload, SimOutput};
use locater_store::EventStore;
use std::time::{Duration, Instant};

/// The ground-truth location of `mac` at `t` according to the simulator.
pub fn truth_at(output: &SimOutput, mac: &str, t: Timestamp) -> TruthLocation {
    match output.ground_truth.room_at(mac, t) {
        Some(room) => TruthLocation::Room(room),
        None => TruthLocation::Outside,
    }
}

/// Group label used by Table 3: the predictability band of the queried person.
pub fn predictability_group(output: &SimOutput, mac: &str) -> String {
    output
        .person(mac)
        .map(|p| p.group.clone())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Group label used by Table 4: the profile of the queried person.
pub fn profile_group(output: &SimOutput, mac: &str) -> String {
    output
        .person(mac)
        .map(|p| p.profile.clone())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The outcome of evaluating one system over one workload.
#[derive(Debug, Clone)]
pub struct SystemEvaluation {
    /// System name ("I-LOCATER", "Baseline2", …).
    pub name: String,
    /// Precision counters per group.
    pub report: EvaluationReport,
    /// Per-query wall-clock time, in the execution order of the workload.
    pub per_query: Vec<Duration>,
}

impl SystemEvaluation {
    /// Precision counters aggregated over all groups.
    pub fn overall(&self) -> PrecisionCounts {
        self.report.overall()
    }

    /// Mean wall-clock time per query.
    pub fn avg_query_time(&self) -> Duration {
        if self.per_query.is_empty() {
            return Duration::ZERO;
        }
        self.per_query.iter().sum::<Duration>() / self.per_query.len() as u32
    }

    /// Cumulative average query time sampled at `points` evenly spaced checkpoints —
    /// the series Fig. 10 plots ("average time per query vs #processed queries").
    pub fn cumulative_average_series(&self, points: usize) -> Vec<(usize, Duration)> {
        if self.per_query.is_empty() || points == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(points);
        let step = (self.per_query.len() / points).max(1);
        let mut running = Duration::ZERO;
        for (idx, &duration) in self.per_query.iter().enumerate() {
            running += duration;
            let processed = idx + 1;
            if processed % step == 0 || processed == self.per_query.len() {
                out.push((processed, running / processed as u32));
            }
        }
        out
    }
}

/// Evaluates a LOCATER configuration over a workload. The event store is cloned so
/// repeated evaluations never see each other's caches.
pub fn evaluate_locater(
    name: &str,
    output: &SimOutput,
    store: &EventStore,
    config: LocaterConfig,
    workload: &QueryWorkload,
    group_of: &dyn Fn(&str) -> String,
) -> SystemEvaluation {
    let locater = Locater::new(store.clone(), config);
    let mut report = EvaluationReport::new(name);
    let mut per_query = Vec::with_capacity(workload.len());
    for query in &workload.queries {
        let started = Instant::now();
        let predicted = locater
            .locate(&Query::by_mac(&query.mac, query.t))
            .map(|answer| answer.location)
            // Devices absent from the log cannot be placed inside the building.
            .unwrap_or(Location::Outside);
        per_query.push(started.elapsed());
        let truth = truth_at(output, &query.mac, query.t);
        report.record(&group_of(&query.mac), &output.space, truth, &predicted);
    }
    SystemEvaluation {
        name: name.to_string(),
        report,
        per_query,
    }
}

/// Evaluates one of the baselines over a workload.
pub fn evaluate_baseline(
    output: &SimOutput,
    store: &EventStore,
    baseline: &mut dyn BaselineSystem,
    workload: &QueryWorkload,
    group_of: &dyn Fn(&str) -> String,
) -> SystemEvaluation {
    let name = baseline.name().to_string();
    let mut report = EvaluationReport::new(&name);
    let mut per_query = Vec::with_capacity(workload.len());
    for query in &workload.queries {
        let started = Instant::now();
        let predicted = match store.device_id(&query.mac) {
            Some(device) => baseline.locate(store, device, query.t).location,
            None => Location::Outside,
        };
        per_query.push(started.elapsed());
        let truth = truth_at(output, &query.mac, query.t);
        report.record(&group_of(&query.mac), &output.space, truth, &predicted);
    }
    SystemEvaluation {
        name,
        report,
        per_query,
    }
}

/// Runs a warm-up pass over the first `n` queries of the university workload so that
/// per-device coarse models and the affinity cache are populated before timing
/// (used by the Criterion benches).
pub fn warm_up(locater: &Locater, fixture: &CampusFixture, n: usize) {
    for query in fixture.university.queries.iter().take(n) {
        let _ = locater.locate(&Query::by_mac(&query.mac, query.t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{campus_fixture, BenchScale};
    use locater_core::baselines::{Baseline1, Baseline2};
    use locater_core::system::FineMode;

    fn tiny_fixture() -> CampusFixture {
        campus_fixture(&BenchScale {
            campus_weeks: 2,
            campus_population: 16,
            campus_access_points: 5,
            campus_monitored: 5,
            queries_per_person: 6,
            generated_queries: 30,
            scenario_scale: 0.2,
            scenario_days: 3,
        })
    }

    #[test]
    fn locater_evaluation_scores_every_query() {
        let fixture = tiny_fixture();
        let group = |mac: &str| predictability_group(&fixture.output, mac);
        let eval = evaluate_locater(
            "I-LOCATER",
            &fixture.output,
            &fixture.store,
            LocaterConfig::default(),
            &fixture.university,
            &group,
        );
        assert_eq!(eval.per_query.len(), fixture.university.len());
        assert_eq!(eval.overall().queries, fixture.university.len());
        assert!(eval.avg_query_time() > Duration::ZERO);
        // The system must do visibly better than chance at the coarse level on a
        // dataset this regular.
        assert!(eval.overall().pc() > 0.4, "Pc = {}", eval.overall().pc());
        let series = eval.cumulative_average_series(5);
        assert!(!series.is_empty());
        assert_eq!(series.last().unwrap().0, fixture.university.len());
    }

    #[test]
    fn baselines_evaluate_and_locater_beats_baseline1_overall() {
        let fixture = tiny_fixture();
        let group = |mac: &str| predictability_group(&fixture.output, mac);
        let mut baseline1 = Baseline1::default();
        let b1 = evaluate_baseline(
            &fixture.output,
            &fixture.store,
            &mut baseline1,
            &fixture.university,
            &group,
        );
        let mut baseline2 = Baseline2::default();
        let b2 = evaluate_baseline(
            &fixture.output,
            &fixture.store,
            &mut baseline2,
            &fixture.university,
            &group,
        );
        let locater = evaluate_locater(
            "D-LOCATER",
            &fixture.output,
            &fixture.store,
            LocaterConfig::default().with_fine_mode(FineMode::Dependent),
            &fixture.university,
            &group,
        );
        assert_eq!(b1.name, "Baseline1");
        assert_eq!(b2.name, "Baseline2");
        assert_eq!(b1.overall().queries, locater.overall().queries);
        // The headline claim of the paper: LOCATER's overall precision beats the
        // random-room baseline.
        assert!(
            locater.overall().po() > b1.overall().po(),
            "LOCATER Po {} vs Baseline1 Po {}",
            locater.overall().po(),
            b1.overall().po()
        );
    }

    #[test]
    fn unknown_devices_are_scored_as_outside() {
        let fixture = tiny_fixture();
        let workload = QueryWorkload {
            name: "ghosts".into(),
            queries: vec![locater_sim::WorkloadQuery {
                mac: "never-seen-device".into(),
                t: 1_000,
            }],
        };
        let group = |_: &str| "g".to_string();
        let eval = evaluate_locater(
            "I-LOCATER",
            &fixture.output,
            &fixture.store,
            LocaterConfig::default(),
            &workload,
            &group,
        );
        // Ground truth also says outside (the device has no trajectory), so the
        // answer counts as a correct outside prediction.
        assert_eq!(eval.overall().queries, 1);
        assert_eq!(eval.overall().correct_outside, 1);
    }

    #[test]
    fn group_helpers_fall_back_to_unknown() {
        let fixture = tiny_fixture();
        assert_eq!(predictability_group(&fixture.output, "nope"), "unknown");
        assert_eq!(profile_group(&fixture.output, "nope"), "unknown");
        let known = &fixture.output.people[0].mac;
        assert_ne!(predictability_group(&fixture.output, known), "unknown");
        assert_ne!(profile_group(&fixture.output, known), "unknown");
    }
}
