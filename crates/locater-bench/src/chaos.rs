//! A deterministic chaos TCP proxy for wire-fault injection.
//!
//! [`ChaosProxy`] sits between a client and a live server, forwarding bytes
//! in both directions while injecting the failures real networks serve:
//! dropped connections, stalled reads, half-closes, and frames split
//! mid-byte. Every injection decision is a **pure function** of the seed and
//! the chunk's coordinates ([`ChaosConfig::action`]), so the same seed
//! yields a bit-identical decision stream — chaos runs replay exactly.
//!
//! The proxy never interprets the NDJSON protocol: it degrades the byte
//! stream only, which is precisely what a resilient client must survive.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What the proxy does to one forwarded chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosAction {
    /// Pass the chunk through untouched.
    Forward,
    /// Write the first half of the chunk, pause, then write the rest —
    /// a frame split mid-byte across two TCP pushes.
    Split,
    /// Sleep for [`ChaosConfig::stall`] before forwarding the chunk.
    Stall,
    /// Close both directions immediately; the chunk is lost.
    Drop,
    /// Forward the chunk, then shut down this direction only (half-close):
    /// the peer sees EOF while the other direction stays open.
    HalfClose,
}

/// Fault mix for a [`ChaosProxy`], in chunks-per-mille rates.
///
/// Rates are evaluated in the order drop → stall → half-close → split on a
/// single per-chunk roll, so their sum must stay ≤ 1000; the remainder of
/// the probability mass forwards cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for the decision stream; equal seeds replay identical decisions.
    pub seed: u64,
    /// Per-mille chance a chunk kills the connection.
    pub drop_per_mille: u16,
    /// Per-mille chance a chunk is stalled by [`stall`](Self::stall) first.
    pub stall_per_mille: u16,
    /// Per-mille chance a chunk half-closes its direction after forwarding.
    pub half_close_per_mille: u16,
    /// Per-mille chance a chunk is split mid-byte into two pushes.
    pub split_per_mille: u16,
    /// How long a stalled chunk waits.
    pub stall: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            drop_per_mille: 20,
            stall_per_mille: 30,
            half_close_per_mille: 10,
            split_per_mille: 200,
            stall: Duration::from_millis(50),
        }
    }
}

/// A quiet mix: every chunk forwards untouched (for control runs).
impl ChaosConfig {
    /// A configuration that injects nothing, whatever the seed.
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_per_mille: 0,
            stall_per_mille: 0,
            half_close_per_mille: 0,
            split_per_mille: 0,
            stall: Duration::ZERO,
        }
    }

    /// The injection decision for chunk number `chunk` of direction `dir`
    /// (0 = client→server, 1 = server→client) on connection `conn`.
    ///
    /// Pure and stateless: the decision stream for a seed can be computed
    /// ahead of time, replayed, and asserted bit-identical across runs.
    pub fn action(&self, conn: u64, dir: u8, chunk: u64) -> ChaosAction {
        let key = conn
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(dir) << 62)
            .wrapping_add(chunk);
        let roll = (mix(self.seed, key) % 1000) as u16;
        let drop = self.drop_per_mille;
        let stall = drop + self.stall_per_mille;
        let half_close = stall + self.half_close_per_mille;
        let split = half_close + self.split_per_mille;
        if roll < drop {
            ChaosAction::Drop
        } else if roll < stall {
            ChaosAction::Stall
        } else if roll < half_close {
            ChaosAction::HalfClose
        } else if roll < split {
            ChaosAction::Split
        } else {
            ChaosAction::Forward
        }
    }
}

/// SplitMix64 in counter mode: stateless, so any (seed, key) pair maps to
/// the same draw forever.
fn mix(seed: u64, counter: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(counter.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Injection counters, one per [`ChaosAction`] (forwards are not counted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosCounters {
    /// Connections killed mid-stream.
    pub drops: u64,
    /// Chunks stalled.
    pub stalls: u64,
    /// Directions half-closed.
    pub half_closes: u64,
    /// Chunks split mid-byte.
    pub splits: u64,
    /// Connections accepted.
    pub connections: u64,
}

#[derive(Debug, Default)]
struct Counters {
    drops: AtomicU64,
    stalls: AtomicU64,
    half_closes: AtomicU64,
    splits: AtomicU64,
    connections: AtomicU64,
}

/// A running chaos proxy. Dropping it stops the accept loop; established
/// pumps die with their sockets.
#[derive(Debug)]
pub struct ChaosProxy {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and forwards every accepted
    /// connection to `upstream` through the configured fault mix.
    pub fn start(upstream: SocketAddr, config: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || accept_loop(&listener, upstream, config, &stop, &counters))?
        };
        Ok(ChaosProxy {
            local_addr,
            stop,
            counters,
            accept: Some(accept),
        })
    }

    /// The address clients should dial instead of the real server.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the injection counters.
    pub fn counters(&self) -> ChaosCounters {
        ChaosCounters {
            drops: self.counters.drops.load(Ordering::Relaxed),
            stalls: self.counters.stalls.load(Ordering::Relaxed),
            half_closes: self.counters.half_closes.load(Ordering::Relaxed),
            splits: self.counters.splits.load(Ordering::Relaxed),
            connections: self.counters.connections.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting new connections (established pumps drain on their
    /// own as their sockets close).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    config: ChaosConfig,
    stop: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
) {
    let mut conn_index = 0u64;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((client, _)) => {
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let conn = conn_index;
                conn_index += 1;
                let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(5))
                else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                client.set_nodelay(true).ok();
                server.set_nodelay(true).ok();
                for dir in 0..2u8 {
                    let (from, to) = if dir == 0 {
                        (client.try_clone(), server.try_clone())
                    } else {
                        (server.try_clone(), client.try_clone())
                    };
                    let (Ok(from), Ok(to)) = (from, to) else {
                        continue;
                    };
                    let counters = Arc::clone(counters);
                    let _ = std::thread::Builder::new()
                        .name(format!("chaos-pump-{conn}-{dir}"))
                        .spawn(move || pump(from, to, config, conn, dir, &counters));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Forwards one direction chunk by chunk, consulting the decision stream.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    config: ChaosConfig,
    conn: u64,
    dir: u8,
    counters: &Counters,
) {
    let mut buf = [0u8; 4096];
    let mut chunk = 0u64;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => {
                // Upstream EOF/reset: propagate as a clean half-close.
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
        };
        let action = config.action(conn, dir, chunk);
        chunk += 1;
        match action {
            ChaosAction::Forward => {
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
            ChaosAction::Split => {
                counters.splits.fetch_add(1, Ordering::Relaxed);
                let mid = (n / 2).max(1);
                if to.write_all(&buf[..mid]).is_err() {
                    return;
                }
                let _ = to.flush();
                std::thread::sleep(Duration::from_millis(1));
                if to.write_all(&buf[mid..n]).is_err() {
                    return;
                }
            }
            ChaosAction::Stall => {
                counters.stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(config.stall);
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
            ChaosAction::Drop => {
                counters.drops.fetch_add(1, Ordering::Relaxed);
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
            ChaosAction::HalfClose => {
                counters.half_closes.fetch_add(1, Ordering::Relaxed);
                let _ = to.write_all(&buf[..n]);
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn decision_streams_are_seed_deterministic() {
        let a = ChaosConfig {
            seed: 7,
            ..ChaosConfig::default()
        };
        let b = ChaosConfig {
            seed: 7,
            ..ChaosConfig::default()
        };
        let stream =
            |c: &ChaosConfig| -> Vec<ChaosAction> { (0..512).map(|i| c.action(3, 1, i)).collect() };
        assert_eq!(stream(&a), stream(&b), "same seed, same decisions");
        let c = ChaosConfig {
            seed: 8,
            ..ChaosConfig::default()
        };
        assert_ne!(stream(&a), stream(&c), "seeds decorrelate");
        // The quiet mix never injects.
        assert!((0..512).all(|i| ChaosConfig::quiet(7).action(0, 0, i) == ChaosAction::Forward));
    }

    #[test]
    fn rates_partition_the_roll_space() {
        let config = ChaosConfig {
            seed: 11,
            drop_per_mille: 100,
            stall_per_mille: 100,
            half_close_per_mille: 100,
            split_per_mille: 100,
            stall: Duration::ZERO,
        };
        let mut seen = std::collections::HashMap::new();
        for i in 0..10_000u64 {
            *seen.entry(config.action(0, 0, i)).or_insert(0u64) += 1;
        }
        // Each 10% band should land within a loose tolerance of 1000 draws.
        for action in [
            ChaosAction::Drop,
            ChaosAction::Stall,
            ChaosAction::HalfClose,
            ChaosAction::Split,
        ] {
            let count = seen.get(&action).copied().unwrap_or(0);
            assert!(
                (600..1400).contains(&count),
                "{action:?} drawn {count} times in 10k"
            );
        }
        assert!(seen[&ChaosAction::Forward] > 5000);
    }

    /// An end-to-end echo through a quiet proxy: bytes survive untouched.
    #[test]
    fn quiet_proxy_is_transparent() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (stream, _) = upstream.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut stream = stream;
            stream.write_all(line.as_bytes()).unwrap();
        });
        let proxy = ChaosProxy::start(upstream_addr, ChaosConfig::quiet(1)).unwrap();
        let mut client = TcpStream::connect(proxy.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        client.write_all(b"hello through the fog\n").unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "hello through the fog\n");
        assert_eq!(proxy.counters().connections, 1);
        echo.join().unwrap();
        proxy.stop();
    }
}
