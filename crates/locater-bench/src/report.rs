//! Result tables and paper-reference formatting shared by all experiments.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A simple column-oriented result table rendered as GitHub-flavoured markdown.
///
/// Every experiment produces one or more `Table`s containing the *measured* values of
/// this reproduction next to the values the paper reports, so `EXPERIMENTS.md` can be
/// regenerated mechanically.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. "Figure 7 — Pc vs τ_l").
    pub title: String,
    /// One paragraph of context: workload, parameters, what the paper observed.
    pub caption: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells, all stringified.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, caption: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            caption: caption.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. The row is padded / truncated to the number of columns.
    pub fn push_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.columns.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as markdown (title, caption, header, rows).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        if !self.caption.is_empty() {
            let _ = writeln!(out, "{}\n", self.caption);
        }
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a fraction in `[0, 1]` as a percentage with one decimal, the way the
/// paper's tables print precision values.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}", fraction * 100.0)
}

/// Formats a duration in milliseconds with one decimal.
pub fn millis(duration: std::time::Duration) -> String {
    format!("{:.1}", duration.as_secs_f64() * 1_000.0)
}

/// Formats the paper's `Pc|Pf|Po` triple-cell notation.
pub fn triple(pc: f64, pf: f64, po: f64) -> String {
    format!("{:.0}|{:.0}|{:.0}", pc * 100.0, pf * 100.0, po * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_renders_markdown() {
        let mut table = Table::new("Figure X", "A caption.", &["a", "b"]);
        table.push_row(vec!["1".into(), "2".into()]);
        table.push_row(vec!["only-one".into()]);
        assert_eq!(table.num_rows(), 2);
        let md = table.to_markdown();
        assert!(md.contains("### Figure X"));
        assert!(md.contains("A caption."));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("| only-one |  |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.8342), "83.4");
        assert_eq!(pct(0.0), "0.0");
        assert_eq!(millis(Duration::from_micros(1_500)), "1.5");
        assert_eq!(triple(0.76, 0.72, 0.61), "76|72|61");
    }
}
