//! Dataset construction shared by the experiment harness and the Criterion benches.
//!
//! Every experiment runs against synthetic data (see `DESIGN.md` §2 for the
//! substitution rationale); the sizes are controlled by a [`BenchScale`] so the whole
//! suite completes quickly by default (`quick`) and can be scaled up
//! (`LOCATER_BENCH_SCALE=full`) when more time is available.

use locater_sim::{
    generated_workload, university_workload, CampusConfig, QueryWorkload, ScenarioConfig,
    ScenarioKind, SimOutput, Simulator,
};
use locater_store::EventStore;
use serde::{Deserialize, Serialize};

/// Sizing knobs for the experiment datasets and workloads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchScale {
    /// Weeks of campus data to generate.
    pub campus_weeks: i64,
    /// Number of campus occupants with offices.
    pub campus_population: usize,
    /// Number of campus access points.
    pub campus_access_points: usize,
    /// Size of the monitored ground-truth panel.
    pub campus_monitored: usize,
    /// Queries per monitored person in the university-style workload.
    pub queries_per_person: usize,
    /// Size of the generated (uniform) workload.
    pub generated_queries: usize,
    /// Scenario population scale factor (1.0 = the paper's population mix).
    pub scenario_scale: f64,
    /// Scenario length in days (the paper simulates 15).
    pub scenario_days: i64,
}

impl BenchScale {
    /// The fast configuration used by default: minutes, not hours, for the full suite.
    pub fn quick() -> Self {
        Self {
            campus_weeks: 8,
            campus_population: 72,
            campus_access_points: 12,
            campus_monitored: 16,
            queries_per_person: 50,
            generated_queries: 2_500,
            scenario_scale: 0.4,
            scenario_days: 12,
        }
    }

    /// A configuration approaching the paper's sizes (6-month-scale data, 5k/100k
    /// query workloads). Expect multi-hour runtimes.
    pub fn full() -> Self {
        Self {
            campus_weeks: 12,
            campus_population: 240,
            campus_access_points: 32,
            campus_monitored: 22,
            queries_per_person: 230,
            generated_queries: 100_000,
            scenario_scale: 1.0,
            scenario_days: 15,
        }
    }

    /// A minimal configuration used by the Criterion benches, where dataset
    /// construction happens inside the (untimed) setup of every bench target and must
    /// stay in the low seconds.
    pub fn micro() -> Self {
        Self {
            campus_weeks: 3,
            campus_population: 24,
            campus_access_points: 6,
            campus_monitored: 6,
            queries_per_person: 8,
            generated_queries: 120,
            scenario_scale: 0.2,
            scenario_days: 5,
        }
    }

    /// Reads the scale from the `LOCATER_BENCH_SCALE` environment variable
    /// (`quick` / `full`), defaulting to quick.
    pub fn from_env() -> Self {
        match std::env::var("LOCATER_BENCH_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Self::full(),
            _ => Self::quick(),
        }
    }

    /// The campus configuration for this scale.
    pub fn campus_config(&self) -> CampusConfig {
        CampusConfig {
            access_points: self.campus_access_points,
            population: self.campus_population,
            visitors: self.campus_population / 4,
            monitored: self.campus_monitored,
            weeks: self.campus_weeks,
            ..CampusConfig::default()
        }
    }
}

/// The campus dataset plus its query workloads and event store — the fixture most
/// experiments run against.
#[derive(Debug, Clone)]
pub struct CampusFixture {
    /// The simulated campus data.
    pub output: SimOutput,
    /// An event store over the data (with per-device δ estimated from the log).
    pub store: EventStore,
    /// The university-style query workload (monitored individuals).
    pub university: QueryWorkload,
    /// The generated (uniform devices × times) query workload.
    pub generated: QueryWorkload,
}

/// Builds the campus fixture for a scale.
pub fn campus_fixture(scale: &BenchScale) -> CampusFixture {
    let output = Simulator::new(0xBE7C).run_campus(&scale.campus_config());
    let store = output.build_store();
    let university = university_workload(&output, scale.queries_per_person, 0xACAD).shuffled(17);
    let generated = generated_workload(&output, scale.generated_queries, 0x6E7).shuffled(19);
    CampusFixture {
        output,
        store,
        university,
        generated,
    }
}

/// The fixture of one Table-4 scenario.
#[derive(Debug, Clone)]
pub struct ScenarioFixture {
    /// Which scenario this is.
    pub kind: ScenarioKind,
    /// The simulated data.
    pub output: SimOutput,
    /// Event store over the data.
    pub store: EventStore,
    /// Queries about the monitored members of every profile.
    pub workload: QueryWorkload,
}

/// Builds the fixture of one scenario.
pub fn scenario_fixture(kind: ScenarioKind, scale: &BenchScale) -> ScenarioFixture {
    let config = ScenarioConfig::new(kind)
        .with_days(scale.scenario_days)
        .with_scale(scale.scenario_scale);
    let output = Simulator::new(0x5CE0).run_scenario(&config);
    let store = output.build_store();
    let workload = university_workload(
        &output,
        scale.queries_per_person / 2 + 5,
        0xE0 + kind as u64,
    )
    .shuffled(23);
    ScenarioFixture {
        kind,
        output,
        store,
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> BenchScale {
        BenchScale {
            campus_weeks: 2,
            campus_population: 12,
            campus_access_points: 5,
            campus_monitored: 4,
            queries_per_person: 5,
            generated_queries: 40,
            scenario_scale: 0.15,
            scenario_days: 4,
        }
    }

    #[test]
    fn scales_are_ordered() {
        let quick = BenchScale::quick();
        let full = BenchScale::full();
        assert!(quick.campus_weeks < full.campus_weeks);
        assert!(quick.generated_queries < full.generated_queries);
        assert!(quick.scenario_scale < full.scenario_scale);
        // Default env (unset) falls back to quick.
        assert_eq!(BenchScale::from_env(), quick);
    }

    #[test]
    fn campus_fixture_is_consistent() {
        let fixture = campus_fixture(&tiny_scale());
        assert!(!fixture.output.events.is_empty());
        assert_eq!(fixture.store.num_events(), fixture.output.events.len());
        assert_eq!(fixture.university.len(), 4 * 5);
        assert_eq!(fixture.generated.len(), 40);
        // Every university query refers to a device present in the store.
        for query in &fixture.university.queries {
            assert!(
                fixture.store.device_id(&query.mac).is_some()
                    || fixture.output.person(&query.mac).is_some()
            );
        }
    }

    #[test]
    fn scenario_fixture_builds_for_every_kind() {
        let scale = tiny_scale();
        for kind in ScenarioKind::ALL {
            let fixture = scenario_fixture(kind, &scale);
            assert_eq!(fixture.kind, kind);
            assert!(!fixture.output.events.is_empty(), "{kind}");
            assert!(!fixture.workload.is_empty(), "{kind}");
        }
    }
}
