//! Prints the result tables of the `fig12` experiment (see `locater_bench::experiments::fig12`).

use locater_bench::datasets::BenchScale;
use locater_bench::experiments::fig12;
use locater_bench::print_tables;

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("running exp_fig12_cache_scalability at scale {scale:?}");
    let tables = fig12::run(&scale);
    print_tables(&tables);
}
