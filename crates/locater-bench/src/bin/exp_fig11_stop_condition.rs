//! Prints the result tables of the `fig11` experiment (see `locater_bench::experiments::fig11`).

use locater_bench::datasets::BenchScale;
use locater_bench::experiments::fig11;
use locater_bench::print_tables;

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("running exp_fig11_stop_condition at scale {scale:?}");
    let tables = fig11::run(&scale);
    print_tables(&tables);
}
