//! Prints the result tables of the `table3` experiment (see `locater_bench::experiments::table3`).

use locater_bench::datasets::BenchScale;
use locater_bench::experiments::table3;
use locater_bench::print_tables;

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("running exp_table3_groups at scale {scale:?}");
    let tables = table3::run(&scale);
    print_tables(&tables);
}
