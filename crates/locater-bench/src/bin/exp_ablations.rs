//! Prints the result tables of the `ablation` experiment (see `locater_bench::experiments::ablation`).

use locater_bench::datasets::BenchScale;
use locater_bench::experiments::ablation;
use locater_bench::print_tables;

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("running exp_ablations at scale {scale:?}");
    let tables = ablation::run(&scale);
    print_tables(&tables);
}
