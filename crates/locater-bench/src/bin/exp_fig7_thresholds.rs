//! Prints the result tables of the `fig7` experiment (see `locater_bench::experiments::fig7`).

use locater_bench::datasets::BenchScale;
use locater_bench::experiments::fig7;
use locater_bench::print_tables;

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("running exp_fig7_thresholds at scale {scale:?}");
    let tables = fig7::run(&scale);
    print_tables(&tables);
}
