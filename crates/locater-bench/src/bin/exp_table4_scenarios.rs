//! Prints the result tables of the `table4` experiment (see `locater_bench::experiments::table4`).

use locater_bench::datasets::BenchScale;
use locater_bench::experiments::table4;
use locater_bench::print_tables;

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("running exp_table4_scenarios at scale {scale:?}");
    let tables = table4::run(&scale);
    print_tables(&tables);
}
