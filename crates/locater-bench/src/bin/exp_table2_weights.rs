//! Prints the result tables of the `table2` experiment (see `locater_bench::experiments::table2`).

use locater_bench::datasets::BenchScale;
use locater_bench::experiments::table2;
use locater_bench::print_tables;

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("running exp_table2_weights at scale {scale:?}");
    let tables = table2::run(&scale);
    print_tables(&tables);
}
