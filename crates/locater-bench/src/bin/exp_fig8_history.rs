//! Prints the result tables of the `fig8` experiment (see `locater_bench::experiments::fig8`).

use locater_bench::datasets::BenchScale;
use locater_bench::experiments::fig8;
use locater_bench::print_tables;

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("running exp_fig8_history at scale {scale:?}");
    let tables = fig8::run(&scale);
    print_tables(&tables);
}
