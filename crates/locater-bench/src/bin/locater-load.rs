//! `locater-load` — closed- and open-loop load generator for the LOCATER
//! NDJSON server.
//!
//! Three ways to run it:
//!
//! ```text
//! # Self-hosted benchmark: spin an in-process server per (shard count, mode)
//! # over the metro_campus dataset and write BENCH_6.json.
//! locater-load --self-host [--shards 1,4] [--clients K] [--requests N]
//!              [--qps Q] [--duration SECS] [--mix PCT] [--out PATH]
//!
//! # Smoke test against a running server: ping/stats mix, exits non-zero on
//! # any protocol error or zero throughput. Used by CI.
//! locater-load --smoke --addr HOST:PORT [--clients K] [--requests N]
//!
//! # Ping-latency probe against a running server (no dataset knowledge).
//! locater-load --addr HOST:PORT [--clients K] [--requests N]
//!
//! # Bounded-memory soak: replay a multi-simulated-week campus trace through
//! # an in-process compacted service and an uncompacted control, compacting
//! # the former once per simulated day. Samples resident bytes per day,
//! # byte-compares in-window locate answers between the two, and writes
//! # BENCH_8.json. With LOCATER_BENCH_GUARD=1 it exits non-zero unless the
//! # compacted RSS plateaus (final within 10% of the 25%-mark) while the
//! # control grows, with zero answer drift.
//! locater-load --soak [--weeks N] [--retain SECS] [--shards N] [--out PATH]
//!
//! # Chaos run: route the resilient retry client through a seeded fault proxy
//! # (drops, stalls, half-closes, mid-frame splits) against a self-hosted
//! # server and assert every acked ingest is applied exactly once. Exits
//! # non-zero on any lost ack, duplicate application, or exhausted retry.
//! locater-load --chaos [--seed HEX] [--clients K] [--requests N]
//!              [--request-timeout SECS] [--addr HOST:PORT]
//! ```
//!
//! The open-loop mode is coordinated-omission safe: each request has a fixed
//! schedule slot `tᵢ = start + i / qps` and its latency is measured from the
//! *scheduled* send time, so a stalled server inflates the tail instead of
//! silently thinning the arrival rate. The closed-loop mode measures classic
//! synchronous round-trip time. The workload mixes ingest (`--mix` percent)
//! into a locate-dominated stream, replaying held-out metro_campus traffic:
//! 70% of simulated events are preloaded into the store, the remaining 30%
//! form the ingest stream, and locate targets are sampled from the preload.
//!
//! Backpressure (`overloaded`) and drain (`shutting_down`) rejections are
//! counted separately from protocol errors; only successful operations enter
//! the latency percentiles.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use locater_core::system::{CacheMode, LocateRequest, LocaterConfig, ShardedLocaterService};
use locater_proto::{
    decode_response, encode_request, encode_response, WireError, WireRequest, WireResponse,
    PROTOCOL_VERSION,
};
use locater_server::{Server, ServerConfig, ServerState};
use locater_sim::campus::CampusConfig;
use locater_sim::Simulator;
use locater_store::{EventStore, RawEvent};

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Options {
    addr: Option<String>,
    self_host: bool,
    smoke: bool,
    shards: Vec<usize>,
    clients: usize,
    /// Closed-loop requests per client.
    requests: usize,
    /// Open-loop aggregate target rate (requests/s across all clients).
    qps: f64,
    /// Open-loop run length in seconds.
    duration: f64,
    /// Percentage of requests that are ingests (the rest are locates).
    mix_pct: u32,
    out: Option<String>,
    soak: bool,
    /// Simulated campus weeks replayed by `--soak`.
    weeks: i64,
    /// Event-time retention (seconds) for the soak's compacted service.
    retain: i64,
    /// Per-response read timeout; a slot that times out is counted under
    /// `timed_out` instead of silently stalling the client forever.
    request_timeout: Duration,
    /// Chaos mode: drive the resilient retry client through a seeded fault
    /// proxy and assert zero lost or duplicated acked ingests.
    chaos: bool,
    /// Seed for `--chaos` (proxy decision stream + client backoff jitter).
    chaos_seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: None,
            self_host: false,
            smoke: false,
            shards: vec![1, 4],
            clients: 4,
            requests: 300,
            qps: 150.0,
            duration: 4.0,
            mix_pct: 20,
            out: None,
            soak: false,
            weeks: 4,
            retain: 4 * 86_400,
            request_timeout: Duration::from_secs(60),
            chaos: false,
            chaos_seed: 0xC405,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = Some(value("--addr", &mut it)?),
            "--self-host" => opts.self_host = true,
            "--smoke" => opts.smoke = true,
            "--shards" => {
                opts.shards = value("--shards", &mut it)?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("--shards: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                if opts.shards.is_empty() || opts.shards.contains(&0) {
                    return Err("--shards wants a comma list of positive counts".into());
                }
            }
            "--clients" => {
                opts.clients = value("--clients", &mut it)?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
                if opts.clients == 0 {
                    return Err("--clients must be positive".into());
                }
            }
            "--requests" => {
                opts.requests = value("--requests", &mut it)?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--qps" => {
                opts.qps = value("--qps", &mut it)?
                    .parse()
                    .map_err(|e| format!("--qps: {e}"))?;
                if opts.qps.is_nan() || opts.qps <= 0.0 {
                    return Err("--qps must be positive".into());
                }
            }
            "--duration" => {
                opts.duration = value("--duration", &mut it)?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?;
            }
            "--mix" => {
                opts.mix_pct = value("--mix", &mut it)?
                    .parse()
                    .map_err(|e| format!("--mix: {e}"))?;
                if opts.mix_pct > 100 {
                    return Err("--mix is a percentage (0-100)".into());
                }
            }
            "--out" => opts.out = Some(value("--out", &mut it)?),
            "--request-timeout" => {
                let secs: f64 = value("--request-timeout", &mut it)?
                    .parse()
                    .map_err(|e| format!("--request-timeout: {e}"))?;
                if secs.is_nan() || secs <= 0.0 {
                    return Err("--request-timeout must be a positive number of seconds".into());
                }
                opts.request_timeout = Duration::from_secs_f64(secs);
            }
            "--chaos" => opts.chaos = true,
            "--seed" => {
                opts.chaos_seed = value("--seed", &mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--soak" => opts.soak = true,
            "--weeks" => {
                opts.weeks = value("--weeks", &mut it)?
                    .parse()
                    .map_err(|e| format!("--weeks: {e}"))?;
                if opts.weeks < 1 {
                    return Err("--weeks must be at least 1".into());
                }
            }
            "--retain" => {
                opts.retain = value("--retain", &mut it)?
                    .parse()
                    .map_err(|e| format!("--retain: {e}"))?;
                if opts.retain < 1 {
                    return Err("--retain must be a positive number of seconds".into());
                }
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if opts.smoke && opts.addr.is_none() {
        return Err("--smoke needs --addr HOST:PORT".into());
    }
    if !opts.self_host && !opts.soak && !opts.chaos && opts.addr.is_none() {
        return Err(format!(
            "pick --self-host, --soak, --chaos or --addr HOST:PORT\n{USAGE}"
        ));
    }
    Ok(opts)
}

const USAGE: &str = "\
usage: locater-load --self-host [--shards 1,4] [--clients K] [--requests N]
                    [--qps Q] [--duration SECS] [--mix PCT] [--out PATH]
                    [--request-timeout SECS]
       locater-load --smoke --addr HOST:PORT [--clients K] [--requests N]
       locater-load --addr HOST:PORT [--clients K] [--requests N]
       locater-load --soak [--weeks N] [--retain SECS] [--shards N] [--out PATH]
       locater-load --chaos [--seed N] [--clients K] [--requests N]
                    [--request-timeout SECS] [--addr HOST:PORT]
";

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Ingest,
    Locate,
    Ping,
    Stats,
}

/// One pre-encoded request: the frame already carries its trailing newline so
/// the hot loop is a single `write_all`.
struct Op {
    kind: OpKind,
    frame: String,
}

fn op(kind: OpKind, request: &WireRequest) -> Op {
    let mut frame = encode_request(request);
    frame.push('\n');
    Op { kind, frame }
}

/// Deterministic splitmix-style generator so runs are reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// The shared metro_campus-derived traffic: a preloaded history, a held-out
/// ingest stream, and locate targets drawn from the preload.
struct Workload {
    space: locater_space::Space,
    preload: Vec<RawEvent>,
    stream: Vec<RawEvent>,
    locate_pool: Vec<(String, i64)>,
}

fn build_workload() -> Workload {
    let config = CampusConfig::metro_from_env();
    let output = Simulator::new(0xBE7C).run_campus(&config);
    let split = output.events.len() * 7 / 10;
    let mut events = output.events;
    let stream = events.split_off(split);
    let preload = events;

    let mut lcg = Lcg(0x10AD_6E4E);
    let pool = preload.len().min(4096);
    let locate_pool = (0..pool)
        .map(|_| {
            let e = &preload[(lcg.next() as usize) % preload.len()];
            // Jitter into the surrounding gap so queries exercise coarse +
            // fine localization rather than hitting events exactly.
            let jitter = (lcg.next() % 3600) as i64 - 1800;
            (e.mac.clone(), e.t + jitter)
        })
        .collect();
    Workload {
        space: output.space,
        preload,
        stream,
        locate_pool,
    }
}

/// Builds client `k`'s request script: `count` requests, `mix_pct` percent
/// ingests replaying this client's slice of the held-out stream (wrapping if
/// exhausted), the rest locates over preloaded devices.
fn client_script(w: &Workload, k: usize, clients: usize, count: usize, mix_pct: u32) -> Vec<Op> {
    let mine: Vec<&RawEvent> = w.stream.iter().skip(k).step_by(clients.max(1)).collect();
    let mut lcg = Lcg(0x5EED ^ (k as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let mut next_ingest = 0usize;
    (0..count)
        .map(|_| {
            if !mine.is_empty() && (lcg.next() % 100) < u64::from(mix_pct) {
                let e = mine[next_ingest % mine.len()];
                next_ingest += 1;
                op(
                    OpKind::Ingest,
                    &WireRequest::Ingest {
                        mac: e.mac.clone(),
                        t: e.t,
                        ap: e.ap.clone(),
                        request_id: None,
                    },
                )
            } else {
                let (mac, t) = &w.locate_pool[(lcg.next() as usize) % w.locate_pool.len()];
                op(
                    OpKind::Locate,
                    &WireRequest::Locate {
                        mac: Some(mac.clone()),
                        device: None,
                        t: *t,
                        fine_mode: None,
                        cache: None,
                    },
                )
            }
        })
        .collect()
}

/// A dataset-free script (ping + stats) for probing arbitrary servers.
fn probe_script(count: usize) -> Vec<Op> {
    (0..count)
        .map(|i| {
            if i % 5 == 4 {
                op(OpKind::Stats, &WireRequest::Stats)
            } else {
                op(OpKind::Ping, &WireRequest::Ping)
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ClientStats {
    ingest_lat_us: Vec<u64>,
    locate_lat_us: Vec<u64>,
    other_lat_us: Vec<u64>,
    rejected_overloaded: u64,
    rejected_shutting_down: u64,
    app_errors: u64,
    protocol_errors: u64,
    transport_errors: u64,
    /// Response slots whose read exceeded `--request-timeout`.
    timed_out: u64,
}

impl ClientStats {
    fn absorb(&mut self, other: ClientStats) {
        self.ingest_lat_us.extend(other.ingest_lat_us);
        self.locate_lat_us.extend(other.locate_lat_us);
        self.other_lat_us.extend(other.other_lat_us);
        self.rejected_overloaded += other.rejected_overloaded;
        self.rejected_shutting_down += other.rejected_shutting_down;
        self.app_errors += other.app_errors;
        self.protocol_errors += other.protocol_errors;
        self.transport_errors += other.transport_errors;
        self.timed_out += other.timed_out;
    }

    /// Books one failed response read: timeouts are their own bucket so a
    /// stalled server is distinguishable from a closed socket.
    fn record_read_failure(&mut self, error: Option<&std::io::Error>) {
        match error.map(std::io::Error::kind) {
            Some(std::io::ErrorKind::WouldBlock) | Some(std::io::ErrorKind::TimedOut) => {
                self.timed_out += 1
            }
            _ => self.transport_errors += 1,
        }
    }

    fn record(&mut self, kind: OpKind, line: &str, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        match decode_response(line.trim_end_matches(['\r', '\n'])) {
            Ok(WireResponse::Error(WireError::Overloaded { .. })) => self.rejected_overloaded += 1,
            Ok(WireResponse::Error(WireError::ShuttingDown)) => self.rejected_shutting_down += 1,
            Ok(WireResponse::Error(WireError::Parse { .. })) => self.protocol_errors += 1,
            Ok(WireResponse::Error(_)) => self.app_errors += 1,
            Ok(_) => match kind {
                OpKind::Ingest => self.ingest_lat_us.push(us),
                OpKind::Locate => self.locate_lat_us.push(us),
                OpKind::Ping | OpKind::Stats => self.other_lat_us.push(us),
            },
            Err(_) => self.protocol_errors += 1,
        }
    }

    fn completed_ok(&self) -> u64 {
        (self.ingest_lat_us.len() + self.locate_lat_us.len() + self.other_lat_us.len()) as u64
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

struct OpSummary {
    count: usize,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
}

fn summarize(mut lat_us: Vec<u64>) -> OpSummary {
    lat_us.sort_unstable();
    OpSummary {
        count: lat_us.len(),
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        p999_us: percentile(&lat_us, 0.999),
    }
}

struct RunResult {
    shards: usize,
    mode: &'static str,
    wall_s: f64,
    throughput_rps: f64,
    ingest: OpSummary,
    locate: OpSummary,
    stats: ClientStats,
    server_requests_served: u64,
    server_events: u64,
}

// ---------------------------------------------------------------------------
// Clients
// ---------------------------------------------------------------------------

fn connect(addr: &str, request_timeout: Duration) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(request_timeout)).ok();
    Ok(stream)
}

/// Synchronous request/response loop: latency is the classic round-trip time.
fn closed_loop_client(
    addr: &str,
    ops: &[Op],
    request_timeout: Duration,
) -> Result<ClientStats, String> {
    let mut writer = connect(addr, request_timeout)?;
    let mut reader = BufReader::new(writer.try_clone().map_err(|e| e.to_string())?);
    let mut stats = ClientStats::default();
    let mut line = String::new();
    for op in ops {
        let sent = Instant::now();
        if writer.write_all(op.frame.as_bytes()).is_err() {
            stats.transport_errors += 1;
            break;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                stats.record_read_failure(None);
                break;
            }
            Err(e) => {
                stats.record_read_failure(Some(&e));
                break;
            }
            Ok(_) => stats.record(op.kind, &line, sent.elapsed()),
        }
    }
    Ok(stats)
}

/// Fixed-schedule sender plus a paired receiver thread. Latency for request
/// `i` is measured from its schedule slot, not from the (possibly late)
/// actual send — the coordinated-omission correction.
fn open_loop_client(
    addr: &str,
    ops: &[Op],
    start: Instant,
    offset: Duration,
    interval: Duration,
    request_timeout: Duration,
) -> Result<ClientStats, String> {
    let mut writer = connect(addr, request_timeout)?;
    let mut reader = BufReader::new(writer.try_clone().map_err(|e| e.to_string())?);
    let (tx, rx) = mpsc::channel::<(OpKind, Instant)>();

    let receiver = std::thread::spawn(move || {
        let mut stats = ClientStats::default();
        let mut line = String::new();
        while let Ok((kind, scheduled)) = rx.recv() {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    stats.record_read_failure(None);
                    break;
                }
                Err(e) => {
                    stats.record_read_failure(Some(&e));
                    break;
                }
                Ok(_) => stats.record(kind, &line, Instant::now() - scheduled),
            }
        }
        stats
    });

    for (i, op) in ops.iter().enumerate() {
        let scheduled = start + offset + interval * i as u32;
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        if tx.send((op.kind, scheduled)).is_err() {
            break;
        }
        if writer.write_all(op.frame.as_bytes()).is_err() {
            break;
        }
    }
    drop(tx); // receiver drains remaining in-flight responses, then exits
    receiver
        .join()
        .map_err(|_| "open-loop receiver panicked".to_string())
}

/// Runs one script per client against `addr` and merges the results.
fn drive(
    addr: &str,
    scripts: Vec<Vec<Op>>,
    open_loop: Option<f64>,
    request_timeout: Duration,
) -> Result<(ClientStats, f64), String> {
    let failures = AtomicUsize::new(0);
    let started = Instant::now();
    let merged = std::thread::scope(|scope| {
        let clients = scripts.len();
        let handles: Vec<_> = scripts
            .iter()
            .enumerate()
            .map(|(k, ops)| {
                let failures = &failures;
                scope.spawn(move || {
                    let run = match open_loop {
                        None => closed_loop_client(addr, ops, request_timeout),
                        Some(qps) => {
                            let interval = Duration::from_secs_f64(clients as f64 / qps);
                            let offset = interval.mul_f64(k as f64 / clients as f64);
                            // Small settle delay so every thread shares one epoch.
                            open_loop_client(
                                addr,
                                ops,
                                started + Duration::from_millis(20),
                                offset,
                                interval,
                                request_timeout,
                            )
                        }
                    };
                    run.unwrap_or_else(|e| {
                        eprintln!("client {k}: {e}");
                        failures.fetch_add(1, Ordering::Relaxed);
                        ClientStats::default()
                    })
                })
            })
            .collect();
        let mut merged = ClientStats::default();
        for handle in handles {
            merged.absorb(handle.join().expect("client thread panicked"));
        }
        merged
    });
    let wall = started.elapsed().as_secs_f64();
    if failures.load(Ordering::Relaxed) == scripts.len() {
        return Err("every client failed to connect".into());
    }
    Ok((merged, wall))
}

// ---------------------------------------------------------------------------
// Self-hosted benchmark
// ---------------------------------------------------------------------------

fn run_self_hosted(
    w: &Workload,
    shards: usize,
    mode: &'static str,
    opts: &Options,
) -> Result<RunResult, String> {
    let mut store = EventStore::new(w.space.clone());
    store
        .ingest_batch(w.preload.iter())
        .map_err(|e| format!("preload: {e}"))?;
    let service = ShardedLocaterService::new(store, LocaterConfig::default(), shards);
    let config = ServerConfig::default();
    let state = Arc::new(
        ServerState::new(service, None)
            .with_dedup_capacity(config.admission_limit.saturating_mul(4).max(1024)),
    );
    let server = Server::bind(state, "127.0.0.1:0", config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().to_string();

    let per_client = match mode {
        "open" => ((opts.qps / opts.clients as f64) * opts.duration).ceil() as usize,
        _ => opts.requests,
    };
    let scripts: Vec<Vec<Op>> = (0..opts.clients)
        .map(|k| client_script(w, k, opts.clients, per_client, opts.mix_pct))
        .collect();
    let open = (mode == "open").then_some(opts.qps);
    let (stats, wall_s) = drive(&addr, scripts, open, opts.request_timeout)?;

    let server_stats = server.state().stats();

    // Graceful teardown: a shutdown frame, then drain.
    let mut ctl = connect(&addr, opts.request_timeout)?;
    let mut frame = encode_request(&WireRequest::Shutdown);
    frame.push('\n');
    ctl.write_all(frame.as_bytes()).map_err(|e| e.to_string())?;
    let mut ack = String::new();
    BufReader::new(&ctl)
        .read_line(&mut ack)
        .map_err(|e| e.to_string())?;
    let report = server.join();
    if let Some(message) = report.drain.failure_message() {
        return Err(format!("drain: {message}"));
    }

    let ok = stats.completed_ok();
    Ok(RunResult {
        shards,
        mode,
        wall_s,
        throughput_rps: ok as f64 / wall_s.max(1e-9),
        ingest: summarize(stats.ingest_lat_us.clone()),
        locate: summarize(stats.locate_lat_us.clone()),
        stats,
        server_requests_served: server_stats.requests_served,
        server_events: server_stats.events as u64,
    })
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

fn op_json(s: &OpSummary) -> String {
    format!(
        "{{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}}",
        s.count, s.p50_us, s.p99_us, s.p999_us
    )
}

fn run_json(r: &RunResult) -> String {
    format!(
        "    {{\"shards\": {}, \"mode\": \"{}\", \"wall_s\": {:.3}, \"throughput_rps\": {:.1}, \
         \"ingest\": {}, \"locate\": {}, \
         \"rejected_overloaded\": {}, \"rejected_shutting_down\": {}, \
         \"protocol_errors\": {}, \"app_errors\": {}, \"transport_errors\": {}, \
         \"timed_out\": {}, \
         \"server\": {{\"requests_served\": {}, \"events\": {}}}}}",
        r.shards,
        r.mode,
        r.wall_s,
        r.throughput_rps,
        op_json(&r.ingest),
        op_json(&r.locate),
        r.stats.rejected_overloaded,
        r.stats.rejected_shutting_down,
        r.stats.protocol_errors,
        r.stats.app_errors,
        r.stats.transport_errors,
        r.stats.timed_out,
        r.server_requests_served,
        r.server_events,
    )
}

fn print_run(r: &RunResult) {
    println!(
        "shards={} mode={:<6} {:>8.1} req/s  ingest p50/p99/p999 = {}/{}/{} µs ({} ops)  \
         locate p50/p99/p999 = {}/{}/{} µs ({} ops)  rejected={} proto_err={}",
        r.shards,
        r.mode,
        r.throughput_rps,
        r.ingest.p50_us,
        r.ingest.p99_us,
        r.ingest.p999_us,
        r.ingest.count,
        r.locate.p50_us,
        r.locate.p99_us,
        r.locate.p999_us,
        r.locate.count,
        r.stats.rejected_overloaded + r.stats.rejected_shutting_down,
        r.stats.protocol_errors,
    );
}

fn artifact_path(opts: &Options) -> String {
    opts.out.clone().unwrap_or_else(|| {
        std::env::var("LOCATER_BENCH_JSON")
            .unwrap_or_else(|_| format!("{}/../../BENCH_6.json", env!("CARGO_MANIFEST_DIR")))
    })
}

fn write_artifact(opts: &Options, w: &Workload, runs: &[RunResult]) -> Result<String, String> {
    let path = artifact_path(opts);
    let run_lines: Vec<String> = runs.iter().map(run_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"dataset\": \"metro_campus\",\n  \
         \"protocol_version\": {},\n  \"config\": {{\"clients\": {}, \"requests_per_client\": {}, \
         \"qps\": {:.1}, \"duration_s\": {:.1}, \"ingest_mix_pct\": {}, \
         \"preload_events\": {}, \"stream_events\": {}}},\n  \"runs\": [\n{}\n  ]\n}}\n",
        PROTOCOL_VERSION,
        opts.clients,
        opts.requests,
        opts.qps,
        opts.duration,
        opts.mix_pct,
        w.preload.len(),
        w.stream.len(),
        run_lines.join(",\n"),
    );
    std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
    Ok(path)
}

// ---------------------------------------------------------------------------
// Bounded-memory soak
// ---------------------------------------------------------------------------

/// One simulated day of the soak: resident-byte gauges after that day's
/// ingest (and, on the compacted side, after that day's compaction run).
struct SoakSample {
    day: i64,
    watermark: i64,
    compacted_bytes: usize,
    control_bytes: usize,
}

struct SoakReport {
    events: usize,
    days: usize,
    shards: usize,
    probes: usize,
    drift: usize,
    compaction_runs: u64,
    evicted_events: u64,
    summary_rows: usize,
    series: Vec<SoakSample>,
}

impl SoakReport {
    /// Gauge at the 25%-of-run mark — the plateau baseline. By then the
    /// compacted service has been through several retention cycles, so any
    /// further growth is a leak rather than warm-up.
    fn quarter(&self, f: impl Fn(&SoakSample) -> usize) -> usize {
        let idx = self.series.len() / 4;
        self.series.get(idx).map(&f).max(Some(1)).unwrap()
    }

    fn plateau_ratio(&self) -> f64 {
        let last = self.series.last().map(|s| s.compacted_bytes).unwrap_or(0);
        last as f64 / self.quarter(|s| s.compacted_bytes) as f64
    }

    fn control_growth(&self) -> f64 {
        let last = self.series.last().map(|s| s.control_bytes).unwrap_or(0);
        last as f64 / self.quarter(|s| s.control_bytes) as f64
    }
}

/// The soak's locate config: a two-day consulted window (coarse history and
/// fine affinity) so a few days of retention cover every probe, and no
/// affinity cache so each answer depends only on the store contents — the
/// drift comparison then checks exactly what compaction promises to preserve.
fn soak_config() -> LocaterConfig {
    let mut config = LocaterConfig::default();
    config.coarse.history = 2 * 86_400;
    config.fine.affinity_window = 2 * 86_400;
    config.cache = CacheMode::Disabled;
    config
}

/// Normalizes a locate answer to wire bytes. `events_seen` is zeroed: the
/// compacted store holds fewer raw events by design, and the equivalence
/// claim covers the *answer* (location, method, confidence) and the device
/// epoch, not the global event counter.
fn answer_bytes(service: &ShardedLocaterService, request: &LocateRequest) -> String {
    match service.locate(request) {
        Ok(mut response) => {
            response.events_seen = 0;
            encode_response(&WireResponse::located(&response))
        }
        Err(e) => format!("error: {e}"),
    }
}

fn run_soak(opts: &Options) -> Result<SoakReport, String> {
    const DAY: i64 = 86_400;
    let shards = opts.shards.iter().copied().max().unwrap_or(4);
    let config = locater_sim::campus::CampusConfig::small().with_weeks(opts.weeks);
    let output = Simulator::new(0x50A1).run_campus(&config);
    let mut events = output.events;
    events.sort_by(|a, b| (a.t, &a.mac, &a.ap).cmp(&(b.t, &b.mac, &b.ap)));
    eprintln!(
        "soak: {} events over {} simulated days, {} shard(s), retain {}s",
        events.len(),
        config.days(),
        shards,
        opts.retain
    );

    let locate_config = soak_config();
    let fresh = || {
        let store = EventStore::new(output.space.clone()).with_segment_span(DAY);
        ShardedLocaterService::new(store, locate_config, shards)
    };
    let compacted = fresh();
    let control = fresh();
    // Per-device event times, for scoping probes to the equivalence window.
    let mut per_mac: std::collections::HashMap<&str, Vec<i64>> = std::collections::HashMap::new();

    let mut lcg = Lcg(0x50AB_BED5);
    let mut report = SoakReport {
        events: events.len(),
        days: 0,
        shards,
        probes: 0,
        drift: 0,
        compaction_runs: 0,
        evicted_events: 0,
        summary_rows: 0,
        series: Vec::new(),
    };

    let mut start = 0usize;
    while start < events.len() {
        let day = events[start].t.div_euclid(DAY);
        let end = start + events[start..].partition_point(|e| e.t.div_euclid(DAY) == day);
        let chunk = &events[start..end];
        compacted
            .ingest_batch(chunk.iter())
            .map_err(|e| format!("soak ingest (compacted): {e}"))?;
        control
            .ingest_batch(chunk.iter())
            .map_err(|e| format!("soak ingest (control): {e}"))?;
        compacted
            .compact_all(opts.retain, None)
            .map_err(|e| format!("soak compaction: {e}"))?;

        for e in chunk {
            per_mac.entry(e.mac.as_str()).or_default().push(e.t);
        }

        // Probe the freshest day: recent query times keep the whole consulted
        // window (history + validity slack both sides) inside the retained
        // region, which is the regime where answers must match byte-for-byte.
        // Two scope rules, mirroring the equivalence contract:
        //  * jitter forward from an event, so the gap containing the query
        //    time is left-bounded by a retained event;
        //  * skip devices returning from an absence that reaches below the
        //    cut — the coarse gap scan consults one event *before* the
        //    history window, and for them that event has been evicted.
        let cut = compacted.compaction_status().last_cut.unwrap_or(i64::MIN);
        const DELTA_MAX: i64 = 1_800; // ValidityConfig's default upper clamp on δ
        let mut probes = 0;
        for _ in 0..64 {
            if probes == 16 {
                break;
            }
            let e = &chunk[(lcg.next() as usize) % chunk.len()];
            let t = e.t + (lcg.next() % 3600) as i64;
            let window_start = t - locate_config.coarse.history + DELTA_MAX;
            let times = &per_mac[e.mac.as_str()];
            let preceding = times.partition_point(|&x| x <= window_start);
            if preceding > 0 && times[preceding - 1] < cut {
                continue; // consulted gap would span the cut: out of scope
            }
            probes += 1;
            let request = LocateRequest {
                mac: Some(e.mac.clone()),
                device: None,
                t,
                fine_mode: None,
                cache: None,
                diagnostics: false,
            };
            report.probes += 1;
            if answer_bytes(&compacted, &request) != answer_bytes(&control, &request) {
                report.drift += 1;
                eprintln!("soak: answer drift for {} @ {t}", e.mac);
            }
        }

        report.series.push(SoakSample {
            day,
            watermark: compacted.watermark().unwrap_or(0),
            compacted_bytes: compacted.approx_resident_bytes(),
            control_bytes: control.approx_resident_bytes(),
        });
        report.days += 1;
        start = end;
    }

    let status = compacted.compaction_status();
    report.compaction_runs = status.runs;
    report.evicted_events = status.evicted_events;
    report.summary_rows = status.summary_rows;
    Ok(report)
}

fn soak_json(opts: &Options, r: &SoakReport) -> String {
    let series: Vec<String> = r
        .series
        .iter()
        .map(|s| {
            format!(
                "    {{\"day\": {}, \"watermark\": {}, \"compacted_bytes\": {}, \"control_bytes\": {}}}",
                s.day, s.watermark, s.compacted_bytes, s.control_bytes
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"soak_bounded_memory\",\n  \"dataset\": \"campus_small\",\n  \
         \"config\": {{\"weeks\": {}, \"retain_s\": {}, \"shards\": {}, \"segment_span_s\": 86400, \
         \"events\": {}, \"days\": {}}},\n  \
         \"compacted\": {{\"final_resident_bytes\": {}, \"bytes_per_event\": {:.1}, \
         \"plateau_ratio\": {:.3}, \"compaction_runs\": {}, \"evicted_events\": {}, \
         \"summary_rows\": {}}},\n  \
         \"control\": {{\"final_resident_bytes\": {}, \"growth_ratio\": {:.3}}},\n  \
         \"probes\": {{\"total\": {}, \"drift\": {}}},\n  \"series\": [\n{}\n  ]\n}}\n",
        opts.weeks,
        opts.retain,
        r.shards,
        r.events,
        r.days,
        r.series.last().map(|s| s.compacted_bytes).unwrap_or(0),
        r.series.last().map(|s| s.compacted_bytes).unwrap_or(0) as f64 / r.events.max(1) as f64,
        r.plateau_ratio(),
        r.compaction_runs,
        r.evicted_events,
        r.summary_rows,
        r.series.last().map(|s| s.control_bytes).unwrap_or(0),
        r.control_growth(),
        r.probes,
        r.drift,
        series.join(",\n"),
    )
}

fn soak(opts: &Options) -> Result<(), String> {
    let r = run_soak(opts)?;
    let path = opts.out.clone().unwrap_or_else(|| {
        std::env::var("LOCATER_BENCH_JSON")
            .unwrap_or_else(|_| format!("{}/../../BENCH_8.json", env!("CARGO_MANIFEST_DIR")))
    });
    std::fs::write(&path, soak_json(opts, &r)).map_err(|e| format!("write {path}: {e}"))?;
    println!(
        "soak: {} days, {} events; compacted plateau ratio {:.3} (control grew {:.3}x); \
         {} compaction run(s) evicted {} event(s) into {} summary row(s); \
         {} probe(s), {} drift",
        r.days,
        r.events,
        r.plateau_ratio(),
        r.control_growth(),
        r.compaction_runs,
        r.evicted_events,
        r.summary_rows,
        r.probes,
        r.drift
    );
    println!("wrote {path}");

    if std::env::var("LOCATER_BENCH_GUARD").as_deref() == Ok("1") {
        if r.compaction_runs == 0 || r.evicted_events == 0 {
            return Err("soak guard: compaction never evicted anything".into());
        }
        if r.plateau_ratio() > 1.10 {
            return Err(format!(
                "soak guard: compacted RSS grew {:.3}x past the 25% mark (limit 1.10) — \
                 retention is not holding memory flat",
                r.plateau_ratio()
            ));
        }
        if r.control_growth() < 1.05 {
            return Err(format!(
                "soak guard: control RSS grew only {:.3}x — the run is too short to \
                 distinguish a plateau from natural growth",
                r.control_growth()
            ));
        }
        if r.drift > 0 {
            return Err(format!(
                "soak guard: {} in-window answer(s) drifted between compacted and control",
                r.drift
            ));
        }
        println!("soak guard ok");
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

fn smoke(opts: &Options) -> Result<(), String> {
    let addr = opts.addr.as_deref().expect("--smoke implies --addr");
    let clients = opts.clients.clamp(1, 2);
    let per_client = opts.requests.clamp(1, 200);
    let scripts: Vec<Vec<Op>> = (0..clients).map(|_| probe_script(per_client)).collect();
    let (stats, wall_s) = drive(addr, scripts, None, opts.request_timeout)?;
    let ok = stats.completed_ok();
    let throughput = ok as f64 / wall_s.max(1e-9);
    println!(
        "smoke: {ok} responses in {wall_s:.3}s ({throughput:.1} req/s), \
         protocol_errors={}, app_errors={}, transport_errors={}, timed_out={}",
        stats.protocol_errors, stats.app_errors, stats.transport_errors, stats.timed_out
    );
    if stats.timed_out > 0 {
        return Err("smoke failed: requests timed out".into());
    }
    if stats.protocol_errors > 0 || stats.app_errors > 0 || stats.transport_errors > 0 {
        return Err("smoke failed: errors on the wire".into());
    }
    if ok == 0 {
        return Err("smoke failed: zero throughput".into());
    }
    println!("smoke ok");
    Ok(())
}

fn probe(opts: &Options) -> Result<(), String> {
    let addr = opts.addr.as_deref().expect("probe implies --addr");
    let scripts: Vec<Vec<Op>> = (0..opts.clients)
        .map(|_| probe_script(opts.requests))
        .collect();
    let (stats, wall_s) = drive(addr, scripts, None, opts.request_timeout)?;
    let summary = summarize(stats.other_lat_us.clone());
    println!(
        "probe: {} responses in {wall_s:.3}s ({:.1} req/s), \
         ping/stats p50/p99/p999 = {}/{}/{} µs, protocol_errors={}",
        stats.completed_ok(),
        stats.completed_ok() as f64 / wall_s.max(1e-9),
        summary.p50_us,
        summary.p99_us,
        summary.p999_us,
        stats.protocol_errors
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Chaos mode
// ---------------------------------------------------------------------------

/// Drives the resilient retry client through a seeded fault proxy and asserts
/// the end-to-end idempotency invariant: every acked ingest is applied exactly
/// once, no matter how many connections the proxy slams mid-request.
///
/// Self-hosts a small server unless `--addr` points at an external one (in
/// which case the exactly-once check is skipped — we cannot read a remote
/// server's event counter before other traffic moves it).
fn chaos(opts: &Options) -> Result<(), String> {
    use locater_bench::{ChaosConfig, ChaosProxy};
    use locater_client::{BackoffPolicy, ClientConfig, RetryClient};
    use std::net::ToSocketAddrs;

    // Upstream: an external server, or a self-hosted two-shard one.
    let hosted = if opts.addr.is_none() {
        let space = locater_space::SpaceBuilder::new("chaos")
            .add_access_point("wap1", &["r1", "r2"])
            .add_access_point("wap2", &["r3", "r4"])
            .build()
            .map_err(|e| format!("space: {e}"))?;
        let service =
            ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 2);
        let config = ServerConfig::default();
        let state = Arc::new(
            ServerState::new(service, None)
                .with_dedup_capacity(config.admission_limit.saturating_mul(4).max(1024)),
        );
        let server =
            Server::bind(state, "127.0.0.1:0", config).map_err(|e| format!("bind: {e}"))?;
        Some(server)
    } else {
        None
    };
    let upstream = match &hosted {
        Some(server) => server.local_addr(),
        None => opts
            .addr
            .as_deref()
            .unwrap()
            .to_socket_addrs()
            .map_err(|e| format!("resolve --addr: {e}"))?
            .next()
            .ok_or("--addr resolved to no address")?,
    };

    let config = ChaosConfig {
        seed: opts.chaos_seed,
        ..ChaosConfig::default()
    };
    let proxy = ChaosProxy::start(upstream, config).map_err(|e| format!("proxy: {e}"))?;
    let proxy_addr = proxy.local_addr().to_string();

    let per_client = opts.requests;
    let mut handles = Vec::new();
    for k in 0..opts.clients {
        let addr = proxy_addr.clone();
        let seed = opts.chaos_seed;
        let timeout = opts.request_timeout;
        handles.push(std::thread::spawn(move || {
            let mut client = RetryClient::new(ClientConfig {
                addr,
                request_timeout: timeout.min(Duration::from_secs(5)),
                max_retries: 20,
                backoff: BackoffPolicy {
                    base: Duration::from_millis(5),
                    cap: Duration::from_millis(200),
                    seed: seed ^ k as u64,
                },
                id_seed: seed.wrapping_mul(31).wrapping_add(k as u64),
            });
            let mac = format!("aa:bb:cc:dd:ee:{:02x}", k % 256);
            let (mut acked, mut failures) = (0u64, 0u64);
            let mut last_acked_t = None;
            for i in 0..per_client {
                let t = (i as i64 + 1) * 60;
                // Every 4th request reads back the client's own device at its
                // last acked timestamp; the rest ingest fresh (mac, t) pairs.
                let request = match last_acked_t {
                    Some(at) if i % 4 == 3 => WireRequest::Locate {
                        mac: Some(mac.clone()),
                        device: None,
                        t: at,
                        fine_mode: None,
                        cache: None,
                    },
                    _ => WireRequest::Ingest {
                        mac: mac.clone(),
                        t,
                        ap: if i % 2 == 0 { "wap1" } else { "wap2" }.into(),
                        request_id: None,
                    },
                };
                let is_ingest = matches!(request, WireRequest::Ingest { .. });
                match client.request(&request) {
                    Ok(WireResponse::Error(e)) => {
                        let _ = e;
                        failures += 1;
                    }
                    Ok(_) if is_ingest => {
                        acked += 1;
                        last_acked_t = Some(t);
                    }
                    Ok(_) => {}
                    Err(_) => failures += 1,
                }
            }
            (acked, failures, client.stats())
        }));
    }

    let (mut acked, mut failures) = (0u64, 0u64);
    let mut retries = 0u64;
    let mut connects = 0u64;
    for handle in handles {
        let (a, f, stats) = handle.join().expect("chaos client panicked");
        acked += a;
        failures += f;
        retries += stats.retries;
        connects += stats.connects;
    }

    let counters = proxy.counters();
    proxy.stop();

    // Self-hosted: graceful shutdown straight to the upstream (not through
    // the now-stopped proxy), then check exactly-once application.
    let mut server_events = None;
    if let Some(server) = hosted {
        let stats = server.state().stats();
        server_events = Some(stats.events as u64);
        let mut ctl = connect(&upstream.to_string(), opts.request_timeout)?;
        let mut frame = encode_request(&WireRequest::Shutdown);
        frame.push('\n');
        ctl.write_all(frame.as_bytes()).map_err(|e| e.to_string())?;
        let mut ack = String::new();
        BufReader::new(&ctl)
            .read_line(&mut ack)
            .map_err(|e| e.to_string())?;
        let report = server.join();
        if let Some(message) = report.drain.failure_message() {
            return Err(format!("drain: {message}"));
        }
    }

    println!(
        "chaos: seed={:#x} clients={} acked_ingests={} failures={} \
         retries={} connects={} proxy[drops={} stalls={} half_closes={} splits={} conns={}]{}",
        opts.chaos_seed,
        opts.clients,
        acked,
        failures,
        retries,
        connects,
        counters.drops,
        counters.stalls,
        counters.half_closes,
        counters.splits,
        counters.connections,
        match server_events {
            Some(events) => format!(" server_events={events}"),
            None => String::new(),
        },
    );

    if failures > 0 {
        return Err(format!(
            "chaos failed: {failures} request(s) exhausted retries"
        ));
    }
    if let Some(events) = server_events {
        if events != acked {
            return Err(format!(
                "chaos failed: {acked} acked ingest(s) but server applied {events} — \
                 {}",
                if events < acked {
                    "acked writes were lost"
                } else {
                    "retried writes were applied twice"
                }
            ));
        }
        println!("chaos ok: every acked ingest applied exactly once");
    } else {
        println!("chaos ok: zero client-visible failures (external server, count unchecked)");
    }
    Ok(())
}

fn self_host(opts: &Options) -> Result<(), String> {
    eprintln!("generating metro_campus workload (LOCATER_METRO_SCALE to resize)...");
    let w = build_workload();
    eprintln!(
        "workload: {} preloaded events, {} stream events, {} locate targets",
        w.preload.len(),
        w.stream.len(),
        w.locate_pool.len()
    );
    let mut runs = Vec::new();
    // BTreeSet dedups and orders user-supplied shard counts.
    let shard_counts: BTreeSet<usize> = opts.shards.iter().copied().collect();
    for &shards in &shard_counts {
        for mode in ["closed", "open"] {
            let run = run_self_hosted(&w, shards, mode, opts)?;
            print_run(&run);
            runs.push(run);
        }
    }
    let path = write_artifact(opts, &w, &runs)?;
    println!("wrote {path}");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let result = match parse_args(&args) {
        Ok(opts) if opts.smoke => smoke(&opts),
        Ok(opts) if opts.soak => soak(&opts),
        Ok(opts) if opts.chaos => chaos(&opts),
        Ok(opts) if opts.self_host => self_host(&opts),
        Ok(opts) => probe(&opts),
        Err(message) => Err(message),
    };
    if let Err(message) = result {
        eprintln!("{message}");
        std::process::exit(1);
    }
}
