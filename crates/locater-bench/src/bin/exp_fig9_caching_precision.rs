//! Prints the result tables of the `fig9` experiment (see `locater_bench::experiments::fig9`).

use locater_bench::datasets::BenchScale;
use locater_bench::experiments::fig9;
use locater_bench::print_tables;

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("running exp_fig9_caching_precision at scale {scale:?}");
    let tables = fig9::run(&scale);
    print_tables(&tables);
}
