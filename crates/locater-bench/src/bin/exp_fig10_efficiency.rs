//! Prints the result tables of the `fig10` experiment (see `locater_bench::experiments::fig10`).

use locater_bench::datasets::BenchScale;
use locater_bench::experiments::fig10;
use locater_bench::print_tables;

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("running exp_fig10_efficiency at scale {scale:?}");
    let tables = fig10::run(&scale);
    print_tables(&tables);
}
