//! Builder for [`Space`] (design-pattern guide: *builder*).

use crate::access_point::AccessPoint;
use crate::error::SpaceError;
use crate::ids::{AccessPointId, RoomId};
use crate::region::Region;
use crate::room::{Room, RoomType};
use crate::space::Space;
use std::collections::HashMap;

/// Incrementally constructs a [`Space`].
///
/// Rooms are created implicitly the first time they are referenced (defaulting to
/// [`RoomType::Private`] and no owner); access points must be added explicitly with
/// their coverage list. All mutators take and return `self` so a space can be defined
/// in one fluent expression; see the crate-level example.
#[derive(Debug, Clone, Default)]
pub struct SpaceBuilder {
    name: String,
    rooms: Vec<Room>,
    room_names: HashMap<String, RoomId>,
    access_points: Vec<AccessPoint>,
    ap_names: HashMap<String, AccessPointId>,
    coverage: Vec<Vec<RoomId>>,
    preferred: HashMap<String, Vec<RoomId>>,
    errors: Vec<SpaceError>,
}

impl SpaceBuilder {
    /// Starts a builder for a building called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    fn intern_room(&mut self, name: &str) -> RoomId {
        if let Some(&id) = self.room_names.get(name) {
            return id;
        }
        let id = RoomId::new(self.rooms.len() as u32);
        self.rooms.push(Room::new(id, name));
        self.room_names.insert(name.to_string(), id);
        id
    }

    /// Declares a room explicitly with a given type. Referencing the same name again
    /// (e.g. in an AP coverage list) reuses the same room.
    pub fn add_room(mut self, name: &str, room_type: RoomType) -> Self {
        let id = self.intern_room(name);
        self.rooms[id.index()].room_type = room_type;
        self
    }

    /// Adds an access point named `name` covering `rooms`. Rooms not seen before are
    /// created as private rooms.
    pub fn add_access_point(mut self, name: &str, rooms: &[&str]) -> Self {
        if self.ap_names.contains_key(name) {
            self.errors
                .push(SpaceError::DuplicateAccessPoint(name.to_string()));
            return self;
        }
        let id = AccessPointId::new(self.access_points.len() as u32);
        self.access_points.push(AccessPoint::new(id, name));
        self.ap_names.insert(name.to_string(), id);
        let cover: Vec<RoomId> = rooms.iter().map(|r| self.intern_room(r)).collect();
        self.coverage.push(cover);
        self
    }

    /// Extends the coverage of an already-declared access point.
    pub fn extend_coverage(mut self, ap_name: &str, rooms: &[&str]) -> Self {
        match self.ap_names.get(ap_name).copied() {
            Some(ap) => {
                let extra: Vec<RoomId> = rooms.iter().map(|r| self.intern_room(r)).collect();
                self.coverage[ap.index()].extend(extra);
            }
            None => self
                .errors
                .push(SpaceError::UnknownAccessPoint(ap_name.to_string())),
        }
        self
    }

    /// Sets the type of a room (creating it if necessary).
    pub fn room_type(mut self, name: &str, room_type: RoomType) -> Self {
        let id = self.intern_room(name);
        self.rooms[id.index()].room_type = room_type;
        self
    }

    /// Registers `mac` as an owner of room `name` (creating the room if necessary) and
    /// adds the room to the device's preferred rooms.
    pub fn room_owner(mut self, name: &str, mac: &str) -> Self {
        let id = self.intern_room(name);
        let room = &mut self.rooms[id.index()];
        if !room.owners.iter().any(|m| m == mac) {
            room.owners.push(mac.to_string());
        }
        let prefs = self.preferred.entry(mac.to_string()).or_default();
        if !prefs.contains(&id) {
            prefs.push(id);
        }
        self
    }

    /// Adds room `name` to the preferred rooms of device `mac` without registering
    /// ownership (e.g. the most frequently visited room obtained from background
    /// knowledge, paper §4.1).
    pub fn preferred_room(mut self, mac: &str, name: &str) -> Self {
        let id = self.intern_room(name);
        let prefs = self.preferred.entry(mac.to_string()).or_default();
        if !prefs.contains(&id) {
            prefs.push(id);
        }
        self
    }

    /// Number of access points added so far.
    pub fn num_access_points(&self) -> usize {
        self.access_points.len()
    }

    /// Number of rooms interned so far.
    pub fn num_rooms(&self) -> usize {
        self.rooms.len()
    }

    /// Finalizes the space, validating that it has at least one access point, that
    /// every access point covers at least one room, and that no duplicate definitions
    /// were recorded.
    pub fn build(self) -> Result<Space, SpaceError> {
        if let Some(err) = self.errors.into_iter().next() {
            return Err(err);
        }
        let regions: Vec<Region> = self
            .access_points
            .iter()
            .zip(self.coverage)
            .map(|(ap, rooms)| Region::new(ap.id, rooms))
            .collect();
        Space::from_parts(
            self.name,
            self.rooms,
            self.room_names,
            self.access_points,
            self.ap_names,
            regions,
            self.preferred,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_rooms_across_access_points() {
        let space = SpaceBuilder::new("b")
            .add_access_point("wap1", &["a", "b"])
            .add_access_point("wap2", &["b", "c"])
            .build()
            .unwrap();
        assert_eq!(space.num_rooms(), 3);
        assert_eq!(space.num_access_points(), 2);
        let b = space.room_id("b").unwrap();
        assert_eq!(space.regions_of_room(b).len(), 2);
    }

    #[test]
    fn duplicate_access_point_is_rejected() {
        let err = SpaceBuilder::new("b")
            .add_access_point("wap1", &["a"])
            .add_access_point("wap1", &["b"])
            .build()
            .unwrap_err();
        assert_eq!(err, SpaceError::DuplicateAccessPoint("wap1".into()));
    }

    #[test]
    fn empty_space_is_rejected() {
        let err = SpaceBuilder::new("b").build().unwrap_err();
        assert_eq!(err, SpaceError::EmptySpace);
    }

    #[test]
    fn empty_coverage_is_rejected() {
        let err = SpaceBuilder::new("b")
            .add_access_point("wap1", &[])
            .build()
            .unwrap_err();
        assert_eq!(err, SpaceError::EmptyCoverage("wap1".into()));
    }

    #[test]
    fn extend_coverage_adds_rooms() {
        let space = SpaceBuilder::new("b")
            .add_access_point("wap1", &["a"])
            .extend_coverage("wap1", &["b", "c"])
            .build()
            .unwrap();
        let g = space.ap_id("wap1").unwrap().region();
        assert_eq!(space.rooms_in_region(g).len(), 3);
    }

    #[test]
    fn extend_coverage_of_unknown_ap_errors_at_build() {
        let err = SpaceBuilder::new("b")
            .add_access_point("wap1", &["a"])
            .extend_coverage("wap9", &["b"])
            .build()
            .unwrap_err();
        assert_eq!(err, SpaceError::UnknownAccessPoint("wap9".into()));
    }

    #[test]
    fn room_owner_registers_ownership_and_preference() {
        let space = SpaceBuilder::new("b")
            .add_access_point("wap1", &["office", "lab"])
            .room_owner("office", "aa:bb")
            .build()
            .unwrap();
        let office = space.room_id("office").unwrap();
        assert!(space.room(office).is_owned_by("aa:bb"));
        assert_eq!(space.preferred_rooms("aa:bb"), &[office]);
    }

    #[test]
    fn preferred_room_is_idempotent() {
        let space = SpaceBuilder::new("b")
            .add_access_point("wap1", &["office"])
            .preferred_room("aa:bb", "office")
            .preferred_room("aa:bb", "office")
            .build()
            .unwrap();
        assert_eq!(space.preferred_rooms("aa:bb").len(), 1);
    }

    #[test]
    fn room_types_can_be_set_before_or_after_coverage() {
        let space = SpaceBuilder::new("b")
            .room_type("kitchen", RoomType::Public)
            .add_access_point("wap1", &["kitchen", "office"])
            .room_type("office", RoomType::Private)
            .build()
            .unwrap();
        assert!(space.is_public(space.room_id("kitchen").unwrap()));
        assert!(!space.is_public(space.room_id("office").unwrap()));
    }

    #[test]
    fn counters_track_progress() {
        let builder = SpaceBuilder::new("b")
            .add_access_point("wap1", &["a", "b"])
            .add_access_point("wap2", &["c"]);
        assert_eq!(builder.num_access_points(), 2);
        assert_eq!(builder.num_rooms(), 3);
    }
}
