//! Space metadata import/export and summary statistics.
//!
//! The paper (§5, §9.1) lists the metadata LOCATER needs in a deployment: the set of
//! access points, the rooms covered by each, room types (public/private), room owners
//! and preferred rooms. [`SpaceMetadata`] is a serde-friendly, file-oriented
//! representation of exactly that, convertible to and from a [`Space`].

use crate::builder::SpaceBuilder;
use crate::error::SpaceError;
use crate::room::RoomType;
use crate::space::Space;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Declarative description of a building's localization metadata, suitable for
/// storing as JSON next to a deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SpaceMetadata {
    /// Building name.
    pub name: String,
    /// AP name → covered room names.
    pub coverage: BTreeMap<String, Vec<String>>,
    /// Room names that are public/shared spaces; all other rooms are private.
    #[serde(default)]
    pub public_rooms: Vec<String>,
    /// Room name → owner MAC addresses.
    #[serde(default)]
    pub owners: BTreeMap<String, Vec<String>>,
    /// Device MAC → preferred room names (in addition to owned rooms).
    #[serde(default)]
    pub preferred: BTreeMap<String, Vec<String>>,
}

impl SpaceMetadata {
    /// Builds the immutable [`Space`] described by this metadata.
    pub fn build(&self) -> Result<Space, SpaceError> {
        let mut builder = SpaceBuilder::new(&self.name);
        for (ap, rooms) in &self.coverage {
            let refs: Vec<&str> = rooms.iter().map(String::as_str).collect();
            builder = builder.add_access_point(ap, &refs);
        }
        for room in &self.public_rooms {
            builder = builder.room_type(room, RoomType::Public);
        }
        for (room, macs) in &self.owners {
            for mac in macs {
                builder = builder.room_owner(room, mac);
            }
        }
        for (mac, rooms) in &self.preferred {
            for room in rooms {
                builder = builder.preferred_room(mac, room);
            }
        }
        builder.build()
    }

    /// Extracts metadata back out of a [`Space`] (inverse of [`SpaceMetadata::build`]).
    ///
    /// Room-name lists are emitted in lexicographic order, not intern order:
    /// [`RoomId`](crate::ids::RoomId) assignment depends on the order rooms
    /// were first mentioned during construction, which a
    /// metadata-build-metadata round trip does not preserve (APs rebuild in
    /// `BTreeMap` name order). Sorting by name makes the serialized form
    /// canonical, so two semantically equal spaces — e.g. an original and its
    /// snapshot-recovered copy — always produce byte-identical metadata.
    pub fn from_space(space: &Space) -> Self {
        let mut coverage = BTreeMap::new();
        for ap in space.access_points() {
            let mut rooms: Vec<String> = space
                .rooms_in_region(ap.region())
                .iter()
                .map(|&r| space.room(r).name.clone())
                .collect();
            rooms.sort_unstable();
            coverage.insert(ap.name.clone(), rooms);
        }
        let mut public_rooms: Vec<String> = space
            .rooms()
            .iter()
            .filter(|r| r.is_public())
            .map(|r| r.name.clone())
            .collect();
        public_rooms.sort_unstable();
        let mut owners = BTreeMap::new();
        for room in space.rooms() {
            if !room.owners.is_empty() {
                owners.insert(room.name.clone(), room.owners.clone());
            }
        }
        let mut preferred = BTreeMap::new();
        for (mac, rooms) in space.preferred_map() {
            let mut names: Vec<String> = rooms
                .iter()
                .map(|&r| space.room(r).name.clone())
                .filter(|name| {
                    // owned rooms are reconstructed through `owners`, keep only extras
                    !owners
                        .get(name)
                        .map(|macs: &Vec<String>| macs.iter().any(|m| m == mac))
                        .unwrap_or(false)
                })
                .collect();
            names.sort_unstable();
            if !names.is_empty() {
                preferred.insert(mac.clone(), names);
            }
        }
        Self {
            name: space.name().to_string(),
            coverage,
            public_rooms,
            owners,
            preferred,
        }
    }

    /// Serializes the metadata to pretty-printed JSON.
    pub fn to_json(&self) -> Result<String, SpaceError> {
        serde_json::to_string_pretty(self).map_err(|e| SpaceError::Metadata(e.to_string()))
    }

    /// Parses metadata from JSON.
    pub fn from_json(json: &str) -> Result<Self, SpaceError> {
        serde_json::from_str(json).map_err(|e| SpaceError::Metadata(e.to_string()))
    }
}

/// Summary statistics of a space, used in dataset reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceSummary {
    /// Building name.
    pub name: String,
    /// Number of access points / regions.
    pub access_points: usize,
    /// Number of rooms.
    pub rooms: usize,
    /// Number of public rooms.
    pub public_rooms: usize,
    /// Average number of rooms covered by one access point.
    pub avg_rooms_per_ap: f64,
    /// Number of devices with registered preferred rooms.
    pub devices_with_preferences: usize,
}

impl SpaceSummary {
    /// Computes the summary for a space.
    pub fn of(space: &Space) -> Self {
        let (public, _) = space.room_type_counts();
        Self {
            name: space.name().to_string(),
            access_points: space.num_access_points(),
            rooms: space.num_rooms(),
            public_rooms: public,
            avg_rooms_per_ap: space.avg_rooms_per_ap(),
            devices_with_preferences: space.preferred_map().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SpaceBuilder;

    fn sample_metadata() -> SpaceMetadata {
        let mut coverage = BTreeMap::new();
        coverage.insert("wap1".to_string(), vec!["2002".into(), "2004".into()]);
        coverage.insert("wap2".to_string(), vec!["2004".into(), "2061".into()]);
        let mut owners = BTreeMap::new();
        owners.insert("2061".to_string(), vec!["d1".to_string()]);
        let mut preferred = BTreeMap::new();
        preferred.insert("d2".to_string(), vec!["2004".to_string()]);
        SpaceMetadata {
            name: "DBH".into(),
            coverage,
            public_rooms: vec!["2004".into()],
            owners,
            preferred,
        }
    }

    #[test]
    fn metadata_builds_space() {
        let meta = sample_metadata();
        let space = meta.build().unwrap();
        assert_eq!(space.num_access_points(), 2);
        assert_eq!(space.num_rooms(), 3);
        assert!(space.is_public(space.room_id("2004").unwrap()));
        assert_eq!(
            space.metadata_room("d1"),
            Some(space.room_id("2061").unwrap())
        );
        assert_eq!(
            space.metadata_room("d2"),
            Some(space.room_id("2004").unwrap())
        );
    }

    #[test]
    fn metadata_roundtrips_through_space() {
        let meta = sample_metadata();
        let space = meta.build().unwrap();
        let back = SpaceMetadata::from_space(&space);
        assert_eq!(back, meta);
    }

    #[test]
    fn metadata_roundtrips_through_json() {
        let meta = sample_metadata();
        let json = meta.to_json().unwrap();
        let back = SpaceMetadata::from_json(&json).unwrap();
        assert_eq!(back, meta);
    }

    /// `RoomId` assignment depends on first-mention order, and rebuilding from
    /// metadata visits APs in `BTreeMap` name order — with ten or more APs,
    /// "wap10" rebuilds before "wap2", so intern order shifts. The canonical
    /// (name-sorted) serialization must hide that: a round-tripped space has
    /// to produce byte-identical metadata even though its ids were reassigned.
    #[test]
    fn metadata_is_canonical_across_id_reassignment() {
        let mut builder = SpaceBuilder::new("b");
        for ap in 0..12 {
            let rooms: Vec<String> = (0..3).map(|r| format!("{}", 2000 + ap * 3 + r)).collect();
            let refs: Vec<&str> = rooms.iter().map(String::as_str).collect();
            builder = builder.add_access_point(&format!("wap{ap}"), &refs);
        }
        let space = builder.build().unwrap();
        let meta = SpaceMetadata::from_space(&space);
        let rebuilt = meta.build().unwrap();
        let again = SpaceMetadata::from_space(&rebuilt);
        assert_eq!(again, meta);
        assert_eq!(again.to_json().unwrap(), meta.to_json().unwrap());
    }

    #[test]
    fn invalid_json_reports_metadata_error() {
        let err = SpaceMetadata::from_json("{not json").unwrap_err();
        matches!(err, SpaceError::Metadata(_));
    }

    #[test]
    fn summary_counts_match_space() {
        let space = SpaceBuilder::new("b")
            .add_access_point("wap1", &["a", "b"])
            .add_access_point("wap2", &["b", "c", "d"])
            .room_type("b", RoomType::Public)
            .preferred_room("m1", "a")
            .build()
            .unwrap();
        let summary = SpaceSummary::of(&space);
        assert_eq!(summary.access_points, 2);
        assert_eq!(summary.rooms, 4);
        assert_eq!(summary.public_rooms, 1);
        assert_eq!(summary.devices_with_preferences, 1);
        assert!((summary.avg_rooms_per_ap - 2.5).abs() < 1e-9);
    }
}
