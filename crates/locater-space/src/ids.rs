//! Dense integer identifiers for the entities of the space model.
//!
//! All ids are newtypes over `u32` (design-pattern guide: *newtype*), created by the
//! [`crate::SpaceBuilder`] in insertion order, so they can index directly into the
//! internal vectors of [`crate::Space`].

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from its raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this id.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a room (`r_j` in the paper). Indexes into [`crate::Space::rooms`].
    RoomId,
    "room#"
);

define_id!(
    /// Identifier of a region (`g_j` in the paper). There is exactly one region per
    /// access point, and their raw indices coincide: `RegionId(i)` is the coverage
    /// region of `AccessPointId(i)`.
    RegionId,
    "region#"
);

define_id!(
    /// Identifier of a WiFi access point (`wap_j` in the paper).
    AccessPointId,
    "wap#"
);

impl AccessPointId {
    /// The region covered by this access point (1:1 mapping, paper §2).
    #[inline]
    pub const fn region(self) -> RegionId {
        RegionId(self.0)
    }
}

impl RegionId {
    /// The access point whose coverage defines this region (1:1 mapping, paper §2).
    #[inline]
    pub const fn access_point(self) -> AccessPointId {
        AccessPointId(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_raw() {
        let r = RoomId::new(7);
        assert_eq!(r.raw(), 7);
        assert_eq!(r.index(), 7);
        assert_eq!(u32::from(r), 7);
        assert_eq!(usize::from(r), 7);
        assert_eq!(RoomId::from(7u32), r);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(RoomId::new(3).to_string(), "room#3");
        assert_eq!(RegionId::new(0).to_string(), "region#0");
        assert_eq!(AccessPointId::new(12).to_string(), "wap#12");
    }

    #[test]
    fn ap_and_region_are_isomorphic() {
        let ap = AccessPointId::new(5);
        assert_eq!(ap.region(), RegionId::new(5));
        assert_eq!(ap.region().access_point(), ap);
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(RoomId::new(1) < RoomId::new(2));
        assert!(RegionId::new(10) > RegionId::new(9));
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&RoomId::new(42)).unwrap();
        assert_eq!(json, "42");
        let back: RoomId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, RoomId::new(42));
    }
}
