//! Room adjacency graph.
//!
//! The paper's synthetic-data generator (§6.3, SmartBench) "considers the effect of
//! indoor topology on the object (device) movement in indoor space based on the
//! specific floor map". [`RoomAdjacency`] is the minimal topology substrate the
//! simulator needs: an undirected graph over rooms with BFS shortest paths, so that
//! simulated people move through plausible sequences of rooms instead of teleporting.
//!
//! If no explicit adjacency is provided, [`RoomAdjacency::from_coverage`] derives one
//! from AP coverage: two rooms are considered adjacent when some access point covers
//! both (rooms under the same AP are physically close).

use crate::ids::RoomId;
use crate::space::Space;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Undirected adjacency graph over the rooms of a [`Space`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoomAdjacency {
    /// `neighbors[r]` lists the rooms adjacent to room `r`, sorted and deduplicated.
    neighbors: Vec<Vec<RoomId>>,
}

impl RoomAdjacency {
    /// Creates an empty adjacency graph for `num_rooms` rooms.
    pub fn new(num_rooms: usize) -> Self {
        Self {
            neighbors: vec![Vec::new(); num_rooms],
        }
    }

    /// Derives adjacency from AP coverage: rooms covered by the same access point are
    /// mutually adjacent.
    pub fn from_coverage(space: &Space) -> Self {
        let mut adj = Self::new(space.num_rooms());
        for region in space.regions() {
            for (i, &a) in region.rooms.iter().enumerate() {
                for &b in &region.rooms[i + 1..] {
                    adj.connect(a, b);
                }
            }
        }
        adj.normalize();
        adj
    }

    /// Adds an undirected edge between two rooms. Self-loops are ignored.
    pub fn connect(&mut self, a: RoomId, b: RoomId) {
        if a == b {
            return;
        }
        self.neighbors[a.index()].push(b);
        self.neighbors[b.index()].push(a);
    }

    fn normalize(&mut self) {
        for n in &mut self.neighbors {
            n.sort_unstable();
            n.dedup();
        }
    }

    /// Number of rooms in the graph.
    pub fn num_rooms(&self) -> usize {
        self.neighbors.len()
    }

    /// Rooms adjacent to `room`.
    pub fn neighbors(&self, room: RoomId) -> &[RoomId] {
        &self.neighbors[room.index()]
    }

    /// `true` if `a` and `b` share an edge.
    pub fn are_adjacent(&self, a: RoomId, b: RoomId) -> bool {
        self.neighbors[a.index()].binary_search(&b).is_ok()
            || self.neighbors[a.index()].contains(&b)
    }

    /// BFS shortest path from `from` to `to` (inclusive of both endpoints). Returns
    /// `None` if the rooms are disconnected.
    pub fn shortest_path(&self, from: RoomId, to: RoomId) -> Option<Vec<RoomId>> {
        if from == to {
            return Some(vec![from]);
        }
        let n = self.neighbors.len();
        let mut prev: Vec<Option<RoomId>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[from.index()] = true;
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            for &next in &self.neighbors[cur.index()] {
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    prev[next.index()] = Some(cur);
                    if next == to {
                        let mut path = vec![to];
                        let mut at = to;
                        while let Some(p) = prev[at.index()] {
                            path.push(p);
                            at = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Number of hops between two rooms, or `None` if disconnected.
    pub fn distance(&self, from: RoomId, to: RoomId) -> Option<usize> {
        self.shortest_path(from, to).map(|p| p.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SpaceBuilder;

    #[test]
    fn coverage_adjacency_connects_rooms_under_same_ap() {
        let space = SpaceBuilder::new("b")
            .add_access_point("wap1", &["a", "b"])
            .add_access_point("wap2", &["b", "c"])
            .build()
            .unwrap();
        let adj = RoomAdjacency::from_coverage(&space);
        let a = space.room_id("a").unwrap();
        let b = space.room_id("b").unwrap();
        let c = space.room_id("c").unwrap();
        assert!(adj.are_adjacent(a, b));
        assert!(adj.are_adjacent(b, c));
        assert!(!adj.are_adjacent(a, c));
        assert_eq!(adj.num_rooms(), 3);
    }

    #[test]
    fn shortest_path_crosses_regions() {
        let space = SpaceBuilder::new("b")
            .add_access_point("wap1", &["a", "b"])
            .add_access_point("wap2", &["b", "c"])
            .add_access_point("wap3", &["c", "d"])
            .build()
            .unwrap();
        let adj = RoomAdjacency::from_coverage(&space);
        let a = space.room_id("a").unwrap();
        let d = space.room_id("d").unwrap();
        let path = adj.shortest_path(a, d).unwrap();
        assert_eq!(path.len(), 4); // a -> b -> c -> d
        assert_eq!(adj.distance(a, d), Some(3));
        assert_eq!(adj.distance(a, a), Some(0));
    }

    #[test]
    fn disconnected_rooms_have_no_path() {
        let space = SpaceBuilder::new("b")
            .add_access_point("wap1", &["a", "b"])
            .add_access_point("wap2", &["c", "d"])
            .build()
            .unwrap();
        let adj = RoomAdjacency::from_coverage(&space);
        let a = space.room_id("a").unwrap();
        let c = space.room_id("c").unwrap();
        assert_eq!(adj.shortest_path(a, c), None);
        assert_eq!(adj.distance(a, c), None);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut adj = RoomAdjacency::new(2);
        adj.connect(RoomId::new(0), RoomId::new(0));
        assert!(adj.neighbors(RoomId::new(0)).is_empty());
    }

    #[test]
    fn manual_edges_work() {
        let mut adj = RoomAdjacency::new(3);
        adj.connect(RoomId::new(0), RoomId::new(2));
        assert!(adj.are_adjacent(RoomId::new(0), RoomId::new(2)));
        assert!(adj.are_adjacent(RoomId::new(2), RoomId::new(0)));
        assert!(!adj.are_adjacent(RoomId::new(0), RoomId::new(1)));
    }
}
