//! The immutable space model: rooms, regions, access points and device metadata.

use crate::access_point::AccessPoint;
use crate::error::SpaceError;
use crate::ids::{AccessPointId, RegionId, RoomId};
use crate::region::Region;
use crate::room::Room;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An immutable description of one building: its rooms, the WiFi access points
/// deployed in it, the coverage region of each access point, and the device metadata
/// (preferred rooms) used by LOCATER's fine-grained localization.
///
/// Built through [`crate::SpaceBuilder`]. Cloning a `Space` is a deep copy; wrap it in
/// an `Arc` for sharing across engines (the event store does this internally).
///
/// Deserialization routes through the same constructor the builder uses, so
/// derived state (`room_regions`, the region-overlap matrix) is always
/// recomputed from the authoritative fields — a foreign or stale document can
/// never smuggle in an inconsistent matrix.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Space {
    name: String,
    rooms: Vec<Room>,
    room_names: HashMap<String, RoomId>,
    access_points: Vec<AccessPoint>,
    ap_names: HashMap<String, AccessPointId>,
    regions: Vec<Region>,
    /// For each room, the sorted list of regions whose coverage includes it.
    room_regions: Vec<Vec<RegionId>>,
    /// Row-major `num_regions × num_regions` overlap matrix: entry
    /// `a·n + b` is `true` iff regions `a` and `b` share a room. Derived in
    /// [`Space::from_parts`] (like `room_regions`), so region-overlap checks
    /// — the neighbor filter runs one per online device per query — are one
    /// indexed load instead of a room-list merge.
    region_overlap: Vec<bool>,
    /// Preferred rooms per device MAC address (`R_pf(d_i)` in the paper).
    preferred: HashMap<String, Vec<RoomId>>,
}

impl Deserialize for Space {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        /// The authoritative fields only; serialized derived fields
        /// (`room_regions`, `region_overlap`) are ignored and recomputed by
        /// [`Space::from_parts`].
        #[derive(Deserialize)]
        struct Parts {
            name: String,
            rooms: Vec<Room>,
            room_names: HashMap<String, RoomId>,
            access_points: Vec<AccessPoint>,
            ap_names: HashMap<String, AccessPointId>,
            regions: Vec<Region>,
            preferred: HashMap<String, Vec<RoomId>>,
        }
        let parts = Parts::from_value(v)?;
        Space::from_parts(
            parts.name,
            parts.rooms,
            parts.room_names,
            parts.access_points,
            parts.ap_names,
            parts.regions,
            parts.preferred,
        )
        .map_err(|err| serde::Error::custom(&err.to_string()))
    }
}

impl Space {
    pub(crate) fn from_parts(
        name: String,
        rooms: Vec<Room>,
        room_names: HashMap<String, RoomId>,
        access_points: Vec<AccessPoint>,
        ap_names: HashMap<String, AccessPointId>,
        regions: Vec<Region>,
        preferred: HashMap<String, Vec<RoomId>>,
    ) -> Result<Self, SpaceError> {
        if access_points.is_empty() {
            return Err(SpaceError::EmptySpace);
        }
        for (ap, region) in access_points.iter().zip(regions.iter()) {
            if region.is_empty() {
                return Err(SpaceError::EmptyCoverage(ap.name.clone()));
            }
        }
        let mut room_regions = vec![Vec::new(); rooms.len()];
        for region in &regions {
            for &room in &region.rooms {
                room_regions[room.index()].push(region.id);
            }
        }
        for regions_of_room in &mut room_regions {
            regions_of_room.sort_unstable();
            regions_of_room.dedup();
        }
        let n = regions.len();
        let mut region_overlap = vec![false; n * n];
        for regions_of_room in &room_regions {
            for &a in regions_of_room {
                for &b in regions_of_room {
                    region_overlap[a.index() * n + b.index()] = true;
                }
            }
        }
        for (idx, row) in region_overlap.chunks_mut(n).enumerate() {
            row[idx] = true; // a region always overlaps itself
        }
        Ok(Self {
            name,
            rooms,
            room_names,
            access_points,
            ap_names,
            regions,
            room_regions,
            region_overlap,
            preferred,
        })
    }

    /// Name of the building this space describes.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Serializes the full space — interned ids and all — to JSON.
    ///
    /// Unlike [`crate::SpaceMetadata`] (the human-editable, name-canonical
    /// form), this round-trips bit-for-bit: [`Space::from_json`] preserves
    /// every [`RoomId`]/[`AccessPointId`] assignment verbatim instead of
    /// re-interning names. Snapshots use it so stored per-event AP ids keep
    /// pointing at the same access points after a load.
    pub fn to_json(&self) -> Result<String, SpaceError> {
        serde_json::to_string(self).map_err(|e| SpaceError::Metadata(e.to_string()))
    }

    /// Parses a space serialized by [`Space::to_json`], preserving ids
    /// verbatim and recomputing only the derived indexes.
    pub fn from_json(json: &str) -> Result<Self, SpaceError> {
        serde_json::from_str(json).map_err(|e| SpaceError::Metadata(e.to_string()))
    }

    // ------------------------------------------------------------------
    // Rooms
    // ------------------------------------------------------------------

    /// Number of rooms in the building (`|R|`).
    pub fn num_rooms(&self) -> usize {
        self.rooms.len()
    }

    /// All rooms, indexable by [`RoomId::index`].
    pub fn rooms(&self) -> &[Room] {
        &self.rooms
    }

    /// Looks up a room id by name.
    pub fn room_id(&self, name: &str) -> Option<RoomId> {
        self.room_names.get(name).copied()
    }

    /// Returns the room with the given id.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this space.
    pub fn room(&self, id: RoomId) -> &Room {
        &self.rooms[id.index()]
    }

    /// `true` if the room is a public/shared space.
    pub fn is_public(&self, id: RoomId) -> bool {
        self.room(id).is_public()
    }

    /// Regions whose coverage includes `room`, sorted by id.
    pub fn regions_of_room(&self, room: RoomId) -> &[RegionId] {
        &self.room_regions[room.index()]
    }

    // ------------------------------------------------------------------
    // Access points / regions
    // ------------------------------------------------------------------

    /// Number of access points (and therefore regions) in the building (`|WAP| = |G|`).
    pub fn num_access_points(&self) -> usize {
        self.access_points.len()
    }

    /// Number of regions; always equal to [`Space::num_access_points`].
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// All access points, indexable by [`AccessPointId::index`].
    pub fn access_points(&self) -> &[AccessPoint] {
        &self.access_points
    }

    /// All regions, indexable by [`RegionId::index`].
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Looks up an access point id by name.
    pub fn ap_id(&self, name: &str) -> Option<AccessPointId> {
        self.ap_names.get(name).copied()
    }

    /// Returns the access point with the given id.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this space.
    pub fn access_point(&self, id: AccessPointId) -> &AccessPoint {
        &self.access_points[id.index()]
    }

    /// The region covered by access point `ap`.
    pub fn region_of_ap(&self, ap: AccessPointId) -> RegionId {
        ap.region()
    }

    /// The access point whose coverage defines region `region`.
    pub fn ap_of_region(&self, region: RegionId) -> AccessPointId {
        region.access_point()
    }

    /// Returns the region with the given id.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this space.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Rooms covered by `region` (`R(g_x)` in the paper), sorted by id.
    pub fn rooms_in_region(&self, region: RegionId) -> &[RoomId] {
        &self.regions[region.index()].rooms
    }

    /// `true` if the two regions share at least one room — one load from the
    /// precomputed overlap matrix.
    pub fn regions_overlap(&self, a: RegionId, b: RegionId) -> bool {
        self.region_overlap[a.index() * self.regions.len() + b.index()]
    }

    /// Intersection of the candidate-room sets of several regions (`R_is` in §4.1),
    /// sorted by id. Returns the rooms of the single region when `regions` has one
    /// element, and an empty vector when `regions` is empty.
    pub fn intersect_regions(&self, regions: &[RegionId]) -> Vec<RoomId> {
        let mut iter = regions.iter();
        let Some(&first) = iter.next() else {
            return Vec::new();
        };
        let mut acc: Vec<RoomId> = self.regions[first.index()].rooms.clone();
        for &next in iter {
            let other = &self.regions[next.index()];
            acc.retain(|room| other.covers(*room));
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Average number of rooms covered per access point (reported as ≈11 for the
    /// paper's Donald Bren Hall deployment).
    pub fn avg_rooms_per_ap(&self) -> f64 {
        if self.regions.is_empty() {
            return 0.0;
        }
        let total: usize = self.regions.iter().map(Region::len).sum();
        total as f64 / self.regions.len() as f64
    }

    // ------------------------------------------------------------------
    // Device metadata (preferred rooms)
    // ------------------------------------------------------------------

    /// Preferred rooms (`R_pf`) registered for a device MAC address. Empty if none.
    pub fn preferred_rooms(&self, mac: &str) -> &[RoomId] {
        self.preferred.get(mac).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The "metadata room" of a device: its first registered preferred room, used by
    /// the metadata fine-grained baseline (Fine-Baseline2 in §6.1).
    pub fn metadata_room(&self, mac: &str) -> Option<RoomId> {
        self.preferred_rooms(mac).first().copied()
    }

    /// All (mac, preferred rooms) pairs registered in the space metadata.
    pub fn preferred_map(&self) -> &HashMap<String, Vec<RoomId>> {
        &self.preferred
    }

    /// Partitions the candidate rooms of `region` for device `mac` into
    /// (preferred, public, private) room sets, in the precedence order used by the
    /// room-affinity weights of §4.1: a candidate room that is preferred counts as
    /// preferred even if it is public; a non-preferred public room counts as public;
    /// everything else is private.
    pub fn partition_candidates(
        &self,
        mac: &str,
        region: RegionId,
    ) -> (Vec<RoomId>, Vec<RoomId>, Vec<RoomId>) {
        let preferred = self.preferred_rooms(mac);
        let mut pf = Vec::new();
        let mut pb = Vec::new();
        let mut pr = Vec::new();
        for &room in self.rooms_in_region(region) {
            if preferred.contains(&room) {
                pf.push(room);
            } else if self.is_public(room) {
                pb.push(room);
            } else {
                pr.push(room);
            }
        }
        (pf, pb, pr)
    }

    /// Public rooms covered by `region`, in sorted order.
    pub fn public_rooms_in(&self, region: RegionId) -> Vec<RoomId> {
        self.rooms_in_region(region)
            .iter()
            .copied()
            .filter(|&r| self.is_public(r))
            .collect()
    }

    /// Counts rooms of each [`RoomType`](crate::room::RoomType): `(public, private)`.
    pub fn room_type_counts(&self) -> (usize, usize) {
        let public = self.rooms.iter().filter(|r| r.is_public()).count();
        (public, self.rooms.len() - public)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SpaceBuilder;
    use crate::room::RoomType;

    fn sample_space() -> Space {
        // Mirrors the motivating example of Fig. 1: four APs with overlapping coverage.
        SpaceBuilder::new("DBH-2F")
            .add_access_point("wap1", &["2002", "2004", "2019", "2026", "2028", "2032"])
            .add_access_point(
                "wap2",
                &["2004", "2057", "2059", "2061", "2064", "2066", "2068"],
            )
            .add_access_point(
                "wap3",
                &["2059", "2061", "2065", "2066", "2068", "2069", "2099"],
            )
            .add_access_point("wap4", &["2082", "2084", "2086", "2088", "2091", "2099"])
            .room_type("2065", RoomType::Public)
            .room_type("2004", RoomType::Public)
            .room_owner("2061", "d1")
            .preferred_room("d2", "2059")
            .build()
            .unwrap()
    }

    #[test]
    fn lookups_are_consistent() {
        let space = sample_space();
        assert_eq!(space.name(), "DBH-2F");
        assert_eq!(space.num_access_points(), 4);
        assert_eq!(space.num_regions(), 4);
        let wap3 = space.ap_id("wap3").unwrap();
        assert_eq!(space.access_point(wap3).name, "wap3");
        let g3 = space.region_of_ap(wap3);
        assert_eq!(space.ap_of_region(g3), wap3);
        assert_eq!(space.rooms_in_region(g3).len(), 7);
        assert!(space.room_id("2065").is_some());
        assert!(space.room_id("9999").is_none());
        assert!(space.ap_id("wap9").is_none());
    }

    #[test]
    fn overlap_and_intersection_follow_shared_rooms() {
        let space = sample_space();
        let g1 = space.ap_id("wap1").unwrap().region();
        let g2 = space.ap_id("wap2").unwrap().region();
        let g3 = space.ap_id("wap3").unwrap().region();
        let g4 = space.ap_id("wap4").unwrap().region();
        assert!(space.regions_overlap(g1, g2)); // share 2004
        assert!(space.regions_overlap(g2, g3)); // share 2059, 2061, 2066, 2068
        assert!(space.regions_overlap(g3, g4)); // share 2099
        assert!(!space.regions_overlap(g1, g3));
        assert!(space.regions_overlap(g2, g2));

        let both = space.intersect_regions(&[g2, g3]);
        let names: Vec<&str> = both.iter().map(|&r| space.room(r).name.as_str()).collect();
        assert_eq!(names, vec!["2059", "2061", "2066", "2068"]);

        assert!(space.intersect_regions(&[g1, g3]).is_empty());
        assert!(space.intersect_regions(&[]).is_empty());
        assert_eq!(
            space.intersect_regions(&[g4]),
            space.rooms_in_region(g4).to_vec()
        );
    }

    #[test]
    fn regions_of_room_reflect_coverage() {
        let space = sample_space();
        let r2059 = space.room_id("2059").unwrap();
        let regions = space.regions_of_room(r2059);
        assert_eq!(regions.len(), 2); // wap2 and wap3
        let r2002 = space.room_id("2002").unwrap();
        assert_eq!(space.regions_of_room(r2002).len(), 1);
    }

    #[test]
    fn preferred_rooms_and_partition() {
        let space = sample_space();
        let d1_pref = space.preferred_rooms("d1");
        assert_eq!(d1_pref.len(), 1);
        assert_eq!(space.room(d1_pref[0]).name, "2061");
        assert_eq!(space.metadata_room("d1"), Some(d1_pref[0]));
        assert!(space.preferred_rooms("unknown").is_empty());
        assert_eq!(space.metadata_room("unknown"), None);

        let g3 = space.ap_id("wap3").unwrap().region();
        let (pf, pb, pr) = space.partition_candidates("d1", g3);
        assert_eq!(pf.len(), 1); // 2061
        assert_eq!(pb.len(), 1); // 2065 (public)
        assert_eq!(pr.len(), 5); // the rest
        assert_eq!(
            pf.len() + pb.len() + pr.len(),
            space.rooms_in_region(g3).len()
        );
    }

    #[test]
    fn public_room_helpers() {
        let space = sample_space();
        let g3 = space.ap_id("wap3").unwrap().region();
        let publics = space.public_rooms_in(g3);
        assert_eq!(publics.len(), 1);
        assert_eq!(space.room(publics[0]).name, "2065");
        let (public, private) = space.room_type_counts();
        assert_eq!(public, 2);
        assert_eq!(public + private, space.num_rooms());
    }

    #[test]
    fn avg_rooms_per_ap_is_mean_of_coverage_sizes() {
        let space = sample_space();
        let expected = (6 + 7 + 7 + 6) as f64 / 4.0;
        assert!((space.avg_rooms_per_ap() - expected).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip_preserves_space() {
        let space = sample_space();
        let json = serde_json::to_string(&space).unwrap();
        let back: Space = serde_json::from_str(&json).unwrap();
        assert_eq!(space, back);
    }
}
