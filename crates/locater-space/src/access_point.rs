//! WiFi access points.

use crate::ids::{AccessPointId, RegionId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A WiFi access point (`wap_j ∈ WAP` in the paper).
///
/// Every access point defines exactly one coverage [`Region`](crate::Region); the set
/// of rooms it covers is stored on the region (see [`crate::Space::rooms_in_region`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessPoint {
    /// Dense identifier of the access point.
    pub id: AccessPointId,
    /// Name of the access point as it appears in the connectivity log, e.g. `"wap3"`
    /// or `"1200-ap-23"`. Unique within a space.
    pub name: String,
}

impl AccessPoint {
    /// Creates an access point.
    pub fn new(id: AccessPointId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
        }
    }

    /// The region covered by this access point.
    #[inline]
    pub fn region(&self) -> RegionId {
        self.id.region()
    }
}

impl fmt::Display for AccessPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_point_region_mapping_is_one_to_one() {
        let ap = AccessPoint::new(AccessPointId::new(3), "wap3");
        assert_eq!(ap.region(), RegionId::new(3));
        assert_eq!(ap.to_string(), "wap3");
    }
}
