//! Error type for space construction and lookups.

use std::fmt;

/// Errors produced while building or querying a [`crate::Space`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// A room name was used twice with conflicting definitions.
    DuplicateRoom(String),
    /// An access point name was registered twice.
    DuplicateAccessPoint(String),
    /// A referenced room does not exist.
    UnknownRoom(String),
    /// A referenced access point does not exist.
    UnknownAccessPoint(String),
    /// The space has no access points (and therefore no regions).
    EmptySpace,
    /// An access point covers no rooms, which would make fine localization impossible
    /// for devices connected to it.
    EmptyCoverage(String),
    /// Metadata (de)serialization failure.
    Metadata(String),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::DuplicateRoom(name) => write!(f, "duplicate room definition: {name}"),
            SpaceError::DuplicateAccessPoint(name) => {
                write!(f, "duplicate access point definition: {name}")
            }
            SpaceError::UnknownRoom(name) => write!(f, "unknown room: {name}"),
            SpaceError::UnknownAccessPoint(name) => write!(f, "unknown access point: {name}"),
            SpaceError::EmptySpace => write!(f, "space has no access points"),
            SpaceError::EmptyCoverage(name) => {
                write!(f, "access point {name} covers no rooms")
            }
            SpaceError::Metadata(msg) => write!(f, "space metadata error: {msg}"),
        }
    }
}

impl std::error::Error for SpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(SpaceError::DuplicateRoom("2065".into())
            .to_string()
            .contains("2065"));
        assert!(SpaceError::UnknownAccessPoint("wap9".into())
            .to_string()
            .contains("wap9"));
        assert_eq!(
            SpaceError::EmptySpace.to_string(),
            "space has no access points"
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        let err: Box<dyn std::error::Error> = Box::new(SpaceError::EmptySpace);
        assert!(err.source().is_none());
    }
}
