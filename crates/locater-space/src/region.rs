//! Coverage regions of access points.

use crate::ids::{AccessPointId, RegionId, RoomId};
use serde::{Deserialize, Serialize};

/// A region (`g_j ∈ G` in the paper): the area covered by the network connectivity of
/// one WiFi access point.
///
/// Regions partition the *region granularity* of the space model. They frequently
/// overlap: a room whose extent intersects the coverage of several APs belongs to all
/// of their regions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Dense identifier of the region.
    pub id: RegionId,
    /// The access point whose coverage defines this region.
    pub access_point: AccessPointId,
    /// Rooms covered by this region (`R(g_j)`), sorted by id and deduplicated.
    pub rooms: Vec<RoomId>,
}

impl Region {
    /// Creates a region for `access_point` covering `rooms` (sorted + deduplicated).
    pub fn new(access_point: AccessPointId, mut rooms: Vec<RoomId>) -> Self {
        rooms.sort_unstable();
        rooms.dedup();
        Self {
            id: access_point.region(),
            access_point,
            rooms,
        }
    }

    /// Number of rooms covered by the region.
    #[inline]
    pub fn len(&self) -> usize {
        self.rooms.len()
    }

    /// `true` if the region covers no rooms.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rooms.is_empty()
    }

    /// `true` if `room` is covered by this region. O(log n).
    pub fn covers(&self, room: RoomId) -> bool {
        self.rooms.binary_search(&room).is_ok()
    }

    /// Rooms covered by both `self` and `other`, in sorted order.
    pub fn intersection(&self, other: &Region) -> Vec<RoomId> {
        let (mut i, mut j) = (0usize, 0usize);
        let mut out = Vec::new();
        while i < self.rooms.len() && j < other.rooms.len() {
            match self.rooms[i].cmp(&other.rooms[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.rooms[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// `true` if the two regions share at least one room.
    pub fn overlaps(&self, other: &Region) -> bool {
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.rooms.len() && j < other.rooms.len() {
            match self.rooms[i].cmp(&other.rooms[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(ap: u32, rooms: &[u32]) -> Region {
        Region::new(
            AccessPointId::new(ap),
            rooms.iter().copied().map(RoomId::new).collect(),
        )
    }

    #[test]
    fn new_sorts_and_dedups_rooms() {
        let r = region(0, &[5, 1, 3, 1, 5]);
        assert_eq!(
            r.rooms,
            vec![RoomId::new(1), RoomId::new(3), RoomId::new(5)]
        );
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn covers_uses_binary_search() {
        let r = region(1, &[2, 4, 6, 8]);
        assert!(r.covers(RoomId::new(4)));
        assert!(!r.covers(RoomId::new(5)));
    }

    #[test]
    fn intersection_and_overlap() {
        let a = region(0, &[1, 2, 3, 4]);
        let b = region(1, &[3, 4, 5]);
        let c = region(2, &[7, 8]);
        assert_eq!(a.intersection(&b), vec![RoomId::new(3), RoomId::new(4)]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn empty_region_is_empty() {
        let r = region(0, &[]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
