//! Rooms and room metadata.

use crate::ids::RoomId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Classification of a room used by the fine-grained localization weights (paper §2).
///
/// * `Public` rooms (`R_pb`) are shared facilities — meeting rooms, lounges, kitchens,
///   food courts — accessible to many users, and receive the `w_pb` room-affinity
///   weight unless the room is one of the device's preferred rooms.
/// * `Private` rooms (`R_pr`) are restricted/owned spaces such as personal offices and
///   receive the lowest weight `w_pr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RoomType {
    /// Shared facility accessible to multiple users.
    Public,
    /// Room restricted to / owned by specific users.
    #[default]
    Private,
}

impl RoomType {
    /// `true` for [`RoomType::Public`].
    #[inline]
    pub const fn is_public(self) -> bool {
        matches!(self, RoomType::Public)
    }
}

impl fmt::Display for RoomType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoomType::Public => write!(f, "public"),
            RoomType::Private => write!(f, "private"),
        }
    }
}

/// A room of the building (`r_j ∈ R` in the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Room {
    /// Dense identifier of the room.
    pub id: RoomId,
    /// Human-readable room name, e.g. `"2065"` or `"kitchen-2"`. Unique within a space.
    pub name: String,
    /// Whether the room is a shared (public) or restricted (private) space.
    pub room_type: RoomType,
    /// MAC addresses of devices whose owner "owns" this room (e.g. the occupant of a
    /// personal office). Used as space metadata for preferred rooms and for the
    /// metadata-based fine baseline.
    pub owners: Vec<String>,
}

impl Room {
    /// Creates a new private, unowned room.
    pub fn new(id: RoomId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
            room_type: RoomType::Private,
            owners: Vec::new(),
        }
    }

    /// `true` if the room is a public/shared space.
    #[inline]
    pub fn is_public(&self) -> bool {
        self.room_type.is_public()
    }

    /// `true` if `mac` is registered as an owner of this room.
    pub fn is_owned_by(&self, mac: &str) -> bool {
        self.owners.iter().any(|m| m == mac)
    }
}

impl fmt::Display for Room {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.room_type)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_room_defaults_to_private_and_unowned() {
        let room = Room::new(RoomId::new(0), "2065");
        assert_eq!(room.room_type, RoomType::Private);
        assert!(!room.is_public());
        assert!(room.owners.is_empty());
        assert!(!room.is_owned_by("aa:bb:cc:dd:ee:ff"));
    }

    #[test]
    fn ownership_lookup_matches_exact_mac() {
        let mut room = Room::new(RoomId::new(1), "2061");
        room.owners.push("aa:bb:cc:dd:ee:01".to_string());
        assert!(room.is_owned_by("aa:bb:cc:dd:ee:01"));
        assert!(!room.is_owned_by("aa:bb:cc:dd:ee:02"));
    }

    #[test]
    fn room_type_display_and_default() {
        assert_eq!(RoomType::Public.to_string(), "public");
        assert_eq!(RoomType::Private.to_string(), "private");
        assert_eq!(RoomType::default(), RoomType::Private);
        assert!(RoomType::Public.is_public());
        assert!(!RoomType::Private.is_public());
    }

    #[test]
    fn room_display_includes_type() {
        let room = Room::new(RoomId::new(2), "lounge");
        assert_eq!(room.to_string(), "lounge (private)");
    }
}
