//! # locater-space
//!
//! The *space model* substrate of the LOCATER reproduction (paper §2, "Space Model").
//!
//! LOCATER localizes devices at three semantic granularities:
//!
//! * **Building** — inside (`b_in`) or outside (`b_out`) the building.
//! * **Region** — the area covered by the network connectivity of one WiFi access
//!   point. There is exactly one region per access point (`|G| = |WAP|`) and regions
//!   can (and usually do) overlap because several APs can cover the same room.
//! * **Room** — the finest granularity. A room can belong to several regions.
//!
//! Rooms carry metadata used by the fine-grained disambiguation step:
//!
//! * a [`RoomType`] — `Public` (conference rooms, lounges, kitchens, …) or `Private`
//!   (personal offices, restricted areas);
//! * optionally an *owner* and, per device, a set of *preferred rooms*
//!   (`R_pf(d)` in the paper) such as the office of a device's owner.
//!
//! The central type is [`Space`], an immutable, cheaply cloneable description of one
//! building, built through [`SpaceBuilder`]. All entities are interned to dense
//! integer ids ([`RoomId`], [`RegionId`], [`AccessPointId`]) so that the cleaning
//! algorithms never touch strings on their hot paths.
//!
//! ```
//! use locater_space::{SpaceBuilder, RoomType};
//!
//! let space = SpaceBuilder::new("DBH")
//!     .add_access_point("wap1", &["2002", "2004", "2019"])
//!     .add_access_point("wap2", &["2004", "2057", "2059", "2061"])
//!     .room_type("2004", RoomType::Public)
//!     .preferred_room("aa:bb:cc:00:00:01", "2061")
//!     .build()
//!     .unwrap();
//!
//! let wap2 = space.ap_id("wap2").unwrap();
//! let region = space.region_of_ap(wap2);
//! assert_eq!(space.rooms_in_region(region).len(), 4);
//! // room 2004 is covered by both APs, i.e. it belongs to two overlapping regions.
//! let r2004 = space.room_id("2004").unwrap();
//! assert_eq!(space.regions_of_room(r2004).len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access_point;
mod adjacency;
mod builder;
mod error;
mod ids;
mod metadata;
mod region;
mod room;
mod space;

pub use access_point::AccessPoint;
pub use adjacency::RoomAdjacency;
pub use builder::SpaceBuilder;
pub use error::SpaceError;
pub use ids::{AccessPointId, RegionId, RoomId};
pub use metadata::{SpaceMetadata, SpaceSummary};
pub use region::Region;
pub use room::{Room, RoomType};
pub use space::Space;
