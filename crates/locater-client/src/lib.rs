//! # locater-client — the resilient NDJSON TCP client
//!
//! A std-only client for the LOCATER wire protocol that survives the faults
//! a real network actually serves: dropped connections, stalled reads,
//! half-closes, and lost acks. Three mechanisms, composed:
//!
//! * **Reconnect** — a broken socket is dropped and re-dialed on the next
//!   attempt; the client never wedges on a dead stream.
//! * **Capped exponential backoff with seeded jitter** —
//!   [`BackoffPolicy`] yields a fully deterministic delay schedule: the
//!   envelope doubles from `base` up to `cap`, and each delay is jittered
//!   into `[envelope/2, envelope]` by a seeded PRNG, so the same seed
//!   reproduces the same schedule byte-for-byte (chaos tests depend on
//!   this) while distinct clients still decorrelate.
//! * **Idempotent retries** — only errors the server marks retryable
//!   ([`locater_proto::WireError::retryable`]) and transport failures are
//!   retried, and every ingest frame is stamped with a client-unique
//!   `request_id` *before* the first send, so a retry after a lost ack
//!   replays the original acknowledgement server-side instead of appending
//!   twice. Non-retryable errors surface immediately.
//!
//! ```no_run
//! use locater_client::{BackoffPolicy, ClientConfig, RetryClient};
//! use locater_proto::WireRequest;
//!
//! let mut client = RetryClient::new(ClientConfig {
//!     addr: "127.0.0.1:7474".into(),
//!     ..ClientConfig::default()
//! });
//! let pong = client.request(&WireRequest::Ping).unwrap();
//! println!("{pong:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use locater_proto::{decode_response, encode_request, WireError, WireRequest, WireResponse};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A capped exponential backoff schedule with seeded jitter.
///
/// Attempt `n` (0-based) has envelope `min(cap, base << n)`; the actual
/// delay is drawn uniformly from `[envelope/2, envelope]` by a counter-mode
/// PRNG keyed on `(seed, n)`. The schedule is a pure function of the policy:
/// no global state, no clock — the same policy yields the same delays
/// forever, which is what makes chaos runs reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-attempt envelope.
    pub base: Duration,
    /// Upper bound the envelope saturates at.
    pub cap: Duration,
    /// Jitter seed; equal seeds give byte-identical schedules.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(2),
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// The pre-jitter envelope for 0-based `attempt`: `min(cap, base << n)`,
    /// monotone non-decreasing in `attempt` and saturating at `cap`.
    pub fn envelope(&self, attempt: u32) -> Duration {
        let base = self.base.as_nanos();
        let cap = self.cap.as_nanos();
        let env = base
            .saturating_mul(1u128.checked_shl(attempt).unwrap_or(u128::MAX))
            .min(cap);
        duration_from_nanos(env)
    }

    /// The jittered delay before retrying after 0-based `attempt`, inside
    /// `[envelope/2, envelope]`. Deterministic per `(policy, attempt)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let env = self.envelope(attempt).as_nanos();
        let half = env / 2;
        let span = env - half;
        let r = mix(self.seed, u64::from(attempt)) as u128;
        let jittered = if span == 0 {
            env
        } else {
            half + r % (span + 1)
        };
        duration_from_nanos(jittered)
    }

    /// The first `attempts` delays as one schedule (for logging and tests).
    pub fn schedule(&self, attempts: u32) -> Vec<Duration> {
        (0..attempts).map(|n| self.delay(n)).collect()
    }
}

fn duration_from_nanos(nanos: u128) -> Duration {
    Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
}

/// SplitMix64: a counter-mode mixer — no sequential state, so delays can be
/// computed for any attempt independently and reproducibly.
fn mix(seed: u64, counter: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(counter.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tuning knobs for [`RetryClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// Server address, e.g. `127.0.0.1:7474`.
    pub addr: String,
    /// Budget for one attempt's response read (also the connect timeout).
    pub request_timeout: Duration,
    /// Retries after the first attempt; `0` means fail on the first error.
    pub max_retries: u32,
    /// Delay schedule between attempts.
    pub backoff: BackoffPolicy,
    /// Seed for the client-unique `request_id` stream stamped onto ingest
    /// frames. Distinct concurrent clients must use distinct seeds, or the
    /// server may dedup one client's ingest against another's and replay
    /// the wrong ack. [`Default`] draws a fresh random seed per config, so
    /// default-configured clients are safe out of the box; set it
    /// explicitly only for reproducible tests, with a distinct value per
    /// client.
    pub id_seed: u64,
}

/// A random seed for one client's `request_id` stream, from the standard
/// library's per-instance hasher entropy (no extra dependency): every call
/// yields a fresh value, so two default-configured clients — same process
/// or not — never share an id stream by accident.
fn random_id_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish()
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:7474".into(),
            request_timeout: Duration::from_secs(10),
            max_retries: 8,
            backoff: BackoffPolicy::default(),
            id_seed: random_id_seed(),
        }
    }
}

/// Why a [`RetryClient`] request ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// The server answered with an error it marks non-retryable (bad
    /// request, unknown device, …): retrying identical bytes cannot help.
    Server(WireError),
    /// Every attempt failed; the last failure is carried for diagnosis.
    RetriesExhausted {
        /// Attempts made (1 initial + retries).
        attempts: u32,
        /// The last attempt's failure, rendered.
        last: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Server(e) => write!(f, "server rejected the request: {e}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "gave up after {attempts} attempt(s); last failure: {last}"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Counters a chaos run asserts over (all attempts, not just failures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientStats {
    /// Send attempts, including first tries.
    pub attempts: u64,
    /// Attempts beyond the first for some request.
    pub retries: u64,
    /// Fresh TCP connections dialed.
    pub connects: u64,
    /// Requests that ultimately failed.
    pub failures: u64,
}

/// A reconnecting, retrying NDJSON client. One request in flight at a time
/// (retries must replay the same frame, so pipelining and retrying are at
/// odds); create several clients for concurrency.
#[derive(Debug)]
pub struct RetryClient {
    config: ClientConfig,
    conn: Option<BufReader<TcpStream>>,
    next_id: u64,
    stats: ClientStats,
}

impl RetryClient {
    /// Creates a client. Nothing is dialed until the first request.
    pub fn new(config: ClientConfig) -> Self {
        RetryClient {
            config,
            conn: None,
            next_id: 0,
            stats: ClientStats::default(),
        }
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The next client-unique idempotency token (a counter-mode hash of the
    /// configured `id_seed`, so concurrent clients with distinct seeds draw
    /// from disjoint-in-practice id streams).
    fn fresh_request_id(&mut self) -> u64 {
        let id = mix(self.config.id_seed ^ 0x1D_C0DE, self.next_id);
        self.next_id += 1;
        id
    }

    /// Stamps an idempotency token onto ingest frames that lack one, so
    /// every retry of this request replays the *same* id. Other request
    /// kinds pass through: they are read-only or idempotent by nature.
    fn stamped(&mut self, request: &WireRequest) -> WireRequest {
        let mut request = request.clone();
        match &mut request {
            WireRequest::Ingest { request_id, .. }
            | WireRequest::IngestBatch { request_id, .. }
                if request_id.is_none() =>
            {
                *request_id = Some(self.fresh_request_id());
            }
            _ => {}
        }
        request
    }

    /// Sends one request, retrying transport failures and retryable server
    /// errors with the configured backoff, reconnecting as needed. Ingest
    /// frames are stamped with a request id before the first send, so a
    /// retry that crosses a reconnect cannot double-apply.
    pub fn request(&mut self, request: &WireRequest) -> Result<WireResponse, ClientError> {
        let request = self.stamped(request);
        let frame = {
            let mut line = encode_request(&request);
            line.push('\n');
            line
        };
        let attempts = self.config.max_retries.saturating_add(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                std::thread::sleep(self.config.backoff.delay(attempt - 1));
            }
            self.stats.attempts += 1;
            match self.attempt(&frame) {
                Ok(WireResponse::Error(e)) if e.retryable() => {
                    // The server may be draining or mid-recovery: the frame
                    // was not applied (or its replay is deduped), try again.
                    self.conn = None;
                    last = format!("retryable server error: {e}");
                }
                Ok(response) => {
                    if let WireResponse::Error(e) = response {
                        self.stats.failures += 1;
                        return Err(ClientError::Server(e));
                    }
                    return Ok(response);
                }
                Err(e) => {
                    self.conn = None;
                    last = format!("transport failure: {e}");
                }
            }
        }
        self.stats.failures += 1;
        Err(ClientError::RetriesExhausted { attempts, last })
    }

    /// One write+read over the current (or a fresh) connection.
    fn attempt(&mut self, frame: &str) -> std::io::Result<WireResponse> {
        if self.conn.is_none() {
            self.conn = Some(self.dial()?);
        }
        let reader = self.conn.as_mut().expect("connection just ensured");
        reader.get_mut().write_all(frame.as_bytes())?;
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            ));
        }
        decode_response(line.trim_end())
            .map_err(|e| std::io::Error::other(format!("undecodable response frame: {e}")))
    }

    fn dial(&mut self) -> std::io::Result<BufReader<TcpStream>> {
        let timeout = self.config.request_timeout;
        let mut last =
            std::io::Error::other(format!("no address resolved for {}", self.config.addr));
        for addr in self.config.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(Some(timeout))?;
                    stream.set_write_timeout(Some(timeout))?;
                    self.stats.connects += 1;
                    return Ok(BufReader::new(stream));
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    #[test]
    fn envelope_doubles_and_saturates_at_the_cap() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            seed: 7,
        };
        let envelopes: Vec<u64> = (0..8)
            .map(|n| policy.envelope(n).as_millis() as u64)
            .collect();
        assert_eq!(envelopes, vec![10, 20, 40, 80, 100, 100, 100, 100]);
    }

    #[test]
    fn delays_are_jittered_within_bounds_and_seed_deterministic() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(8),
            cap: Duration::from_secs(1),
            seed: 42,
        };
        for n in 0..20 {
            let env = policy.envelope(n);
            let delay = policy.delay(n);
            assert!(delay <= env, "attempt {n}: {delay:?} > envelope {env:?}");
            assert!(delay >= env / 2, "attempt {n}: {delay:?} < half envelope");
        }
        assert_eq!(policy.schedule(32), policy.schedule(32));
        let other = BackoffPolicy { seed: 43, ..policy };
        assert_ne!(policy.schedule(32), other.schedule(32), "seeds decorrelate");
    }

    #[test]
    fn ingest_frames_are_stamped_once_and_ids_never_repeat() {
        let mut client = RetryClient::new(ClientConfig::default());
        let bare = WireRequest::Ingest {
            mac: "aa".into(),
            t: 1,
            ap: "wap1".into(),
            request_id: None,
        };
        let WireRequest::Ingest {
            request_id: Some(first),
            ..
        } = client.stamped(&bare)
        else {
            panic!("ingest must be stamped");
        };
        let WireRequest::Ingest {
            request_id: Some(second),
            ..
        } = client.stamped(&bare)
        else {
            panic!("ingest must be stamped");
        };
        assert_ne!(first, second);
        // A caller-chosen id is preserved, not overwritten.
        let chosen = WireRequest::Ingest {
            mac: "aa".into(),
            t: 1,
            ap: "wap1".into(),
            request_id: Some(77),
        };
        assert_eq!(client.stamped(&chosen), chosen);
        // Ping is never stamped.
        assert_eq!(client.stamped(&WireRequest::Ping), WireRequest::Ping);
    }

    #[test]
    fn default_configured_clients_draw_disjoint_id_streams() {
        // Each default config gets its own random seed, so two clients that
        // never chose one still stamp different ids — the server must not
        // dedup one client's ingest against another's.
        let first = ClientConfig::default();
        let second = ClientConfig::default();
        assert_ne!(first.id_seed, second.id_seed, "seeds are per-instance");
        let bare = WireRequest::Ingest {
            mac: "aa".into(),
            t: 1,
            ap: "wap1".into(),
            request_id: None,
        };
        let (mut a, mut b) = (RetryClient::new(first), RetryClient::new(second));
        let (
            WireRequest::Ingest {
                request_id: ida, ..
            },
            WireRequest::Ingest {
                request_id: idb, ..
            },
        ) = (a.stamped(&bare), b.stamped(&bare))
        else {
            panic!("ingest must be stamped");
        };
        assert_ne!(ida, idb);
    }

    /// A misbehaving one-shot server: slams the first connection shut before
    /// answering, then serves pongs. The client must reconnect and succeed.
    #[test]
    fn reconnects_after_a_slammed_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (first, _) = listener.accept().unwrap();
            drop(first); // RST/EOF before any response
            let (second, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(second.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut stream = second;
            let mut pong = locater_proto::encode_response(&WireResponse::Pong {
                version: locater_proto::PROTOCOL_VERSION,
            });
            pong.push('\n');
            stream.write_all(pong.as_bytes()).unwrap();
        });
        let mut client = RetryClient::new(ClientConfig {
            addr: addr.to_string(),
            request_timeout: Duration::from_secs(5),
            max_retries: 3,
            backoff: BackoffPolicy {
                base: Duration::from_millis(1),
                cap: Duration::from_millis(10),
                seed: 1,
            },
            id_seed: 1,
        });
        let response = client.request(&WireRequest::Ping).unwrap();
        assert!(matches!(response, WireResponse::Pong { .. }));
        let stats = client.stats();
        assert!(stats.retries >= 1, "stats: {stats:?}");
        assert!(stats.connects >= 2, "stats: {stats:?}");
        server.join().unwrap();
    }

    /// Non-retryable server errors surface immediately, without retries.
    #[test]
    fn non_retryable_errors_are_not_retried() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut stream = stream;
            let mut frame =
                locater_proto::encode_response(&WireResponse::Error(WireError::UnknownDevice {
                    mac: "ghost".into(),
                }));
            frame.push('\n');
            stream.write_all(frame.as_bytes()).unwrap();
        });
        let mut client = RetryClient::new(ClientConfig {
            addr: addr.to_string(),
            request_timeout: Duration::from_secs(5),
            max_retries: 5,
            ..ClientConfig::default()
        });
        let err = client.request(&WireRequest::Ping).unwrap_err();
        assert!(matches!(
            err,
            ClientError::Server(WireError::UnknownDevice { .. })
        ));
        assert_eq!(client.stats().attempts, 1, "no retry on non-retryable");
        server.join().unwrap();
    }
}
