//! Room-level exposure analysis ("who shared a room with the index case?") — the
//! COVID-19 use case the paper's introduction calls out: determining possible contacts
//! of an infected individual from data the WiFi network already collects, with no app
//! installs and no extra hardware.
//!
//! Run with: `cargo run --release --example contact_tracing`

use locater::prelude::*;
use std::collections::BTreeMap;

fn main() {
    // 1. Simulate a university building for two weeks.
    let config = locater::sim::ScenarioConfig::new(ScenarioKind::University)
        .with_days(14)
        .with_scale(0.35)
        .with_seed(3);
    let output = Simulator::new(5).run_scenario(&config);
    let store = output.build_store();
    println!(
        "university dataset: {} events from {} devices",
        store.num_events(),
        store.num_devices()
    );

    // D-FINE is requested per query through the request layer; the service
    // itself keeps the default (I-FINE) configuration.
    let space = store.space().clone();
    let service = LocaterService::new(store, LocaterConfig::default());
    let dependent =
        |mac: &str, t| LocateRequest::by_mac(mac, t).with_fine_mode(FineMode::Dependent);

    // 2. The index case and the exposure day: the monitored person who spent the most
    //    time in the building on day 10 (ties broken toward students, who move through
    //    shared spaces — library, lounges, lecture halls — where exposure happens).
    let day = 10;
    let day_window = locater::events::Interval::new(
        locater::events::clock::at(day, 0, 0, 0),
        locater::events::clock::at(day + 1, 0, 0, 0),
    );
    let index_case = output
        .monitored()
        .max_by_key(|p| {
            let inside: i64 = output
                .ground_truth
                .stays_of(&p.mac)
                .iter()
                .map(|s| s.interval.overlap_duration(&day_window))
                .sum();
            (inside, p.profile == "Undergraduate")
        })
        .expect("monitored people exist");
    println!(
        "\nindex case: {} ({}), exposure window: day {day} 08:00–20:00, probe every 15 minutes",
        index_case.mac, index_case.profile
    );

    // 3. Sweep the day: wherever LOCATER places the index case in a room, ask it where
    //    every other device is and accumulate shared-room minutes.
    let all_devices: Vec<String> = output.people.iter().map(|p| p.mac.clone()).collect();
    let mut exposure_minutes: BTreeMap<String, i64> = BTreeMap::new();
    let mut rooms_visited: BTreeMap<String, i64> = BTreeMap::new();
    let probe_minutes = 15;
    for probe in 0..(12 * 60 / probe_minutes) {
        let t = locater::events::clock::at(day, 8, probe * probe_minutes, 0);
        let Ok(index_response) = service.locate(&dependent(&index_case.mac, t)) else {
            continue;
        };
        let Some(index_room) = index_response.answer.room() else {
            continue; // outside or region-only: no room-level exposure
        };
        *rooms_visited
            .entry(space.room(index_room).name.clone())
            .or_insert(0) += probe_minutes;
        for other in &all_devices {
            if other == &index_case.mac {
                continue;
            }
            if let Ok(response) = service.locate(&dependent(other, t)) {
                if response.answer.room() == Some(index_room) {
                    *exposure_minutes.entry(other.clone()).or_insert(0) += probe_minutes;
                }
            }
        }
    }

    // 4. Report: where the index case spent the day, and the ranked exposure list.
    println!("\nrooms the index case was placed in:");
    for (room, minutes) in &rooms_visited {
        println!("  {room}: {minutes} min");
    }

    let mut ranked: Vec<(&String, &i64)> = exposure_minutes.iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    println!("\ndevices with at least 15 minutes of shared-room exposure:");
    let mut alerts = 0;
    for (mac, minutes) in &ranked {
        if **minutes >= 15 {
            let profile = output
                .person(mac)
                .map(|p| p.profile.as_str())
                .unwrap_or("unknown");
            println!("  {mac} ({profile}): {minutes} min");
            alerts += 1;
        }
    }
    if alerts == 0 {
        println!("  (none — the index case mostly had rooms to themselves)");
    }
    println!(
        "\n{} of {} candidate devices would receive an exposure notification",
        alerts,
        ranked.len()
    );
}
