//! Reconstructing one person's day on a DBH-like campus building and scoring the
//! reconstruction against ground truth — the paper's core evaluation loop in miniature
//! (§6.1–6.2).
//!
//! Run with: `cargo run --release --example campus_day`

use locater::core::metrics::{PrecisionCounts, TruthLocation};
use locater::prelude::*;

fn main() {
    // 1. Generate a campus dataset with a monitored ground-truth panel.
    let config = CampusConfig {
        access_points: 10,
        population: 48,
        monitored: 10,
        weeks: 6,
        ..CampusConfig::default()
    };
    let output = Simulator::new(11).run_campus(&config);
    let store = output.build_store();
    println!(
        "campus dataset: {} events, {} devices, {} monitored people, {} weeks",
        store.num_events(),
        store.num_devices(),
        output.monitored().count(),
        config.weeks
    );

    let space = store.space().clone();
    let service = LocaterService::new(store, LocaterConfig::default());

    // 2. Pick the most predictable monitored person and replay their last Thursday.
    let person = output
        .monitored()
        .max_by(|a, b| {
            a.measured_predictability
                .partial_cmp(&b.measured_predictability)
                .unwrap()
        })
        .expect("monitored panel is not empty");
    println!(
        "\nreconstructing the day of {} (profile {}, predictability {:.0}%, band {})",
        person.mac,
        person.profile,
        person.measured_predictability * 100.0,
        person.group
    );

    let day = config.weeks * 7 - 4; // the last Thursday of the dataset
    let mut counts = PrecisionCounts::new();
    println!("{:>6} | {:<22} | {:<22}", "time", "LOCATER", "ground truth");
    println!("{}", "-".repeat(58));
    for half_hour in 0..28 {
        let t = locater::events::clock::at(day, 7, half_hour * 30, 0);
        let predicted = service
            .locate(&LocateRequest::by_mac(&person.mac, t))
            .map(|r| r.answer.location)
            .unwrap_or(locater::core::system::Location::Outside);
        let truth_room = output.ground_truth.room_at(&person.mac, t);
        let truth = match truth_room {
            Some(room) => TruthLocation::Room(room),
            None => TruthLocation::Outside,
        };
        counts.record(&space, truth, &predicted);

        let predicted_text = match (predicted.room(), predicted.is_inside()) {
            (Some(room), _) => format!("room {}", space.room(room).name),
            (None, true) => "inside (region only)".to_string(),
            (None, false) => "outside".to_string(),
        };
        let truth_text = match truth_room {
            Some(room) => format!("room {}", space.room(room).name),
            None => "outside".to_string(),
        };
        let sod = locater::events::clock::seconds_of_day(t);
        println!(
            "{:>6} | {:<22} | {:<22}",
            format!("{:02}:{:02}", sod / 3600, (sod % 3600) / 60),
            predicted_text,
            truth_text
        );
    }

    // 3. Score the reconstruction with the paper's metrics.
    let (pc, pf, po) = counts.as_percentages();
    println!(
        "\nday reconstruction precision: Pc = {pc:.1}%, Pf = {pf:.1}%, Po = {po:.1}% over {} probes",
        counts.queries
    );
}
