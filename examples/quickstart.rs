//! Quickstart: the motivating example of the paper (Fig. 1) end to end.
//!
//! A small floor with four WiFi access points whose coverage areas overlap, a handful
//! of devices producing sporadic association events, and LOCATER answering
//! "where was device X at time T?" at room granularity — including for a time that
//! falls in a *gap* of the device's log, where the cleaning engine has to repair the
//! missing value first.
//!
//! Run with: `cargo run --example quickstart`

use locater::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Space metadata (paper §2 / Fig. 1a): four APs covering overlapping sets of
    //    rooms on the second floor of "DBH". Room 2065 is a shared conference room,
    //    2061 is the office of the person carrying device 7fbh.
    // ------------------------------------------------------------------
    let space = SpaceBuilder::new("DBH-2F")
        .add_access_point("wap1", &["2002", "2004", "2019", "2026", "2028", "2032"])
        .add_access_point(
            "wap2",
            &["2004", "2057", "2059", "2061", "2064", "2066", "2068"],
        )
        .add_access_point(
            "wap3",
            &["2059", "2061", "2065", "2066", "2068", "2069", "2099"],
        )
        .add_access_point("wap4", &["2082", "2084", "2086", "2088", "2091", "2099"])
        .room_type("2065", RoomType::Public)
        .room_type("2004", RoomType::Public)
        .room_owner("2061", "7fbh")
        .room_owner("2059", "3ndb")
        .build()
        .expect("valid space metadata");
    println!(
        "space: {} access points, {} rooms ({:.1} rooms per AP on average)",
        space.num_access_points(),
        space.num_rooms(),
        space.avg_rooms_per_ap()
    );

    // ------------------------------------------------------------------
    // 2. Raw connectivity events (paper Fig. 1b): sporadic ⟨mac, time, ap⟩ tuples.
    //    Device 7fbh connects to wap3 at 13:04:35 and then not again until 13:18:11 —
    //    the gap of Fig. 1c.
    // ------------------------------------------------------------------
    let day = 3; // a Thursday
    let at = |h: i64, m: i64, s: i64| locater::events::clock::at(day, h, m, s);

    // The service starts over an *empty* store and ingests the live event
    // stream as it arrives — the always-on regime the paper's service framing
    // targets.
    let service = LocaterService::new(EventStore::new(space.clone()), LocaterConfig::default());
    let events = [
        ("7fbh", at(12, 45, 2), "wap3"),
        ("7fbh", at(13, 4, 35), "wap3"),
        ("3ndb", at(13, 5, 17), "wap3"),
        ("dj8c", at(13, 5, 39), "wap3"),
        ("ws7m", at(13, 9, 11), "wap2"),
    ];
    for (mac, t, ap) in events {
        service.ingest(mac, t, ap).expect("event ingests");
    }
    println!(
        "ingested {} events from {} devices",
        service.num_events(),
        service.num_devices()
    );

    // 7fbh is a chatty laptop whose events are only trusted for ±2 minutes, so the
    // stretch after its 13:04:35 event is a genuine hole in its log — the missing
    // value of Fig. 1(c) that the coarse cleaning step has to repair.
    let laptop = service
        .with_store(|s| s.device_id("7fbh"))
        .expect("device was ingested");
    service.set_delta(laptop, 120);

    // ------------------------------------------------------------------
    // 3. Ask LOCATER where device 7fbh was at 13:10. The device has not been
    //    seen since 13:04:35, so with nothing after the query time the service
    //    can only answer from the observed span.
    // ------------------------------------------------------------------
    let query_time = at(13, 10, 0);
    let before = service
        .locate(&LocateRequest::by_mac("7fbh", query_time))
        .expect("device exists in the log");
    println!(
        "\nquery: where was 7fbh at {}?",
        locater::events::clock::format_timestamp(query_time)
    );
    describe_answer(&space, &before.answer);

    // ------------------------------------------------------------------
    // 4. The laptop reconnects at 13:18:11 (Fig. 1b's last 7fbh event). The
    //    ingest bumps the device's epoch — invalidating exactly the cached
    //    state derived from its history — and the *same* query now falls in a
    //    closed gap that the cleaning engine classifies properly.
    // ------------------------------------------------------------------
    service.ingest("7fbh", at(13, 18, 11), "wap3").unwrap();
    service.ingest("34sd", at(13, 20, 14), "wap1").unwrap();
    let after = service
        .locate(&LocateRequest::by_mac("7fbh", query_time))
        .expect("device exists in the log");
    println!(
        "\nafter the 13:18:11 event arrived (device epoch {} -> {}):",
        before.device_epoch, after.device_epoch
    );
    describe_answer(&space, &after.answer);

    // A query at a covered instant needs no cleaning at all.
    let covered = service
        .locate(&LocateRequest::by_mac("7fbh", at(13, 5, 40)))
        .expect("device exists");
    println!(
        "at 13:05:40 (covered by an event) the device is in room {}",
        space
            .room(covered.answer.room().expect("room-level answer"))
            .name
    );

    // And a query long after the last event is answered as outside.
    let outside = service
        .locate(&LocateRequest::by_mac("7fbh", at(23, 30, 0)))
        .expect("device exists");
    println!(
        "at 23:30 the device is {}",
        if outside.answer.is_outside() {
            "outside the building"
        } else {
            "still inside"
        }
    );
}

/// Prints one answer at whatever granularity it was resolved to.
fn describe_answer(space: &Space, answer: &Answer) {
    match (answer.is_inside(), answer.region(), answer.room()) {
        (false, _, _) => println!("answer: outside the building"),
        (true, Some(region), Some(room)) => {
            println!(
                "answer: inside, region {} (AP {}), room {} — decided by {:?} with confidence {:.2}",
                region,
                space.access_point(space.ap_of_region(region)).name,
                space.room(room).name,
                answer.coarse_method,
                answer.confidence,
            );
        }
        (true, region, room) => println!("answer: inside ({region:?}, {room:?})"),
    }
}
