//! Building-occupancy analysis for HVAC control — one of the applications the paper's
//! introduction motivates.
//!
//! The example simulates an office building for two weeks, then uses LOCATER to
//! estimate how many people are in each *region* (AP coverage area) at every hour of a
//! workday. Facility systems drive ventilation per zone from exactly this kind of
//! aggregate, and it only works if localization is passive (no app installs) — which
//! is LOCATER's selling point.
//!
//! Run with: `cargo run --release --example office_occupancy`

use locater::prelude::*;
use std::collections::BTreeMap;

fn main() {
    // 1. Synthetic office dataset (SmartBench-style scenario of paper §6.3).
    let config = locater::sim::ScenarioConfig::new(ScenarioKind::Office)
        .with_days(14)
        .with_scale(0.4)
        .with_seed(42);
    let output = Simulator::new(7).run_scenario(&config);
    let store = output.build_store();
    println!(
        "simulated {}: {} events from {} devices over {} days",
        ScenarioKind::Office,
        store.num_events(),
        store.num_devices(),
        output.days
    );

    // 2. A live LOCATER service over the dataset (an HVAC deployment keeps
    //    ingesting events; here the dataset is static for reproducibility).
    let space = store.space().clone();
    let service = LocaterService::new(store, LocaterConfig::default());

    // 3. Occupancy per region for every hour of the second Wednesday (day 9),
    //    each hour answered as one deterministic batch through the typed
    //    request layer.
    let day = 9;
    let devices: Vec<String> = output.people.iter().map(|p| p.mac.clone()).collect();
    println!("\nestimated occupancy per region (day {day}, hourly):");
    print!("{:>5}", "hour");
    for region_idx in 0..space.num_regions() {
        print!("{:>7}", format!("g{region_idx}"));
    }
    println!("{:>9}", "outside");

    let jobs = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut daily_peak: BTreeMap<u32, usize> = BTreeMap::new();
    for hour in 7..20 {
        let t = locater::events::clock::at(day, hour, 30, 0);
        let requests: Vec<LocateRequest> = devices
            .iter()
            .map(|mac| LocateRequest::by_mac(mac, t))
            .collect();
        let mut per_region: BTreeMap<u32, usize> = BTreeMap::new();
        let mut outside = 0usize;
        for response in service.locate_batch(&requests, jobs) {
            match response {
                Ok(response) => match response.answer.region() {
                    Some(region) => *per_region.entry(region.raw()).or_insert(0) += 1,
                    None => outside += 1,
                },
                Err(_) => outside += 1, // device never appeared in the log
            }
        }
        print!("{:>5}", format!("{hour}:30"));
        for region_idx in 0..space.num_regions() as u32 {
            let count = per_region.get(&region_idx).copied().unwrap_or(0);
            print!("{count:>7}");
            let peak = daily_peak.entry(region_idx).or_insert(0);
            *peak = (*peak).max(count);
        }
        println!("{outside:>9}");
    }

    // 4. A zone-level summary an HVAC controller would consume.
    println!("\npeak occupancy per zone (sizing input for ventilation):");
    for (region_idx, peak) in daily_peak {
        let region = RegionId::new(region_idx);
        let ap = space.access_point(space.ap_of_region(region));
        println!(
            "  zone {region} (AP {}, {} rooms): peak {} people",
            ap.name,
            space.rooms_in_region(region).len(),
            peak
        );
    }
}
