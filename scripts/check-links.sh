#!/usr/bin/env bash
# Offline markdown link check: every *relative* link in README.md and docs/
# must resolve to an existing file (anchors are stripped; http(s)/mailto links
# are skipped — CI has no network). Run from the repository root:
#
#   scripts/check-links.sh
#
# Exits non-zero listing every broken link.
set -u

fail=0
files=$(ls README.md 2>/dev/null; find docs -name '*.md' 2>/dev/null | sort)

for file in $files; do
    dir=$(dirname "$file")
    # Inline links: [text](target). Multiple links per line are handled by
    # splitting on ')(' boundaries first.
    links=$(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/.*](\([^)]*\))/\1/')
    for link in $links; do
        case "$link" in
            http://*|https://*|mailto:*) continue ;;   # external: not checked offline
            '#'*) continue ;;                          # same-file anchor
        esac
        target=${link%%#*}
        [ -z "$target" ] && continue
        # Resolve strictly relative to the linking file's directory — that is
        # how GitHub and rendered docs resolve it; a repo-root fallback would
        # green-light links that 404 when rendered.
        if [ ! -e "$dir/$target" ]; then
            echo "BROKEN: $file -> $link"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "markdown link check failed" >&2
    exit 1
fi
echo "markdown link check: all relative links in README.md + docs/ resolve"
