#!/usr/bin/env bash
# Runs the affinity_index bench at full metro_campus scale (override with
# LOCATER_METRO_SCALE / LOCATER_METRO_WEEKS) and refreshes BENCH_5.json — the
# machine-readable perf-trajectory record for this PR series. With
# LOCATER_BENCH_GUARD=1 (the default here, and what CI sets) the bench fails
# if the index-backed path is not faster than the scan path it replaces.
set -euo pipefail
cd "$(dirname "$0")/.."

# Resolve the output override to an absolute path: the bench binary runs with
# its package directory as cwd, so a relative override would land there.
out="$(pwd)/${LOCATER_BENCH_JSON:-BENCH_5.json}"
case "${LOCATER_BENCH_JSON:-}" in
  /*) out="${LOCATER_BENCH_JSON}" ;;
esac

export LOCATER_BENCH_GUARD="${LOCATER_BENCH_GUARD:-1}"
LOCATER_BENCH_JSON="${out}" cargo bench --bench affinity_index
echo
echo "== ${out} =="
cat "${out}"
