#!/usr/bin/env bash
# Refreshes the machine-readable perf-trajectory records for this PR series:
#
#   BENCH_5.json — affinity_index bench at full metro_campus scale (override
#     with LOCATER_METRO_SCALE / LOCATER_METRO_WEEKS). With
#     LOCATER_BENCH_GUARD=1 (the default here, and what CI sets) the bench
#     fails if the index-backed path is not faster than the scan it replaces.
#   BENCH_6.json — locater-load serving benchmark: closed- and open-loop
#     clients over TCP against an in-process server at shard counts {1, 4},
#     reporting p50/p99/p999 latency and throughput for ingest and locate.
#   BENCH_7.json — wal_replay recovery benchmark: checkpoint + WAL-tail
#     replay vs cold CSV replay on the same corpus. With
#     LOCATER_BENCH_GUARD=1 the bench fails if recovery is not faster than
#     the cold replay it replaces.
set -euo pipefail
cd "$(dirname "$0")/.."

# Resolve the output override to an absolute path: the bench binary runs with
# its package directory as cwd, so a relative override would land there.
out="$(pwd)/${LOCATER_BENCH_JSON:-BENCH_5.json}"
case "${LOCATER_BENCH_JSON:-}" in
  /*) out="${LOCATER_BENCH_JSON}" ;;
esac

export LOCATER_BENCH_GUARD="${LOCATER_BENCH_GUARD:-1}"
LOCATER_BENCH_JSON="${out}" cargo bench --bench affinity_index
echo
echo "== ${out} =="
cat "${out}"

out6="$(pwd)/${LOCATER_LOAD_JSON:-BENCH_6.json}"
case "${LOCATER_LOAD_JSON:-}" in
  /*) out6="${LOCATER_LOAD_JSON}" ;;
esac

cargo run --release -p locater-bench --bin locater-load -- \
  --self-host --shards 1,4 --out "${out6}"
echo
echo "== ${out6} =="
cat "${out6}"

out7="$(pwd)/${LOCATER_WAL_BENCH_JSON:-BENCH_7.json}"
case "${LOCATER_WAL_BENCH_JSON:-}" in
  /*) out7="${LOCATER_WAL_BENCH_JSON}" ;;
esac

LOCATER_WAL_BENCH_JSON="${out7}" cargo bench --bench wal_replay
echo
echo "== ${out7} =="
cat "${out7}"
