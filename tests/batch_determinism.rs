//! Determinism of the parallel batch-cleaning pipeline: `locate_batch` must
//! produce identical `Location` outputs for every job count on a simulated
//! campus workload.
//!
//! The default workload is the acceptance size (50k queries, ~15s in debug
//! mode); `LOCATER_DETERMINISM_QUERIES` scales it up or down.

use locater::prelude::*;
use locater::sim::generated_workload;

fn workload_size() -> usize {
    std::env::var("LOCATER_DETERMINISM_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000)
}

/// Builds the campus store and a uniform query workload over it.
fn campus_workload(queries: usize) -> (EventStore, Vec<Query>) {
    let config = CampusConfig {
        weeks: 4,
        population: 48,
        visitors: 12,
        monitored: 12,
        access_points: 8,
        ..CampusConfig::default()
    };
    let output = Simulator::new(0xBA7C4).run_campus(&config);
    let mut store = output.build_store();
    store.estimate_deltas();
    let workload = generated_workload(&output, queries, 0xBA7C4);
    let queries: Vec<Query> = workload
        .queries
        .iter()
        .map(|q| Query::by_mac(&q.mac, q.t))
        .collect();
    (store, queries)
}

#[test]
fn locate_batch_is_deterministic_across_jobs_on_campus_workload() {
    let size = workload_size();
    let (store, queries) = campus_workload(size);
    assert!(
        queries.len() >= size,
        "workload generator produced too few queries"
    );

    let baseline = Locater::new(store.clone(), LocaterConfig::default());
    let sequential = baseline.locate_batch(&queries, 1);
    assert_eq!(sequential.len(), queries.len());

    for jobs in [8] {
        let locater = Locater::new(store.clone(), LocaterConfig::default());
        let parallel = locater.locate_batch(&queries, jobs);
        assert_eq!(sequential.len(), parallel.len());
        for (idx, (a, b)) in sequential.iter().zip(&parallel).enumerate() {
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.location, b.location,
                        "query {idx}: location diverged between jobs=1 and jobs={jobs}"
                    );
                    assert_eq!(a, b, "query {idx}: answer diverged (jobs={jobs})");
                }
                (a, b) => assert_eq!(a, b, "query {idx}: outcome diverged (jobs={jobs})"),
            }
        }
    }
}

#[test]
fn request_layer_batch_is_deterministic_and_matches_legacy() {
    // The typed request/response layer routes through the same sharded
    // pipeline: responses must be identical for every job count, and equal to
    // the legacy `Locater::locate_batch` answers over the same store.
    let size = (workload_size() / 10).clamp(500, 5_000);
    let (store, queries) = campus_workload(size);
    let requests: Vec<LocateRequest> = queries.iter().map(LocateRequest::from_query).collect();

    let legacy = Locater::new(store.clone(), LocaterConfig::default());
    let legacy_answers = legacy.locate_batch(&queries, 1);

    let baseline = LocaterService::new(store.clone(), LocaterConfig::default());
    let sequential = baseline.locate_batch(&requests, 1);
    assert_eq!(sequential.len(), legacy_answers.len());
    for (idx, (legacy, response)) in legacy_answers.iter().zip(&sequential).enumerate() {
        match (legacy, response) {
            (Ok(a), Ok(b)) => assert_eq!(a, &b.answer, "query {idx}: request layer diverged"),
            (a, b) => assert_eq!(a.is_err(), b.is_err(), "query {idx}: outcome diverged"),
        }
    }

    for jobs in [3, 8] {
        let service = LocaterService::new(store.clone(), LocaterConfig::default());
        let parallel = service.locate_batch(&requests, jobs);
        assert_eq!(
            sequential, parallel,
            "request-layer batch diverged between jobs=1 and jobs={jobs}"
        );
    }
}

#[test]
fn locate_batch_agrees_with_single_queries_on_a_cold_system() {
    // Every batch answer is computed against the frozen pre-batch cache, so
    // the first query of each device must match what a *fresh* system answers
    // for that query alone (both see an empty affinity graph and no models).
    let (store, queries) = campus_workload(500);
    let batch = Locater::new(store.clone(), LocaterConfig::default());
    let batch_answers = batch.locate_batch(&queries, 4);

    let mut seen = std::collections::HashSet::new();
    let mut checked = 0usize;
    for (query, batch_answer) in queries.iter().zip(&batch_answers) {
        if !seen.insert(query.mac.clone()) {
            continue;
        }
        let fresh = Locater::new(store.clone(), LocaterConfig::default());
        let one = fresh.locate(query);
        match (one, batch_answer) {
            (Ok(a), Ok(b)) => assert_eq!(a.location, b.location),
            (a, b) => assert_eq!(a.is_err(), b.is_err()),
        }
        checked += 1;
        if checked >= 12 {
            break;
        }
    }
    assert!(checked > 0, "no per-device first queries checked");
}
