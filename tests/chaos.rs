//! The chaos cornerstone: live serve+ingest runs under **seeded fault
//! schedules** — disk faults ([`FaultIo`] under the WAL), wire faults (a
//! [`ChaosProxy`] slamming connections mid-frame), and both combined — driven
//! end to end through the resilient [`RetryClient`]. Every schedule must
//! uphold the serving invariant:
//!
//! > **No acked write is ever lost; no retried write is ever applied twice.**
//!
//! Concretely, after every storm:
//!
//! * every ingest the client saw acked is present **exactly once** in the
//!   store recovered from the WAL (zero loss, zero duplicate application);
//! * no attempted ingest appears more than once, acked or not;
//! * the server is never wedged — a fresh connection gets a `Pong` after the
//!   storm, faults and panics included;
//! * recovery from the surviving WAL is clean (a typed report, never a
//!   panic), and **recovering twice yields byte-identical snapshots**;
//! * the fault sequences themselves are bit-identical for equal seeds, so
//!   any failure here replays from its printed seed.
//!
//! Unique `(mac, t)` pairs per client make duplicates detectable: a retried
//! ingest that were applied twice would show up as two stored events at the
//! same timestamp.

use locater::events::Interval;
use locater::prelude::*;
use locater::proto::{decode_response, encode_request};
use locater::server::{ServerState, CHAOS_PANIC_MAC};
use locater::store::{Durability, FaultIo, FaultPlan, FsyncPolicy, RealIo, StorageIo};
use locater_bench::{ChaosConfig, ChaosProxy};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 2;
const PER_CLIENT: usize = 24;

const MACS: [&str; 2] = ["aa:00:00:00:00:01", "aa:00:00:00:00:02"];

fn space() -> Space {
    SpaceBuilder::new("chaos-test")
        .add_access_point("wap0", &["office", "lounge"])
        .add_access_point("wap1", &["lab", "lounge"])
        .build()
        .unwrap()
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "locater-chaos-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durability(dir: &Path, io: Arc<dyn StorageIo>) -> Durability {
    Durability::new(dir)
        .with_fsync(FsyncPolicy::Always)
        .with_io(io)
}

fn boot(dir: &Path, io: Arc<dyn StorageIo>) -> Result<ShardedLocaterService, String> {
    let (service, _) = ShardedLocaterService::with_durability(
        EventStore::new(space()),
        LocaterConfig::default(),
        2,
        durability(dir, io),
    )
    .map_err(|e| e.to_string())?;
    Ok(service)
}

/// One raw request on a fresh connection, bypassing proxy and retry client —
/// the "is the server wedged?" probe.
fn raw_request(addr: &str, request: &WireRequest) -> WireResponse {
    let stream = TcpStream::connect(addr).expect("fresh connection refused");
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writeln!(writer, "{}", encode_request(request)).expect("write probe frame");
    let mut line = String::new();
    let n = BufReader::new(stream)
        .read_line(&mut line)
        .expect("read probe response");
    assert!(
        n > 0,
        "server closed the probe connection without a response"
    );
    decode_response(line.trim_end()).expect("probe response decodes")
}

/// What one storm did, as seen from the clients.
struct Storm {
    /// `(mac, t)` of every ingest a client saw acknowledged.
    acked: Vec<(String, i64)>,
    /// `(mac, t)` of every ingest attempted, acked or not.
    attempted: Vec<(String, i64)>,
    /// Requests that exhausted retries or hit a non-retryable error.
    refused: u64,
    /// Total client-side retries across the storm.
    retries: u64,
    /// The server's applied-event counter, read after the storm but before
    /// teardown.
    server_events: usize,
}

/// Drives `CLIENTS` retry clients through `PER_CLIENT` ingests each against a
/// durable two-shard server on `dir`, optionally behind a wire-fault proxy,
/// with `io` (optionally a [`FaultIo`]) under the WAL. Ends with the no-wedge
/// probe; `graceful` decides between a drained shutdown and a crash (the
/// server is dropped mid-flight, exactly like a `SIGKILL`).
fn run_storm(
    dir: &Path,
    io: Arc<dyn StorageIo>,
    wire: Option<ChaosConfig>,
    seed: u64,
    graceful: bool,
) -> Result<Storm, String> {
    let service = boot(dir, io)?;
    let state = Arc::new(ServerState::new(service, None));
    let server = Server::bind(state, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let direct = server.local_addr().to_string();

    let proxy = wire.map(|config| ChaosProxy::start(server.local_addr(), config).expect("proxy"));
    let client_addr = proxy
        .as_ref()
        .map(|p| p.local_addr().to_string())
        .unwrap_or_else(|| direct.clone());

    let mut handles = Vec::new();
    for (k, mac) in MACS.iter().enumerate().take(CLIENTS) {
        let addr = client_addr.clone();
        let mac = mac.to_string();
        handles.push(std::thread::spawn(move || {
            let mut client = RetryClient::new(ClientConfig {
                addr,
                request_timeout: Duration::from_secs(5),
                max_retries: 20,
                backoff: BackoffPolicy {
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(50),
                    seed: seed ^ k as u64,
                },
                id_seed: seed.wrapping_mul(31).wrapping_add(k as u64),
            });
            let (mut acked, mut attempted) = (Vec::new(), Vec::new());
            let mut refused = 0u64;
            for i in 0..PER_CLIENT {
                let t = 10_000 + (i as i64) * 60;
                let ap = if i % 2 == 0 { "wap0" } else { "wap1" };
                attempted.push((mac.clone(), t));
                let request = WireRequest::Ingest {
                    mac: mac.clone(),
                    t,
                    ap: ap.into(),
                    request_id: None,
                };
                match client.request(&request) {
                    Ok(WireResponse::Error(_)) | Err(_) => refused += 1,
                    Ok(_) => acked.push((mac.clone(), t)),
                }
            }
            (acked, attempted, refused, client.stats().retries)
        }));
    }

    let (mut acked, mut attempted) = (Vec::new(), Vec::new());
    let (mut refused, mut retries) = (0u64, 0u64);
    for handle in handles {
        let (a, at, r, rt) = handle.join().expect("storm client panicked");
        acked.extend(a);
        attempted.extend(at);
        refused += r;
        retries += rt;
    }

    // A live compact in the middle of the storm's aftermath: its WAL
    // checkpoint runs through the same (possibly faulty) StorageIo. A
    // failure must be a typed error frame, never a wedge — and retention
    // larger than the trace means nothing acked is ever evicted, so the
    // recovery invariants below still see every event.
    let compacted = raw_request(
        &direct,
        &WireRequest::Compact {
            retain: Some(1_000_000),
            horizon: None,
        },
    );
    assert!(
        matches!(
            compacted,
            WireResponse::Compacted { .. } | WireResponse::Error(_)
        ),
        "compact under chaos must answer typed, got {compacted:?} (seed={seed:#x})"
    );

    // The no-wedge probe: whatever the storm did, a fresh direct connection
    // still gets a liveness answer and a stats frame.
    assert!(
        matches!(
            raw_request(&direct, &WireRequest::Ping),
            WireResponse::Pong { .. }
        ),
        "server wedged after storm (seed={seed:#x})"
    );
    assert!(
        matches!(
            raw_request(&direct, &WireRequest::Stats),
            WireResponse::Stats(_)
        ),
        "server stats wedged after storm (seed={seed:#x})"
    );
    let server_events = server.state().stats().events;

    if let Some(proxy) = proxy {
        proxy.stop();
    }
    if graceful {
        let response = raw_request(&direct, &WireRequest::Shutdown);
        assert!(
            matches!(response, WireResponse::ShuttingDown),
            "shutdown not acknowledged: {response:?}"
        );
        let report = server.join();
        if let Some(message) = report.drain.failure_message() {
            return Err(format!("drain: {message}"));
        }
    } else {
        // Crash: drop the handle without draining. No checkpoint, no seal —
        // recovery has to work from the raw segments alone.
        drop(server);
    }

    Ok(Storm {
        acked,
        attempted,
        refused,
        retries,
        server_events,
    })
}

/// Recovers the WAL at `dir` (with clean I/O) and checks the loss/duplication
/// invariants against what the clients saw; recovers a second time and
/// demands byte-identical snapshots.
fn verify_recovery(dir: &Path, storm: &Storm, label: &str) {
    let recovered = boot(dir, Arc::new(RealIo))
        .unwrap_or_else(|e| panic!("{label}: recovery must be clean, got {e}"));
    let store = recovered.store_snapshot();

    for (mac, t) in &storm.acked {
        let device = store
            .device_id(mac)
            .unwrap_or_else(|| panic!("{label}: acked device {mac} lost"));
        let hits = store
            .events_of_in(
                device,
                Interval {
                    start: *t,
                    end: *t + 1,
                },
            )
            .filter(|e| e.t == *t)
            .count();
        assert_eq!(
            hits, 1,
            "{label}: acked ingest ({mac}, {t}) stored {hits} times (want exactly once)"
        );
    }
    for (mac, t) in &storm.attempted {
        let Some(device) = store.device_id(mac) else {
            continue;
        };
        let hits = store
            .events_of_in(
                device,
                Interval {
                    start: *t,
                    end: *t + 1,
                },
            )
            .filter(|e| e.t == *t)
            .count();
        assert!(
            hits <= 1,
            "{label}: ingest ({mac}, {t}) applied {hits} times — a retry was applied twice"
        );
    }

    let first = store.to_snapshot_bytes().expect("first recovery snapshot");
    drop(recovered);
    let again = boot(dir, Arc::new(RealIo))
        .unwrap_or_else(|e| panic!("{label}: second recovery must be clean, got {e}"));
    let second = again
        .store_snapshot()
        .to_snapshot_bytes()
        .expect("second recovery snapshot");
    assert_eq!(
        first, second,
        "{label}: recovering the same WAL twice diverged"
    );
}

// ---------------------------------------------------------------------------
// Disk-fault schedules
// ---------------------------------------------------------------------------

/// Seven disk-only schedules: seeded short writes, `ENOSPC`, and fsync
/// failures under the WAL of a live server, ended by a crash. Acked ingests
/// survive recovery exactly once; a schedule harsh enough to refuse boot must
/// refuse with a typed error (degrade, don't die).
#[test]
fn disk_fault_schedules_never_lose_acked_ingests() {
    for round in 0u64..7 {
        let seed = 0xD15C_0000 + round;
        let plan = FaultPlan {
            seed,
            writes: 1 + (round as usize % 3),
            syncs: round as usize % 2,
            reads: 0,
            renames: round as usize % 2,
            removes: 0,
            horizon: 40,
        };
        let dir = scratch("disk");
        let label = format!("disk schedule {seed:#x}");
        match run_storm(&dir, Arc::new(FaultIo::new(plan)), None, seed, false) {
            Ok(storm) => {
                assert_eq!(
                    storm.acked.len() + storm.refused as usize,
                    storm.attempted.len(),
                    "{label}: every attempt is acked or refused, never silently dropped"
                );
                verify_recovery(&dir, &storm, &label);
            }
            // The schedule fired during boot: the server refused to start
            // with a typed error. Nothing was acked, so nothing can be lost.
            Err(message) => assert!(
                !message.is_empty(),
                "{label}: boot refusal must carry a reason"
            ),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Wire-fault schedules
// ---------------------------------------------------------------------------

/// Seven wire-only schedules: the proxy drops, stalls, half-closes and splits
/// frames while the retry client rides through. With a healthy disk every
/// attempt must end acked — and applied exactly once, live (server counter)
/// and after a drained restart.
#[test]
fn wire_fault_schedules_deliver_exactly_once() {
    let mut total_retries = 0u64;
    for round in 0u64..7 {
        let seed = 0x319E_0000 + round;
        let wire = ChaosConfig {
            seed,
            ..ChaosConfig::default()
        };
        let dir = scratch("wire");
        let label = format!("wire schedule {seed:#x}");
        let storm = run_storm(&dir, Arc::new(RealIo), Some(wire), seed, true)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(
            storm.refused, 0,
            "{label}: a healthy disk behind a lossy wire must never refuse"
        );
        assert_eq!(storm.acked.len(), storm.attempted.len(), "{label}");
        assert_eq!(
            storm.server_events,
            storm.acked.len(),
            "{label}: server applied {} events for {} acked ingests — \
             retries were applied twice or acks were lost",
            storm.server_events,
            storm.acked.len()
        );
        verify_recovery(&dir, &storm, &label);
        total_retries += storm.retries;
        std::fs::remove_dir_all(&dir).ok();
    }
    // If no schedule ever forced a retry, the proxy was transparent and the
    // exactly-once claim above proved nothing.
    assert!(
        total_retries > 0,
        "seven wire storms without a single retry — the fault proxy is inert"
    );
}

// ---------------------------------------------------------------------------
// Combined schedules
// ---------------------------------------------------------------------------

/// Eight combined schedules: disk faults *and* wire faults in the same storm,
/// ended by a crash. The union of every failure mode still upholds the
/// invariant — acked implies durable exactly once.
#[test]
fn combined_fault_schedules_hold_every_invariant() {
    for round in 0u64..8 {
        let seed = 0xB07_0000 + round;
        let plan = FaultPlan {
            seed,
            writes: round as usize % 3,
            syncs: 1 + (round as usize % 2),
            reads: 0,
            renames: 0,
            removes: 0,
            horizon: 60,
        };
        let wire = ChaosConfig {
            seed: seed ^ 0xFEED,
            ..ChaosConfig::default()
        };
        let dir = scratch("both");
        let label = format!("combined schedule {seed:#x}");
        match run_storm(&dir, Arc::new(FaultIo::new(plan)), Some(wire), seed, false) {
            Ok(storm) => {
                assert_eq!(
                    storm.acked.len() + storm.refused as usize,
                    storm.attempted.len(),
                    "{label}"
                );
                verify_recovery(&dir, &storm, &label);
            }
            Err(message) => assert!(!message.is_empty(), "{label}: untyped boot refusal"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Panic isolation under durability
// ---------------------------------------------------------------------------

/// A panicking request in the middle of a durable storm is a typed `internal`
/// error, not a wedge: the WAL keeps accepting writes and recovery still
/// holds the exactly-once invariant.
#[test]
fn a_panicking_request_mid_storm_does_not_wedge_the_durable_server() {
    let dir = scratch("panic");
    let service = boot(&dir, Arc::new(RealIo)).expect("boot");
    let state = Arc::new(ServerState::new(service, None));
    let server = Server::bind(state, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();

    let mut client = RetryClient::new(ClientConfig {
        addr: addr.clone(),
        request_timeout: Duration::from_secs(5),
        max_retries: 1,
        ..ClientConfig::default()
    });
    client
        .request(&WireRequest::Ingest {
            mac: MACS[0].into(),
            t: 1_000,
            ap: "wap0".into(),
            request_id: None,
        })
        .expect("ingest before the panic");
    // The panic injection hook: retryable `internal` errors until retries
    // run out, never a hang, never a dead server.
    let storm_error = client.request(&WireRequest::Ingest {
        mac: CHAOS_PANIC_MAC.into(),
        t: 1_060,
        ap: "wap0".into(),
        request_id: None,
    });
    assert!(storm_error.is_err(), "a panicking request cannot succeed");
    client
        .request(&WireRequest::Ingest {
            mac: MACS[0].into(),
            t: 1_120,
            ap: "wap0".into(),
            request_id: None,
        })
        .expect("ingest after the panic");
    assert!(matches!(
        raw_request(&addr, &WireRequest::Ping),
        WireResponse::Pong { .. }
    ));
    assert!(server.state().stats().panics >= 1);
    drop(server); // crash

    let storm = Storm {
        acked: vec![(MACS[0].into(), 1_000), (MACS[0].into(), 1_120)],
        attempted: vec![(MACS[0].into(), 1_000), (MACS[0].into(), 1_120)],
        refused: 1,
        retries: 0,
        server_events: 2,
    };
    verify_recovery(&dir, &storm, "panic storm");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Seed determinism
// ---------------------------------------------------------------------------

/// The reproducibility contract: every fault source — disk schedule, wire
/// decision stream, backoff jitter — is a pure function of its seed, so a
/// failing schedule replays bit-for-bit from the seed in its panic message.
#[test]
fn fault_sequences_are_bit_identical_for_equal_seeds() {
    for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
        let plan = FaultPlan {
            seed,
            writes: 3,
            syncs: 2,
            reads: 2,
            renames: 1,
            removes: 1,
            horizon: 64,
        };
        assert_eq!(
            FaultIo::new(plan).schedule(),
            FaultIo::new(plan).schedule(),
            "disk schedule must be a pure function of its plan"
        );
        let reseeded = FaultPlan {
            seed: seed.wrapping_add(1),
            ..plan
        };
        assert_ne!(
            FaultIo::new(plan).schedule(),
            FaultIo::new(reseeded).schedule(),
            "adjacent seeds must not collide"
        );

        let wire = ChaosConfig {
            seed,
            ..ChaosConfig::default()
        };
        let rewire = ChaosConfig {
            seed: seed.wrapping_add(1),
            ..ChaosConfig::default()
        };
        let stream = |c: &ChaosConfig| {
            (0..256u64)
                .map(|i| c.action(i % 3, (i % 2) as u8, i))
                .collect::<Vec<_>>()
        };
        assert_eq!(stream(&wire), stream(&wire), "wire stream is seed-pure");
        assert_ne!(stream(&wire), stream(&rewire), "wire seeds decorrelate");

        let backoff = BackoffPolicy {
            base: Duration::from_millis(3),
            cap: Duration::from_millis(700),
            seed,
        };
        assert_eq!(backoff.schedule(32), backoff.schedule(32));
    }
}
