//! The correctness cornerstone of the live service: **after any ingest
//! sequence, answers equal those of a freshly built system over the same
//! data** — with the caching engine *enabled*, i.e. epoch invalidation is
//! proven correct rather than sidestepped by clearing the cache.
//!
//! The tests interleave `ingest_batch` with `locate` calls (which warm the
//! affinity graph and per-device models over intermediate store states), then
//! compare a probe-query trace against a freshly constructed service over the
//! final store. Because every ingest chunk carries events for every device,
//! the final chunk leaves the warmed cache entirely stale: the live service
//! and the fresh one must make byte-identical decisions from there on, probe
//! by probe, while both warm their caches along the trace.

use locater::prelude::*;
use locater::store::RawEvent;

fn space() -> Space {
    SpaceBuilder::new("equivalence")
        .add_access_point("wap0", &["office-a", "office-b", "lounge"])
        .add_access_point("wap1", &["lounge", "lab", "office-c"])
        .room_type("lounge", RoomType::Public)
        .room_owner("office-a", "alice")
        .room_owner("office-b", "bob")
        .room_owner("office-c", "carol")
        .build()
        .unwrap()
}

const MACS: [&str; 3] = ["alice", "bob", "carol"];

/// One day of events for every device: a morning block on wap0 and an
/// afternoon block whose AP depends on the device, leaving a lunch gap and an
/// overnight gap to clean.
fn day_chunk(day: i64) -> Vec<RawEvent> {
    let mut events = Vec::new();
    for (idx, mac) in MACS.iter().enumerate() {
        let offset = idx as i64 * 40;
        for slot in 0..6 {
            let t = locater::events::clock::at(day, 9, slot * 20, 0) + offset;
            events.push(RawEvent::new(*mac, t, "wap0"));
        }
        let afternoon_ap = if idx == 2 { "wap1" } else { "wap0" };
        for slot in 0..6 {
            let t = locater::events::clock::at(day, 13, slot * 20, 0) + offset;
            events.push(RawEvent::new(*mac, t, afternoon_ap));
        }
    }
    events
}

/// Probe times over the final dataset: covered instants, short (lunch) gaps,
/// long (overnight) gaps, and out-of-span times — every coarse path.
fn probes(days: i64) -> Vec<LocateRequest> {
    let mut probes = Vec::new();
    for day in [days - 1, days - 2] {
        for mac in MACS {
            probes.push(LocateRequest::by_mac(
                mac,
                locater::events::clock::at(day, 9, 30, 10),
            ));
            probes.push(LocateRequest::by_mac(
                mac,
                locater::events::clock::at(day, 12, 15, 0),
            ));
            probes.push(LocateRequest::by_mac(
                mac,
                locater::events::clock::at(day, 3, 0, 0),
            ));
        }
    }
    probes.push(LocateRequest::by_mac(
        "alice",
        locater::events::clock::at(days + 300, 12, 0, 0),
    ));
    probes
}

/// A tiny deterministic LCG so the interleavings are reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Runs one interleaving of `ingest_batch` and `locate` calls and asserts the
/// post-quiescence equivalence with a rebuilt service.
fn assert_equivalence(config: LocaterConfig, seed: u64, days: i64) {
    let service = LocaterService::new(EventStore::new(space()), config);
    let mut rng = Lcg(seed);

    for day in 0..days {
        // Warm the cache and the per-device models over the partial dataset.
        // The locate calls come *before* each chunk so the trace ends with an
        // ingest — the probes below are then the post-ingest query sequence,
        // replayed identically on the rebuilt service.
        if day > 0 {
            let queries = 1 + rng.below(4);
            for _ in 0..queries {
                let mac = MACS[rng.below(MACS.len() as u64) as usize];
                let q_day = rng.below(day as u64) as i64;
                let hour = 8 + rng.below(8) as i64;
                let t = locater::events::clock::at(q_day, hour, rng.below(60) as i64, 0);
                let _ = service.locate(&LocateRequest::by_mac(mac, t));
            }
        }
        service
            .ingest_batch(day_chunk(day).iter())
            .expect("chunk ingests");
    }

    // The interleaving must have actually warmed the cache, and the final
    // chunk (events for every device) must have invalidated all of it: the
    // equivalence below is then a real test of epoch invalidation, not of an
    // empty cache.
    let (warmed_edges, _) = service.cache_stats();
    assert!(
        warmed_edges > 0,
        "interleaving never warmed the affinity graph; probes would not test invalidation"
    );
    assert_eq!(
        service.live_cache_stats(),
        (0, 0),
        "final ingest chunk must leave no live cache state"
    );

    // A freshly built service over the exact final store.
    let fresh = LocaterService::new(service.store_snapshot(), config);

    // Probe trace: both services answer the same queries in the same order,
    // warming their caches as they go. Answers must stay byte-identical.
    for (idx, probe) in probes(days).iter().enumerate() {
        let live = service.locate(probe).expect("probe resolves");
        let rebuilt = fresh.locate(probe).expect("probe resolves");
        assert_eq!(
            live.answer, rebuilt.answer,
            "probe {idx} diverged from the rebuilt service (seed {seed})"
        );
        assert_eq!(live.events_seen, rebuilt.events_seen);
    }

    // Both warmed their caches identically along the trace (the live one on
    // top of its stale remnants, which stay invisible).
    assert_eq!(
        service.live_cache_stats(),
        fresh.live_cache_stats(),
        "live cache state diverged from the rebuilt service (seed {seed})"
    );
    assert!(
        service.live_cache_stats().0 > 0,
        "probe trace should have re-warmed the cache"
    );

    // The batch path answers the same trace identically on both services and
    // for every job count (determinism through the request layer).
    let batch_probes = probes(days);
    let live_batch = service.locate_batch(&batch_probes, 1);
    for jobs in [2, 8] {
        let fresh_batch = fresh.locate_batch(&batch_probes, jobs);
        assert_eq!(live_batch.len(), fresh_batch.len());
        for (idx, (a, b)) in live_batch.iter().zip(&fresh_batch).enumerate() {
            match (a, b) {
                (Ok(a), Ok(b)) => assert_eq!(
                    a.answer, b.answer,
                    "batch probe {idx} diverged (jobs={jobs}, seed {seed})"
                ),
                (a, b) => assert_eq!(a.is_err(), b.is_err(), "batch probe {idx} outcome"),
            }
        }
    }
}

#[test]
fn ingest_then_locate_equals_fresh_build_independent_mode() {
    for seed in [1, 7, 42] {
        assert_equivalence(LocaterConfig::default(), seed, 6);
    }
}

#[test]
fn ingest_then_locate_equals_fresh_build_dependent_mode() {
    assert_equivalence(
        LocaterConfig::default().with_fine_mode(FineMode::Dependent),
        11,
        6,
    );
}

#[test]
fn delta_reestimation_invalidates_and_stays_equivalent() {
    // `reestimate_deltas` reshapes every device's gap structure; it must bump
    // all epochs so that answers keep matching a rebuild of the final store
    // (whose snapshot carries the re-estimated deltas).
    let config = LocaterConfig::default();
    let service = LocaterService::new(EventStore::new(space()), config);
    for day in 0..5 {
        service.ingest_batch(day_chunk(day).iter()).unwrap();
        let t = locater::events::clock::at(day, 12, 10, 0);
        let _ = service.locate(&LocateRequest::by_mac("alice", t));
        let _ = service.locate(&LocateRequest::by_mac("bob", t));
    }
    service.reestimate_deltas();
    assert_eq!(service.live_cache_stats(), (0, 0));

    let fresh = LocaterService::new(service.store_snapshot(), config);
    for probe in probes(5) {
        let live = service.locate(&probe).unwrap();
        let rebuilt = fresh.locate(&probe).unwrap();
        assert_eq!(live.answer, rebuilt.answer);
    }
}

#[test]
fn partial_ingest_invalidates_only_touched_devices() {
    // Epoch granularity: an ingest for one device must stale exactly the
    // edges incident to it, keeping the rest of the warm cache live.
    let service = LocaterService::new(EventStore::new(space()), LocaterConfig::default());
    for day in 0..4 {
        service.ingest_batch(day_chunk(day).iter()).unwrap();
    }
    // Warm edges around alice (alice↔bob on wap0) and carol (afternoon wap1).
    let morning = locater::events::clock::at(3, 9, 30, 10);
    let afternoon = locater::events::clock::at(3, 13, 30, 10);
    service
        .locate(&LocateRequest::by_mac("alice", morning))
        .unwrap();
    service
        .locate(&LocateRequest::by_mac("carol", afternoon))
        .unwrap();
    let (live_before, _) = service.live_cache_stats();
    assert!(live_before > 0, "expected a warm cache");

    let alice = service.with_store(|s| s.device_id("alice")).unwrap();
    let carol = service.with_store(|s| s.device_id("carol")).unwrap();
    let alice_epoch = service.device_epoch(alice);
    let carol_epoch = service.device_epoch(carol);

    // One new event for alice only.
    service
        .ingest("alice", locater::events::clock::at(4, 9, 0, 0), "wap0")
        .unwrap();
    assert_eq!(service.device_epoch(alice), alice_epoch + 1);
    assert_eq!(service.device_epoch(carol), carol_epoch);

    let (live_after, _) = service.live_cache_stats();
    assert!(
        live_after < live_before,
        "alice's edges must go stale ({live_before} -> {live_after})"
    );
    assert!(
        live_after > 0,
        "edges not incident to alice must survive the ingest"
    );
}
