//! End-to-end integration test: simulate a campus, clean its connectivity log with
//! LOCATER, and check the paper's headline claims on the resulting precision.

use locater::core::baselines::{Baseline1, BaselineSystem};
use locater::core::metrics::{PrecisionCounts, TruthLocation};
use locater::prelude::*;

fn campus() -> (SimOutput, EventStore) {
    let config = CampusConfig {
        access_points: 6,
        population: 24,
        visitors: 6,
        monitored: 8,
        weeks: 3,
        ..CampusConfig::default()
    };
    let output = Simulator::new(99).run_campus(&config);
    let store = output.build_store();
    (output, store)
}

fn truth_of(output: &SimOutput, mac: &str, t: Timestamp) -> TruthLocation {
    match output.ground_truth.room_at(mac, t) {
        Some(room) => TruthLocation::Room(room),
        None => TruthLocation::Outside,
    }
}

#[test]
fn locater_cleans_a_campus_log_and_beats_the_random_room_baseline() {
    let (output, store) = campus();
    let space = store.space().clone();
    let workload = locater::sim::university_workload(&output, 25, 7);
    assert!(!workload.is_empty());

    let locater = Locater::new(store.clone(), LocaterConfig::default());
    let mut locater_counts = PrecisionCounts::new();
    let mut baseline_counts = PrecisionCounts::new();
    let mut baseline = Baseline1::default();

    for query in &workload.queries {
        let truth = truth_of(&output, &query.mac, query.t);
        let answer = locater
            .locate(&Query::by_mac(&query.mac, query.t))
            .expect("monitored devices appear in the log");
        locater_counts.record_answer(&space, truth, &answer);

        let device = store.device_id(&query.mac).expect("device exists");
        let baseline_answer = baseline.locate(&store, device, query.t);
        baseline_counts.record_answer(&space, truth, &baseline_answer);
    }

    // Sanity: every query was scored by both systems.
    assert_eq!(locater_counts.queries, workload.len());
    assert_eq!(baseline_counts.queries, workload.len());

    // Headline claims (shape, not absolute numbers): the coarse step is strong, and
    // the overall precision is far above picking a random room in the right region.
    assert!(
        locater_counts.pc() > 0.6,
        "coarse precision too low: {}",
        locater_counts.pc()
    );
    assert!(
        locater_counts.po() > baseline_counts.po() + 0.1,
        "LOCATER Po {} should clearly beat Baseline1 Po {}",
        locater_counts.po(),
        baseline_counts.po()
    );
    // Fine precision only counts region-correct answers; it must be meaningfully
    // better than the ~1/rooms-per-AP a random choice would give.
    assert!(
        locater_counts.pf() > baseline_counts.pf(),
        "LOCATER Pf {} should beat Baseline1 Pf {}",
        locater_counts.pf(),
        baseline_counts.pf()
    );
}

#[test]
fn answers_are_internally_consistent_with_the_space_model() {
    let (output, store) = campus();
    let space = store.space().clone();
    let locater = Locater::new(
        store,
        LocaterConfig::default().with_fine_mode(FineMode::Dependent),
    );
    let workload = locater::sim::generated_workload(&output, 150, 3);

    for query in &workload.queries {
        let Ok(answer) = locater.locate(&Query::by_mac(&query.mac, query.t)) else {
            continue; // devices that never produced an event cannot be resolved
        };
        match (answer.region(), answer.room()) {
            (Some(region), Some(room)) => {
                assert!(
                    space.rooms_in_region(region).contains(&room),
                    "answered room {room} is not covered by region {region}"
                );
                assert!(answer.is_inside());
            }
            (Some(_), None) => assert!(answer.is_inside()),
            (None, room) => {
                assert!(answer.is_outside());
                assert_eq!(room, None);
            }
        }
        assert!((0.0..=1.0).contains(&answer.confidence));
    }
}

#[test]
fn caching_engine_warms_up_and_does_not_change_coarse_answers() {
    let (output, store) = campus();
    let workload = locater::sim::university_workload(&output, 10, 11);
    let cached = Locater::new(store.clone(), LocaterConfig::default());
    let uncached = Locater::new(
        store,
        LocaterConfig::default().with_cache(CacheMode::Disabled),
    );

    let mut disagreements = 0usize;
    for query in &workload.queries {
        let q = Query::by_mac(&query.mac, query.t);
        let a = cached.locate(&q).unwrap();
        let b = uncached.locate(&q).unwrap();
        // The coarse (building/region) decision never depends on the cache.
        assert_eq!(a.is_inside(), b.is_inside());
        assert_eq!(a.region(), b.region());
        if a.room() != b.room() {
            disagreements += 1;
        }
    }
    let (edges, samples) = cached.cache_stats();
    assert_eq!(uncached.cache_stats(), (0, 0));
    // The cached system accumulated affinities while answering.
    assert!(samples >= edges);
    // Room-level answers may differ (cached affinities are approximations), but only
    // for a minority of queries — the Fig. 9 claim.
    assert!(
        (disagreements as f64) < 0.25 * workload.len() as f64,
        "too many room-level disagreements: {disagreements}/{}",
        workload.len()
    );
}
