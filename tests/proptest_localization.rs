//! Property-based integration tests: for arbitrary (small) connectivity logs and
//! query times, the cleaning engine never panics, always produces well-formed answers,
//! and the evaluation metrics stay within their mathematical bounds.

use locater::core::metrics::{PrecisionCounts, TruthLocation};
use locater::prelude::*;
use proptest::prelude::*;

fn space() -> Space {
    SpaceBuilder::new("prop")
        .add_access_point("wap0", &["a", "b", "c", "shared"])
        .add_access_point("wap1", &["shared", "d", "e"])
        .add_access_point("wap2", &["f", "g"])
        .room_type("shared", RoomType::Public)
        .room_owner("a", "device-0")
        .room_owner("d", "device-1")
        .build()
        .unwrap()
}

/// (device index, timestamp, ap index) triples.
fn arb_events() -> impl Strategy<Value = Vec<(u8, i64, u8)>> {
    prop::collection::vec((0u8..4, 0i64..1_500_000, 0u8..3), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the log looks like, every query gets a well-formed answer: a room
    /// implies a region that covers it, outside implies no region, confidence in
    /// [0, 1].
    #[test]
    fn answers_are_always_well_formed(events in arb_events(), probes in prop::collection::vec((0u8..4, 0i64..1_500_000), 1..20)) {
        let space = space();
        let mut store = EventStore::new(space.clone());
        for (device, t, ap) in &events {
            store.ingest_raw(&format!("device-{device}"), *t, &format!("wap{ap}")).unwrap();
        }
        store.estimate_deltas();
        let locater = Locater::new(store, LocaterConfig::default());
        for (device, t) in probes {
            let query = Query::by_mac(format!("device-{device}"), t);
            match locater.locate(&query) {
                Ok(answer) => {
                    prop_assert!((0.0..=1.0).contains(&answer.confidence));
                    match (answer.region(), answer.room()) {
                        (Some(region), Some(room)) => {
                            prop_assert!(space.rooms_in_region(region).contains(&room));
                            prop_assert!(answer.is_inside());
                        }
                        (None, None) => prop_assert!(answer.is_outside()),
                        (Some(_), None) => prop_assert!(answer.is_inside()),
                        (None, Some(_)) => prop_assert!(false, "room without region"),
                    }
                }
                Err(e) => {
                    // Only devices absent from the log may fail to resolve.
                    prop_assert!(e.to_string().contains("unknown device"));
                }
            }
        }
    }

    /// Covered instants are always answered as inside the covering event's region,
    /// whatever configuration is used.
    #[test]
    fn covered_instants_follow_the_log(events in arb_events(), mode_dependent in any::<bool>()) {
        let space = space();
        let mut store = EventStore::new(space);
        for (device, t, ap) in &events {
            store.ingest_raw(&format!("device-{device}"), *t, &format!("wap{ap}")).unwrap();
        }
        let mode = if mode_dependent { FineMode::Dependent } else { FineMode::Independent };
        let locater = Locater::new(store, LocaterConfig::default().with_fine_mode(mode));
        // Probe exactly at event timestamps: these are always covered.
        for (device, t, ap) in events.iter().take(25) {
            let answer = locater
                .locate(&Query::by_mac(format!("device-{device}"), *t))
                .unwrap();
            prop_assert!(answer.is_inside());
            let expected_region = locater
                .store()
                .space()
                .ap_id(&format!("wap{ap}"))
                .unwrap()
                .region();
            // The answer's region must cover the AP the device was connected to at
            // that instant — it is either that AP's region or one sharing the room.
            let region = answer.region().unwrap();
            if region != expected_region {
                prop_assert!(locater.store().space().regions_overlap(region, expected_region));
            }
        }
    }

    /// The Pc / Pf / Po metrics always stay within [0, 1] and respect the definition
    /// Po ≤ Pc (an answer counted in Po is either outside-correct or room-correct,
    /// both of which are also counted in Pc).
    #[test]
    fn precision_metrics_are_bounded(records in prop::collection::vec((0u8..4, 0u8..8, 0u8..8), 1..60)) {
        let space = space();
        let mut counts = PrecisionCounts::new();
        let rooms = space.num_rooms() as u8;
        for (kind, truth_room, predicted_room) in records {
            let truth = if kind == 0 {
                TruthLocation::Outside
            } else {
                TruthLocation::Room(RoomId::new((truth_room % rooms) as u32))
            };
            let predicted = match kind % 3 {
                0 => locater::core::system::Location::Outside,
                1 => locater::core::system::Location::Region(RegionId::new((predicted_room % 3) as u32)),
                _ => {
                    let region = RegionId::new((predicted_room % 3) as u32);
                    let candidates = space.rooms_in_region(region);
                    locater::core::system::Location::Room {
                        room: candidates[(predicted_room as usize) % candidates.len()],
                        region,
                    }
                }
            };
            counts.record(&space, truth, &predicted);
        }
        prop_assert!((0.0..=1.0).contains(&counts.pc()));
        prop_assert!((0.0..=1.0).contains(&counts.pf()));
        prop_assert!((0.0..=1.0).contains(&counts.po()));
        prop_assert!(counts.po() <= counts.pc() + 1e-12);
        prop_assert!(counts.correct_room <= counts.correct_region);
        prop_assert!(counts.correct_outside <= counts.truth_outside);
    }
}
