//! The correctness cornerstone of the compaction subsystem: **answer
//! equivalence inside the retained window**. A service that compacts while
//! serving — under LCG-seeded interleavings of frontier ingest, heavy
//! out-of-order backfill (including splices that land *below* the cut),
//! δ-boundary ties, locates, and compaction runs — must answer every
//! in-scope locate byte-identically to an uncompacted reference that
//! ingested the same sequence.
//!
//! "In scope" is the documented contract, not a convenience: an answer is
//! covered when its whole consulted window (coarse history and fine affinity
//! window, padded by the validity slack δ on both sides) lies at or above
//! the cut, and no consulted gap spans the cut (the coarse gap scan reads
//! one event *before* the history window, so a device returning from an
//! absence that reaches below the cut is explicitly out of scope). The
//! probes here filter by exactly that rule and assert byte equality on
//! everything that passes.
//!
//! The second half reuses the `wal_recovery` harness idea — copy the WAL
//! directory at chosen instants to freeze crash points — to prove
//! compaction is WAL-coherent: a kill *before* the compaction checkpoint
//! recovers the uncompacted prefix bit-for-bit; a kill *after* recovers the
//! compacted state bit-for-bit; and a crash at the end recovers compacted
//! prefix + replayed tail, byte-identical to an uncrashed control that
//! compacted live.

use locater::prelude::*;
use locater::proto::{encode_response, WireResponse};
use locater::store::{Durability, FsyncPolicy};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

fn space() -> Space {
    SpaceBuilder::new("compaction-eq")
        .add_access_point("wap0", &["office-a", "office-b", "lounge"])
        .add_access_point("wap1", &["lounge", "lab"])
        .room_type("lounge", RoomType::Public)
        .room_owner("office-a", "alice")
        .room_owner("office-b", "bob")
        .build()
        .unwrap()
}

const MACS: [&str; 4] = [
    "aa:00:00:00:00:01",
    "aa:00:00:00:00:02",
    "aa:00:00:00:00:03",
    "aa:00:00:00:00:04",
];

/// Coarse history / fine affinity window of the test config (seconds).
const HISTORY: i64 = 3_000;
/// `ValidityConfig`'s default upper clamp on δ.
const DELTA_MAX: i64 = 1_800;
/// Event-time retention handed to `compact_all`.
const RETAIN: i64 = 5_000;
/// Segment span: small enough that a trace crosses many buckets.
const SPAN: i64 = 500;

/// A short consulted window so a bounded trace spans many retention cycles,
/// and no affinity cache so each answer depends only on store contents —
/// byte equality then checks exactly what compaction promises to preserve.
fn config() -> LocaterConfig {
    let mut config = LocaterConfig::default();
    config.coarse.history = HISTORY;
    config.fine.affinity_window = HISTORY;
    config.cache = CacheMode::Disabled;
    config
}

fn service(shards: usize) -> ShardedLocaterService {
    let store = EventStore::new(space()).with_segment_span(SPAN);
    ShardedLocaterService::new(store, config(), shards)
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

enum Op {
    Ingest(&'static str, i64, &'static str),
    Locate(&'static str, i64),
    Compact,
}

/// One seeded interleaving. Per-device frontiers advance by bounded steps
/// (< 2δ, with exact-δ and δ±1 ties), a third of the ingests are backfill
/// splices — reaching far enough back to land *below* an earlier cut — and
/// locates probe near the frontier of a random device.
fn trace(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = Lcg(seed);
    let mut frontier = [5_000i64; 4];
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let d = rng.below(4) as usize;
        let ap = if rng.below(2) == 0 { "wap0" } else { "wap1" };
        match rng.below(12) {
            0..=5 => {
                frontier[d] += match rng.below(6) {
                    0 => 600, // the default δ exactly
                    1 => 599,
                    2 => 601,
                    _ => 30 + rng.below(900) as i64,
                };
                ops.push(Op::Ingest(MACS[d], frontier[d], ap));
            }
            6..=8 => {
                let back = 1 + rng.below(6_000) as i64;
                ops.push(Op::Ingest(MACS[d], (frontier[d] - back).max(0), ap));
            }
            9 | 10 => ops.push(Op::Locate(MACS[d], frontier[d] - rng.below(900) as i64)),
            _ => ops.push(Op::Compact),
        }
    }
    ops
}

/// A locate answer as wire bytes, with the raw event counter zeroed: the
/// compacted store holds fewer events by design; the equivalence claim
/// covers the answer and the device epoch.
fn answer_bytes(service: &ShardedLocaterService, mac: &str, t: i64) -> String {
    let request = LocateRequest {
        mac: Some(mac.to_string()),
        device: None,
        t,
        fine_mode: None,
        cache: None,
        diagnostics: false,
    };
    match service.locate(&request) {
        Ok(mut response) => {
            response.events_seen = 0;
            encode_response(&WireResponse::located(&response))
        }
        Err(e) => format!("error: {e}"),
    }
}

/// `true` when a probe at `(times, t)` is inside the equivalence scope for
/// the given cut: the full consulted window clears the cut and every event
/// the gap scans reach back to is retained.
fn in_scope(times: &[i64], t: i64, cut: i64) -> bool {
    if t - HISTORY - DELTA_MAX < cut {
        return false;
    }
    let at = times.partition_point(|&x| x <= t);
    if at == 0 || times[at - 1] < cut {
        return false; // the gap containing t is left-bounded below the cut
    }
    let before_window = times.partition_point(|&x| x <= t - HISTORY + DELTA_MAX);
    before_window == 0 || times[before_window - 1] >= cut
}

#[test]
fn compacting_service_answers_byte_identically_inside_the_retained_window() {
    for shards in [1usize, 4] {
        for seed in [5u64, 71, 207] {
            let ops = trace(seed, 600);
            let compacted = service(shards);
            let reference = service(shards);
            let mut times: std::collections::HashMap<&str, Vec<i64>> =
                std::collections::HashMap::new();
            let mut compared = 0usize;
            for op in &ops {
                match op {
                    Op::Ingest(mac, t, ap) => {
                        compacted.ingest(mac, *t, ap).expect("compacted ingest");
                        reference.ingest(mac, *t, ap).expect("reference ingest");
                        let slot = times.entry(mac).or_default();
                        let at = slot.partition_point(|&x| x <= *t);
                        slot.insert(at, *t);
                    }
                    Op::Locate(mac, t) => {
                        let cut = compacted.compaction_status().last_cut.unwrap_or(i64::MIN);
                        let device_times = times.get(mac).map(Vec::as_slice).unwrap_or(&[]);
                        if !in_scope(device_times, *t, cut) {
                            continue;
                        }
                        compared += 1;
                        assert_eq!(
                            answer_bytes(&compacted, mac, *t),
                            answer_bytes(&reference, mac, *t),
                            "in-window answer drifted (shards={shards}, seed={seed}, \
                             mac={mac}, t={t}, cut={cut})"
                        );
                    }
                    Op::Compact => {
                        compacted.compact_all(RETAIN, None).expect("compact");
                    }
                }
            }
            let status = compacted.compaction_status();
            assert!(
                status.evicted_events > 0,
                "the trace must actually evict history (shards={shards}, seed={seed})"
            );
            assert!(
                compared >= 20,
                "too few probes survived scoping to mean anything \
                 (shards={shards}, seed={seed}, compared={compared})"
            );
            assert!(
                compacted.num_events() < reference.num_events(),
                "compaction kept every event (shards={shards}, seed={seed})"
            );
        }
    }
}

#[test]
fn late_backfill_below_the_cut_is_accepted_and_aged_out_by_the_next_run() {
    // An out-of-order event older than everything evicted so far must still
    // ingest cleanly (same id sequencing as the reference), must not disturb
    // retained answers, and must itself be evicted by the next run.
    let compacted = service(4);
    let reference = service(4);
    let mut t = 5_000;
    for i in 0..120 {
        let mac = MACS[i % 4];
        t += 400;
        compacted.ingest(mac, t, "wap0").unwrap();
        reference.ingest(mac, t, "wap0").unwrap();
    }
    compacted.compact_all(RETAIN, None).unwrap();
    let cut = compacted.compaction_status().last_cut.expect("evicted");
    assert!(cut > 5_000);

    // Splice far below the cut, into both services.
    let late = cut - 2_000;
    let id_c = compacted.ingest(MACS[0], late, "wap1").unwrap();
    let id_r = reference.ingest(MACS[0], late, "wap1").unwrap();
    assert_eq!(id_c, id_r, "backfill keeps id sequencing aligned");
    let probe = t - 300;
    assert_eq!(
        answer_bytes(&compacted, MACS[0], probe),
        answer_bytes(&reference, MACS[0], probe),
        "a below-cut splice must not disturb retained answers"
    );

    // The next run ages the splice out again.
    let before = compacted.num_events();
    compacted.compact_all(RETAIN, None).unwrap();
    assert_eq!(compacted.num_events(), before - 1);
}

// ---------------------------------------------------------------------------
// Kill-and-recover equivalence across a compaction run
// ---------------------------------------------------------------------------

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "locater-compact-eq-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durability(dir: &Path) -> Durability {
    Durability::new(dir).with_fsync(FsyncPolicy::Always)
}

fn durable_service(dir: &Path, shards: usize) -> ShardedLocaterService {
    let store = EventStore::new(space()).with_segment_span(SPAN);
    let (service, _) =
        ShardedLocaterService::with_durability(store, config(), shards, durability(dir))
            .expect("durable boot");
    service
}

fn recover(dir: &Path, shards: usize) -> (ShardedLocaterService, u64) {
    let store = EventStore::new(space()).with_segment_span(SPAN);
    let (service, report) =
        ShardedLocaterService::with_durability(store, config(), shards, durability(dir))
            .expect("recovery boot");
    (service, report.replayed)
}

fn snapshot_bytes(service: &ShardedLocaterService) -> Vec<u8> {
    service
        .store_snapshot()
        .to_snapshot_bytes()
        .expect("snapshot bytes")
}

fn copy_wal(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_wal(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

#[test]
fn compaction_survives_kill_and_recover_at_every_interesting_instant() {
    let ingests: Vec<(&'static str, i64, &'static str)> = trace(99, 400)
        .into_iter()
        .filter_map(|op| match op {
            Op::Ingest(mac, t, ap) => Some((mac, t, ap)),
            _ => None,
        })
        .collect();
    assert!(ingests.len() >= 150);
    let (prefix, suffix) = ingests.split_at(ingests.len() * 2 / 3);
    let horizon = prefix.iter().map(|&(_, t, _)| t).max().unwrap() - RETAIN;

    for shards in [1usize, 4] {
        let dir = scratch("live");
        let pre = scratch("pre");
        let post = scratch("post");
        {
            let live = durable_service(&dir, shards);
            for (mac, t, ap) in prefix {
                live.ingest(mac, *t, ap).unwrap();
            }
            copy_wal(&dir, &pre); // kill before the compaction checkpoint
            let status = live.compact_to(horizon, None).expect("durable compact");
            assert!(status.evicted_events > 0, "the run must evict something");
            copy_wal(&dir, &post); // kill right after
            for (mac, t, ap) in suffix {
                live.ingest(mac, *t, ap).unwrap();
            }
            // Dropped without a further checkpoint: the final crash.
        }

        // Uncrashed controls, rendered as snapshot bytes.
        let uncompacted_prefix = {
            let s = service(shards);
            for (mac, t, ap) in prefix {
                s.ingest(mac, *t, ap).unwrap();
            }
            snapshot_bytes(&s)
        };
        let compacted_prefix = {
            let s = service(shards);
            for (mac, t, ap) in prefix {
                s.ingest(mac, *t, ap).unwrap();
            }
            s.compact_to(horizon, None).unwrap();
            snapshot_bytes(&s)
        };
        let compacted_full = {
            let s = service(shards);
            for (mac, t, ap) in prefix {
                s.ingest(mac, *t, ap).unwrap();
            }
            s.compact_to(horizon, None).unwrap();
            for (mac, t, ap) in suffix {
                s.ingest(mac, *t, ap).unwrap();
            }
            snapshot_bytes(&s)
        };

        // Kill before the checkpoint: nothing is lost, nothing is compacted.
        let (recovered, replayed) = recover(&pre, shards);
        assert_eq!(replayed, prefix.len() as u64);
        assert_eq!(
            snapshot_bytes(&recovered),
            uncompacted_prefix,
            "pre-compaction kill must recover the uncompacted prefix (shards={shards})"
        );

        // Kill after: recovery restarts from the compacted checkpoint — the
        // WAL does not resurrect evicted history.
        let (recovered, replayed) = recover(&post, shards);
        assert_eq!(replayed, 0, "the compaction checkpoint covers the log");
        assert_eq!(
            snapshot_bytes(&recovered),
            compacted_prefix,
            "post-compaction kill must recover the compacted state (shards={shards})"
        );

        // Final crash: compacted checkpoint + replayed tail equals a control
        // that compacted live, byte for byte.
        let (recovered, replayed) = recover(&dir, shards);
        assert_eq!(replayed, suffix.len() as u64);
        assert_eq!(
            snapshot_bytes(&recovered),
            compacted_full,
            "crash after post-compaction ingest must recover compacted prefix \
             plus tail (shards={shards})"
        );

        for d in [&dir, &pre, &post] {
            std::fs::remove_dir_all(d).ok();
        }
    }
}
