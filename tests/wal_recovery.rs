//! The correctness cornerstone of the durability subsystem: **kill-and-recover
//! equivalence**. A durable `ShardedLocaterService` killed at an arbitrary
//! point of an LCG-seeded ingest interleaving, then recovered from its WAL,
//! must be *byte-identical* — snapshot bytes included — to an uncrashed
//! service that ingested exactly the durable prefix. With `fsync=always`
//! every acknowledged ingest is durable, so the durable prefix is simply
//! everything acknowledged before the kill.
//!
//! "Killed" here means the service is dropped without a checkpoint: nothing
//! runs between the last acknowledged append and the reboot, exactly like a
//! `SIGKILL` after the last `fdatasync` returned. On top of the clean kills,
//! the suite simulates *torn* final writes by truncating the last segment at
//! **every byte boundary** of its final frame, proves that a corrupt middle
//! segment is a typed error (never a panic, never silent data loss) repaired
//! by `truncate_wal`, and that a graceful drain checkpoints so a clean
//! shutdown leaves an empty tail.

use locater::prelude::*;
use locater::proto::{WireRequest, WireResponse};
use locater::server::ServerState;
use locater::store::{inspect_wal, truncate_wal, Durability, FsyncPolicy, WalError};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

fn space() -> Space {
    SpaceBuilder::new("wal-recovery")
        .add_access_point("wap0", &["office-a", "office-b", "lounge"])
        .add_access_point("wap1", &["lounge", "lab"])
        .room_type("lounge", RoomType::Public)
        .room_owner("office-a", "alice")
        .room_owner("office-b", "bob")
        .build()
        .unwrap()
}

const MACS: [&str; 4] = [
    "aa:00:00:00:00:01",
    "aa:00:00:00:00:02",
    "aa:00:00:00:00:03",
    "aa:00:00:00:00:04",
];

/// A tiny deterministic LCG so every interleaving is reproducible from its
/// seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One LCG-seeded ingest trace: timestamps deliberately include exact
/// cross-device ties and *out-of-order splices* (a third of the events land
/// earlier than the device's current tail), so replay exercises the same
/// splice paths the live ingest did.
fn trace(seed: u64, len: usize) -> Vec<(String, i64, String)> {
    let mut rng = Lcg(seed);
    let mut ops = Vec::with_capacity(len);
    for i in 0..len {
        let mac = MACS[rng.below(MACS.len() as u64) as usize].to_string();
        let ap = if rng.below(2) == 0 { "wap0" } else { "wap1" };
        let t = if rng.below(3) == 0 {
            // Splice: strictly earlier than the trace frontier.
            1_000 + rng.below(200) as i64
        } else {
            // Frontier with ties: several devices share the same slot.
            2_000 + (i as i64 / 4) * 60
        };
        ops.push((mac, t, ap.to_string()));
    }
    ops
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory per call (parallel test threads included).
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "locater-walrec-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durability(dir: &Path) -> Durability {
    Durability::new(dir).with_fsync(FsyncPolicy::Always)
}

/// The uncrashed reference: a plain (non-durable) service that ingested the
/// prefix, rendered as snapshot bytes.
fn reference_bytes(shards: usize, prefix: &[(String, i64, String)]) -> Vec<u8> {
    let service =
        ShardedLocaterService::new(EventStore::new(space()), LocaterConfig::default(), shards);
    for (mac, t, ap) in prefix {
        service.ingest(mac, *t, ap).expect("reference ingest");
    }
    service
        .store_snapshot()
        .to_snapshot_bytes()
        .expect("reference snapshot")
}

/// Boots a durable service on `dir`, ingests `prefix`, and drops it without a
/// checkpoint — a crash, as far as the log is concerned.
fn crash_after(dir: &Path, shards: usize, prefix: &[(String, i64, String)]) {
    let (service, _) = ShardedLocaterService::with_durability(
        EventStore::new(space()),
        LocaterConfig::default(),
        shards,
        durability(dir),
    )
    .expect("durable boot");
    for (mac, t, ap) in prefix {
        service.ingest(mac, *t, ap).expect("durable ingest");
    }
}

#[test]
fn kill_and_recover_is_byte_identical_to_the_uncrashed_prefix() {
    let ops = trace(17, 96);
    for shards in [1usize, 4] {
        for seed in [3u64, 29] {
            // Kill points chosen by the LCG: boundaries (0, 1, all) plus
            // arbitrary interior cuts.
            let mut rng = Lcg(seed);
            let mut kills = vec![0usize, 1, ops.len()];
            for _ in 0..3 {
                kills.push(1 + rng.below(ops.len() as u64 - 1) as usize);
            }
            for kill in kills {
                let dir = scratch("kill");
                crash_after(&dir, shards, &ops[..kill]);

                let (recovered, report) = ShardedLocaterService::with_durability(
                    EventStore::new(space()),
                    LocaterConfig::default(),
                    shards,
                    durability(&dir),
                )
                .expect("recovery boot");
                assert_eq!(
                    report.replayed, kill as u64,
                    "every acknowledged ingest is durable (shards={shards}, kill={kill})"
                );
                assert!(report.torn.is_empty(), "clean kill has no torn tail");
                assert_eq!(recovered.num_events(), kill);
                assert_eq!(
                    recovered
                        .store_snapshot()
                        .to_snapshot_bytes()
                        .expect("recovered snapshot"),
                    reference_bytes(shards, &ops[..kill]),
                    "recovered store must be byte-identical (shards={shards}, kill={kill})"
                );
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
}

#[test]
fn recovery_survives_a_reboot_of_a_reboot() {
    // Crash, recover, ingest more, crash again, recover again: the second
    // recovery sees the first recovery's checkpoint plus the new tail.
    let ops = trace(41, 60);
    let (first, second) = ops.split_at(35);
    let dir = scratch("rere");
    crash_after(&dir, 4, first);
    {
        let (service, report) = ShardedLocaterService::with_durability(
            EventStore::new(space()),
            LocaterConfig::default(),
            4,
            durability(&dir),
        )
        .expect("first recovery");
        assert_eq!(report.replayed, first.len() as u64);
        for (mac, t, ap) in second {
            service.ingest(mac, *t, ap).unwrap();
        }
        // Dropped without checkpoint: second crash.
    }
    let (recovered, report) = ShardedLocaterService::with_durability(
        EventStore::new(space()),
        LocaterConfig::default(),
        4,
        durability(&dir),
    )
    .expect("second recovery");
    assert!(report.checkpoint_loaded);
    assert_eq!(report.base_events, first.len(), "checkpointed at reboot");
    assert_eq!(report.replayed, second.len() as u64);
    assert_eq!(
        recovered.store_snapshot().to_snapshot_bytes().unwrap(),
        reference_bytes(4, &ops),
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Copies a WAL directory tree (checkpoint + shard dirs) into `dst`.
fn copy_wal(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_wal(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

#[test]
fn torn_final_frame_is_truncated_at_every_byte_boundary() {
    // Single shard, fsync always: ingest N events, recording the segment
    // length after each append, then simulate a torn final write by cutting
    // the file at every byte boundary inside the last frame.
    let ops = trace(7, 8);
    let (last, durable) = ops.split_last().unwrap();
    let dir = scratch("torn");
    let seg = {
        let (service, _) = ShardedLocaterService::with_durability(
            EventStore::new(space()),
            LocaterConfig::default(),
            1,
            durability(&dir),
        )
        .unwrap();
        for (mac, t, ap) in durable {
            service.ingest(mac, *t, ap).unwrap();
        }
        let shard_dir = dir.join("shard-0000");
        let seg = std::fs::read_dir(&shard_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .max()
            .expect("one active segment");
        let len_before = std::fs::metadata(&seg).unwrap().len();
        let (mac, t, ap) = last;
        service.ingest(mac, *t, ap).unwrap();
        let len_after = std::fs::metadata(&seg).unwrap().len();
        assert!(len_after > len_before, "the last frame grew the segment");
        (seg, len_before, len_after)
    };
    let (seg_path, len_before, len_after) = seg;
    let seg_name = seg_path.file_name().unwrap().to_owned();
    let expect_durable = reference_bytes(1, durable);
    let expect_full = reference_bytes(1, &ops);

    for cut in len_before..=len_after {
        let case = scratch("torncase");
        copy_wal(&dir, &case);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(case.join("shard-0000").join(&seg_name))
            .unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let (recovered, report) = ShardedLocaterService::with_durability(
            EventStore::new(space()),
            LocaterConfig::default(),
            1,
            durability(&case),
        )
        .unwrap_or_else(|e| panic!("torn tail at byte {cut} must recover, got {e}"));
        if cut == len_after {
            // Nothing torn: the full trace survives.
            assert!(report.torn.is_empty());
            assert_eq!(
                recovered.store_snapshot().to_snapshot_bytes().unwrap(),
                expect_full
            );
        } else {
            // The torn frame is discarded, the durable prefix survives
            // bit-for-bit — even when the cut slices the frame header. A cut
            // exactly at the previous frame boundary is simply a clean
            // (shorter) log, not a tear.
            if cut == len_before {
                assert!(report.torn.is_empty(), "byte {cut} is a frame boundary");
            } else {
                assert_eq!(report.torn.len(), 1, "cut at byte {cut} reports the tear");
            }
            assert_eq!(report.replayed, durable.len() as u64);
            assert_eq!(
                recovered.store_snapshot().to_snapshot_bytes().unwrap(),
                expect_durable,
                "durable prefix diverged after a cut at byte {cut}"
            );
        }
        drop(recovered);
        std::fs::remove_dir_all(&case).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_middle_segment_is_a_typed_error_and_truncate_repairs_it() {
    // Tiny segments force a rotation per append, so the log has several
    // sealed middles. Damage in a *middle* segment is not a torn tail — it
    // must refuse recovery with a typed error pointing at the repair tool.
    let ops = trace(23, 6);
    let dir = scratch("corrupt");
    let config = Durability::new(&dir)
        .with_fsync(FsyncPolicy::Always)
        .with_segment_max_bytes(1);
    {
        let (service, _) = ShardedLocaterService::with_durability(
            EventStore::new(space()),
            LocaterConfig::default(),
            1,
            config.clone(),
        )
        .unwrap();
        for (mac, t, ap) in &ops {
            service.ingest(mac, *t, ap).unwrap();
        }
    }
    let shard_dir = dir.join("shard-0000");
    let mut segments: Vec<_> = std::fs::read_dir(&shard_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segments.sort();
    assert!(segments.len() >= 4, "rotation produced sealed middles");

    // Flip one payload byte in the second segment.
    let victim = &segments[1];
    let mut bytes = std::fs::read(victim).unwrap();
    let idx = bytes.len() - 1;
    bytes[idx] ^= 0xFF;
    std::fs::write(victim, bytes).unwrap();

    let err = ShardedLocaterService::with_durability(
        EventStore::new(space()),
        LocaterConfig::default(),
        1,
        config.clone(),
    )
    .expect_err("corrupt middle segment must refuse recovery");
    assert!(
        matches!(err, WalError::Corrupt { .. }),
        "expected WalError::Corrupt, got {err:?}"
    );
    assert!(
        err.to_string().contains("wal truncate"),
        "the error must point at the repair tool: {err}"
    );

    // Repair: everything from the first invalid frame onward is discarded,
    // and the next boot replays exactly the frames that survived.
    let report = truncate_wal(&dir).expect("truncate repairs");
    assert_eq!(report.len(), 1);
    assert!(report[0].truncated.is_some());
    assert!(report[0].segments_removed >= 1);
    let surviving: u64 = inspect_wal(&dir)
        .unwrap()
        .shards
        .iter()
        .flat_map(|s| s.segments.iter())
        .map(|s| s.frames)
        .sum();
    assert_eq!(surviving, 1, "only the first segment's frame survives");

    let (recovered, recovery) = ShardedLocaterService::with_durability(
        EventStore::new(space()),
        LocaterConfig::default(),
        1,
        config,
    )
    .expect("repaired log recovers");
    assert_eq!(recovery.replayed, surviving);
    assert_eq!(
        recovered.store_snapshot().to_snapshot_bytes().unwrap(),
        reference_bytes(1, &ops[..surviving as usize]),
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The full restart-spanning idempotence chain: an ingest acknowledged (and
/// WAL-durable) whose ack the client never saw, a crash, a reboot that
/// re-seeds the serving layer's replay window from the recovery report —
/// and the client's retry answered from the reconstructed ack instead of
/// applied a second time.
#[test]
fn retries_of_acked_ingests_replay_across_a_crash_reboot() {
    let dir = scratch("dedup-reseed");
    {
        let (service, _) = ShardedLocaterService::with_durability(
            EventStore::new(space()),
            LocaterConfig::default(),
            2,
            durability(&dir),
        )
        .expect("durable boot");
        let state = ServerState::new(service, None);
        let ack = state.execute(&WireRequest::Ingest {
            mac: MACS[0].into(),
            t: 1_000,
            ap: "wap0".into(),
            request_id: Some(7_001),
        });
        assert!(matches!(ack, WireResponse::Ingested { .. }), "got {ack:?}");
        // Crash: dropped without a checkpoint. The ack never reached the
        // client, which will retry the same request id after the reboot.
    }
    let (service, report) = ShardedLocaterService::with_durability(
        EventStore::new(space()),
        LocaterConfig::default(),
        2,
        durability(&dir),
    )
    .expect("reboot");
    assert_eq!(report.replayed, 1);
    let state = ServerState::new(service, None);
    assert_eq!(state.seed_dedup_from_recovery(&report), 1);
    let retry = state.execute(&WireRequest::Ingest {
        mac: MACS[0].into(),
        t: 1_000,
        ap: "wap0".into(),
        request_id: Some(7_001),
    });
    let WireResponse::Ingested { mac, t, ap, .. } = retry else {
        panic!("retry must replay an ack, got {retry:?}");
    };
    assert_eq!((mac.as_str(), t, ap.as_str()), (MACS[0], 1_000, "wap0"));
    assert_eq!(state.stats().events, 1, "no second apply");
    assert_eq!(state.stats().deduped, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graceful_drain_checkpoints_and_leaves_an_empty_tail() {
    let ops = trace(11, 24);
    let dir = scratch("drain");
    {
        let (service, _) = ShardedLocaterService::with_durability(
            EventStore::new(space()),
            LocaterConfig::default(),
            4,
            durability(&dir),
        )
        .unwrap();
        let state = ServerState::new(service, None);
        for (mac, t, ap) in &ops {
            state.execute(&WireRequest::Ingest {
                mac: mac.clone(),
                t: *t,
                ap: ap.clone(),
                request_id: None,
            });
        }
        let status = state.service().wal_status().expect("durable service");
        assert_eq!(status.frames, ops.len() as u64, "every ingest was framed");
        assert_eq!(status.checkpoints, 1, "the boot checkpoint");
        assert_eq!(status.fsync, "always");

        state.execute(&WireRequest::Shutdown);
        let summary = state.finish_drain();
        assert!(!summary.has_failure(), "drain: {summary:?}");
        let bytes = summary.checkpoint.expect("wal attached").unwrap();
        assert!(bytes > 0);
        let status = state.service().wal_status().unwrap();
        assert_eq!(status.frames, 0, "clean shutdown leaves an empty tail");
        assert_eq!(status.checkpoints, 2, "boot + drain");
    }

    // The empty tail is visible on disk and on reboot: nothing to replay.
    let inspection = inspect_wal(&dir).unwrap();
    let frames: u64 = inspection
        .shards
        .iter()
        .flat_map(|s| s.segments.iter())
        .map(|s| s.frames)
        .sum();
    assert_eq!(frames, 0);
    let (recovered, report) = ShardedLocaterService::with_durability(
        EventStore::new(space()),
        LocaterConfig::default(),
        4,
        durability(&dir),
    )
    .unwrap();
    assert!(report.checkpoint_loaded);
    assert_eq!(report.replayed, 0);
    assert_eq!(report.base_events, ops.len());
    assert_eq!(
        recovered.store_snapshot().to_snapshot_bytes().unwrap(),
        reference_bytes(4, &ops),
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_across_a_shard_count_change_is_byte_identical() {
    // The WAL layout is per-shard, but recovery merges by global event id —
    // crash with 4 shards, recover with 1 (and vice versa), same bytes.
    let ops = trace(53, 48);
    for (crash_shards, boot_shards) in [(4usize, 1usize), (1, 4)] {
        let dir = scratch("reshard");
        crash_after(&dir, crash_shards, &ops);
        let (recovered, report) = ShardedLocaterService::with_durability(
            EventStore::new(space()),
            LocaterConfig::default(),
            boot_shards,
            durability(&dir),
        )
        .expect("recovery boot");
        assert_eq!(report.replayed, ops.len() as u64);
        assert_eq!(
            recovered.store_snapshot().to_snapshot_bytes().unwrap(),
            reference_bytes(boot_shards, &ops),
            "{crash_shards} shards crashed, {boot_shards} recovered"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
