//! Integration tests of the public API surface exposed through the `locater` facade:
//! space metadata, CSV ingestion, query forms, configuration builders, baselines and
//! evaluation metrics — the pieces a downstream user composes.

use locater::core::baselines::{Baseline1, Baseline2, BaselineSystem};
use locater::core::metrics::{EvaluationReport, TruthLocation};
use locater::prelude::*;
use locater::space::SpaceMetadata;
use locater::store::{parse_csv, RawEvent};

fn demo_space() -> Space {
    SpaceBuilder::new("demo")
        .add_access_point("wap-a", &["101", "102", "103", "kitchen"])
        .add_access_point("wap-b", &["103", "104", "105", "kitchen"])
        .room_type("kitchen", RoomType::Public)
        .room_owner("101", "aa:aa:aa:aa:aa:01")
        .room_owner("104", "aa:aa:aa:aa:aa:02")
        .build()
        .unwrap()
}

#[test]
fn space_metadata_roundtrips_through_json() {
    let space = demo_space();
    let metadata = SpaceMetadata::from_space(&space);
    let json = metadata.to_json().unwrap();
    let rebuilt = SpaceMetadata::from_json(&json).unwrap().build().unwrap();
    assert_eq!(rebuilt.num_rooms(), space.num_rooms());
    assert_eq!(rebuilt.num_access_points(), space.num_access_points());
    assert_eq!(
        rebuilt.preferred_rooms("aa:aa:aa:aa:aa:01").len(),
        space.preferred_rooms("aa:aa:aa:aa:aa:01").len()
    );
}

#[test]
fn csv_ingestion_and_store_roundtrip() {
    let csv = "\
mac,timestamp,ap
aa:aa:aa:aa:aa:01,1000,wap-a
aa:aa:aa:aa:aa:02,1100,wap-b
aa:aa:aa:aa:aa:01,5000,wap-b
";
    let rows = parse_csv(csv).unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0], RawEvent::new("aa:aa:aa:aa:aa:01", 1000, "wap-a"));

    let store = EventStore::from_csv(demo_space(), csv).unwrap();
    assert_eq!(store.num_events(), 3);
    assert_eq!(store.num_devices(), 2);
    let exported = store.to_csv();
    let back = EventStore::from_csv(demo_space(), &exported).unwrap();
    assert_eq!(back.num_events(), store.num_events());
}

#[test]
fn query_by_mac_and_by_device_agree() {
    let mut store = EventStore::new(demo_space());
    store
        .ingest_raw("aa:aa:aa:aa:aa:01", 1_000, "wap-a")
        .unwrap();
    store
        .ingest_raw("aa:aa:aa:aa:aa:01", 9_000, "wap-a")
        .unwrap();
    let device = store.device_id("aa:aa:aa:aa:aa:01").unwrap();
    let locater = Locater::new(store, LocaterConfig::default());
    let by_mac = locater
        .locate(&Query::by_mac("aa:aa:aa:aa:aa:01", 5_000))
        .unwrap();
    let by_device = locater.locate(&Query::by_device(device, 5_000)).unwrap();
    assert_eq!(by_mac.location, by_device.location);
    assert_eq!(by_mac.device, by_device.device);

    // Unknown devices produce a descriptive error, not a panic.
    let err = locater.locate(&Query::by_mac("ff:ff:ff:ff:ff:ff", 5_000));
    assert!(err.is_err());
    assert!(err.unwrap_err().to_string().contains("unknown device"));
}

#[test]
fn config_builders_cover_the_evaluation_matrix() {
    // The four system variants of the evaluation are all expressible through the
    // config builders.
    let variants = [
        ("I-LOCATER", FineMode::Independent, CacheMode::Disabled),
        ("I-LOCATER+C", FineMode::Independent, CacheMode::Enabled),
        ("D-LOCATER", FineMode::Dependent, CacheMode::Disabled),
        ("D-LOCATER+C", FineMode::Dependent, CacheMode::Enabled),
    ];
    for (_, mode, cache) in variants {
        let config = LocaterConfig::default()
            .with_fine_mode(mode)
            .with_cache(cache)
            .with_history(locater::events::clock::weeks(4));
        assert_eq!(config.fine.mode, mode);
        assert_eq!(config.cache, cache);
        assert_eq!(config.coarse.history, locater::events::clock::weeks(4));
    }
}

#[test]
fn baselines_and_metrics_compose_into_a_report() {
    let mut store = EventStore::new(demo_space());
    // A short day of data for the two office owners.
    for slot in 0..12 {
        store
            .ingest_raw("aa:aa:aa:aa:aa:01", 9 * 3600 + slot * 600, "wap-a")
            .unwrap();
        store
            .ingest_raw("aa:aa:aa:aa:aa:02", 9 * 3600 + slot * 600 + 30, "wap-b")
            .unwrap();
    }
    let space = store.space().clone();
    let room_101 = space.room_id("101").unwrap();
    let room_104 = space.room_id("104").unwrap();

    let mut report = EvaluationReport::new("Baseline comparison");
    let mut b1: Box<dyn BaselineSystem> = Box::new(Baseline1::default());
    let mut b2: Box<dyn BaselineSystem> = Box::new(Baseline2::default());
    let d1 = store.device_id("aa:aa:aa:aa:aa:01").unwrap();
    let d2 = store.device_id("aa:aa:aa:aa:aa:02").unwrap();

    for t in [9 * 3600 + 100, 9 * 3600 + 2_500, 10 * 3600] {
        report.record(
            "baseline2",
            &space,
            TruthLocation::Room(room_101),
            &b2.locate(&store, d1, t).location,
        );
        report.record(
            "baseline1",
            &space,
            TruthLocation::Room(room_104),
            &b1.locate(&store, d2, t).location,
        );
    }
    // Baseline2 places the owner of room 101 in their own office every time.
    assert_eq!(report.group("baseline2").unwrap().correct_room, 3);
    let markdown = report.to_markdown();
    assert!(markdown.contains("baseline1"));
    assert!(markdown.contains("baseline2"));
    assert!(report.overall().queries == 6);
}

#[test]
fn live_service_surface_ingest_locate_and_epochs() {
    // The LocaterService / LocateRequest / LocateResponse surface a downstream
    // deployment composes: build → serve → ingest → (epoch) invalidate.
    let service = LocaterService::new(EventStore::new(demo_space()), LocaterConfig::default());
    assert_eq!(service.num_events(), 0);
    assert_eq!(service.config().cache, CacheMode::Enabled);

    // Ingest by single event and by batch.
    service.ingest("aa:aa:aa:aa:aa:01", 1_000, "wap-a").unwrap();
    let batch = [
        RawEvent::new("aa:aa:aa:aa:aa:01", 9_000, "wap-a"),
        RawEvent::new("aa:aa:aa:aa:aa:02", 1_100, "wap-b"),
    ];
    assert_eq!(service.ingest_batch(batch.iter()).unwrap(), 2);
    assert_eq!(service.num_events(), 3);
    assert_eq!(service.num_devices(), 2);

    // Epoch observability: one counter per device, bumped per event.
    let d1 = service
        .with_store(|s| s.device_id("aa:aa:aa:aa:aa:01"))
        .unwrap();
    let d2 = service
        .with_store(|s| s.device_id("aa:aa:aa:aa:aa:02"))
        .unwrap();
    assert_eq!(service.device_epoch(d1), 2);
    assert_eq!(service.device_epoch(d2), 1);

    // Request builders: target forms, overrides, diagnostics opt-in.
    let request = LocateRequest::by_mac("aa:aa:aa:aa:aa:01", 5_000);
    let by_device = LocateRequest::by_device(d1, 5_000)
        .with_fine_mode(FineMode::Dependent)
        .with_diagnostics();
    let response = service.locate(&request).unwrap();
    let response_by_device = service.locate(&by_device).unwrap();
    assert_eq!(response.answer.device, response_by_device.answer.device);
    assert_eq!(response.device_epoch, 2);
    assert_eq!(response.events_seen, 3);
    assert!(response.diagnostics.is_none());
    assert!(response_by_device.diagnostics.is_some());
    assert_eq!(response.location(), response.answer.location);

    // Cache bypass per request leaves the caching engine untouched.
    let cold = service
        .locate(&LocateRequest::by_mac("aa:aa:aa:aa:aa:01", 5_000).bypass_cache())
        .unwrap();
    assert_eq!(cold.answer.t, 5_000);

    // Batch through the request layer, in request order with in-place errors.
    let requests = vec![
        LocateRequest::by_mac("aa:aa:aa:aa:aa:01", 5_000),
        LocateRequest::by_mac("ff:ff:ff:ff:ff:ff", 5_000),
    ];
    let responses = service.locate_batch(&requests, 2);
    assert!(responses[0].is_ok());
    assert!(responses[1].is_err());

    // A fresh ingest invalidates: the service stays queryable and the answer
    // tracks the new data (equivalence is covered by tests/service_equivalence.rs).
    service.ingest("aa:aa:aa:aa:aa:01", 5_500, "wap-b").unwrap();
    assert_eq!(service.device_epoch(d1), 3);
    let after = service.locate(&request).unwrap();
    assert_eq!(after.device_epoch, 3);
    assert!(after.answer.is_inside());

    // Legacy interop: Query converts into LocateRequest, Locater into a service.
    let legacy = LocateRequest::from_query(&Query::by_mac("aa:aa:aa:aa:aa:01", 5_000));
    assert_eq!(legacy.to_query(), Query::by_mac("aa:aa:aa:aa:aa:01", 5_000));
    let snapshot = service.store_snapshot();
    let frozen = Locater::new(snapshot, LocaterConfig::default());
    let service_again: LocaterService = frozen.into_service();
    assert_eq!(service_again.num_events(), service.num_events());
}

#[test]
fn simulator_output_feeds_directly_into_the_cleaning_engine() {
    let output = Simulator::new(1).run_scenario(
        &locater::sim::ScenarioConfig::new(ScenarioKind::Mall)
            .with_days(4)
            .with_scale(0.15),
    );
    let store = output.build_store();
    let locater = Locater::new(store, LocaterConfig::default());
    // Query every monitored person at noon of day 2; all answers must be well-formed.
    for person in output.monitored() {
        let t = locater::events::clock::at(2, 12, 0, 0);
        match locater.locate(&Query::by_mac(&person.mac, t)) {
            Ok(answer) => assert!((0.0..=1.0).contains(&answer.confidence)),
            Err(e) => assert!(e.to_string().contains("unknown device")),
        }
    }
    // Ground truth, person records and events agree on the set of devices.
    for record in &output.people {
        assert!(record.measured_predictability >= 0.0 && record.measured_predictability <= 1.0);
    }
}
