//! The correctness cornerstone of the sharded service: **a
//! `ShardedLocaterService` with any shard count answers byte-identically to
//! the single-shard `LocaterService`** — with the caching engine *enabled*, so
//! per-shard cache placement, the multi-shard read view, and per-shard epoch
//! tables are all proven equivalent rather than sidestepped.
//!
//! Both services replay the same LCG-seeded interleaving of `ingest_batch`,
//! single `ingest`s and `locate` calls (which warm affinity edges and coarse
//! models over intermediate store states, on whichever shard owns them), then
//! a probe trace compares answers query by query. The synthetic workload
//! deliberately contains *exact timestamp ties across devices* so the
//! canonical `(t, device)` neighbor order — the property that makes sharding
//! representation-transparent — is exercised, not dodged.

use locater::prelude::*;
use locater::store::RawEvent;

fn space() -> Space {
    SpaceBuilder::new("shard-equivalence")
        .add_access_point("wap0", &["office-a", "office-b", "lounge"])
        .add_access_point("wap1", &["lounge", "lab", "office-c"])
        .room_type("lounge", RoomType::Public)
        .room_owner("office-a", "alice")
        .room_owner("office-b", "bob")
        .room_owner("office-c", "carol")
        .build()
        .unwrap()
}

const MACS: [&str; 4] = ["alice", "bob", "carol", "dave"];

/// One day of events for every device. Unlike the service-equivalence fixture,
/// the morning block is ingested at **identical timestamps across devices**
/// (no per-device offset), so the global timeline is full of cross-device
/// ties; the afternoon block keeps a small offset and splits across APs.
fn day_chunk(day: i64) -> Vec<RawEvent> {
    let mut events = Vec::new();
    for (idx, mac) in MACS.iter().enumerate() {
        for slot in 0..6 {
            let t = locater::events::clock::at(day, 9, slot * 20, 0);
            events.push(RawEvent::new(*mac, t, "wap0"));
        }
        let afternoon_ap = if idx >= 2 { "wap1" } else { "wap0" };
        for slot in 0..6 {
            let t = locater::events::clock::at(day, 13, slot * 20, 0) + idx as i64 * 40;
            events.push(RawEvent::new(*mac, t, afternoon_ap));
        }
    }
    events
}

/// Probe times over the final dataset: covered instants (with co-located
/// neighbors at tied timestamps), short (lunch) gaps, long (overnight) gaps,
/// and out-of-span times — every coarse path, plus fine steps whose neighbor
/// order the sharded view must reproduce.
fn probes(days: i64) -> Vec<LocateRequest> {
    let mut probes = Vec::new();
    for day in [days - 1, days - 2] {
        for mac in MACS {
            probes.push(LocateRequest::by_mac(
                mac,
                locater::events::clock::at(day, 9, 30, 10),
            ));
            probes.push(LocateRequest::by_mac(
                mac,
                locater::events::clock::at(day, 12, 15, 0),
            ));
            probes.push(LocateRequest::by_mac(
                mac,
                locater::events::clock::at(day, 3, 0, 0),
            ));
        }
    }
    probes.push(LocateRequest::by_mac(
        "alice",
        locater::events::clock::at(days + 300, 12, 0, 0),
    ));
    probes
}

/// A tiny deterministic LCG so the interleavings are reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Replays one LCG-seeded interleaving of ingests and locates on both a
/// single-shard `LocaterService` and a `ShardedLocaterService` with `shards`
/// partitions, asserting byte-identical behaviour throughout.
fn assert_shard_equivalence(config: LocaterConfig, shards: usize, seed: u64, days: i64) {
    let single = LocaterService::new(EventStore::new(space()), config);
    let sharded = ShardedLocaterService::new(EventStore::new(space()), config, shards);
    assert_eq!(sharded.num_shards(), shards);
    let mut rng = Lcg(seed);

    for day in 0..days {
        // Warm caches and models over the partial dataset on both services —
        // the same queries in the same order.
        if day > 0 {
            let queries = 1 + rng.below(4);
            for _ in 0..queries {
                let mac = MACS[rng.below(MACS.len() as u64) as usize];
                let q_day = rng.below(day as u64) as i64;
                let hour = 8 + rng.below(8) as i64;
                let t = locater::events::clock::at(q_day, hour, rng.below(60) as i64, 0);
                let request = LocateRequest::by_mac(mac, t);
                let a = single.locate(&request);
                let b = sharded.locate(&request);
                match (a, b) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.answer, b.answer, "warm-up query diverged (seed {seed})");
                        assert_eq!(a.events_seen, b.events_seen);
                        assert_eq!(a.device_epoch, b.device_epoch);
                    }
                    (a, b) => assert_eq!(a.is_err(), b.is_err()),
                }
            }
        }
        let chunk = day_chunk(day);
        // Mix the ingestion APIs: bulk chunks on both, plus a few single-event
        // appends (routing through the home-shard fast path).
        if rng.below(2) == 0 {
            single.ingest_batch(chunk.iter()).expect("chunk ingests");
            sharded.ingest_batch(chunk.iter()).expect("chunk ingests");
        } else {
            for event in &chunk {
                single.ingest(&event.mac, event.t, &event.ap).unwrap();
                sharded.ingest(&event.mac, event.t, &event.ap).unwrap();
            }
        }
    }

    // The interleaving must actually have warmed cache state on the sharded
    // service, or the probes would not test cross-shard cache placement.
    assert!(
        sharded.cache_stats().0 > 0,
        "interleaving never warmed the sharded affinity caches (seed {seed})"
    );

    // Stores agree bit for bit: the sharded partitions rejoin to exactly the
    // single service's store.
    assert_eq!(single.store_snapshot(), sharded.store_snapshot());
    assert_eq!(single.num_events(), sharded.num_events());
    assert_eq!(single.num_devices(), sharded.num_devices());

    // Probe trace: both services answer the same queries in the same order,
    // warming their caches as they go. Answers must stay byte-identical.
    for (idx, probe) in probes(days).iter().enumerate() {
        match (single.locate(probe), sharded.locate(probe)) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    a.answer, b.answer,
                    "probe {idx} diverged (shards={shards}, seed={seed})"
                );
                assert_eq!(a.events_seen, b.events_seen);
                assert_eq!(a.device_epoch, b.device_epoch);
            }
            (a, b) => assert_eq!(a.is_err(), b.is_err(), "probe {idx} outcome"),
        }
    }

    // Cache liveness totals agree: edges partitioned across shards sum to the
    // single service's cache.
    assert_eq!(single.live_cache_stats(), sharded.live_cache_stats());
    assert_eq!(single.cache_stats(), sharded.cache_stats());
    let per_shard: usize = sharded.shard_stats().iter().map(|s| s.edges).sum();
    assert_eq!(per_shard, sharded.cache_stats().0);

    // The batch path: identical on both services for every job count. Both
    // sides run every batch (a batch's merge warms the cache, so the k-th
    // batch must be compared against the k-th batch).
    let batch_probes = probes(days);
    for jobs in [1usize, 2, 8] {
        let single_batch = single.locate_batch(&batch_probes, jobs);
        let sharded_batch = sharded.locate_batch(&batch_probes, jobs);
        assert_eq!(single_batch.len(), sharded_batch.len());
        for (idx, (a, b)) in single_batch.iter().zip(&sharded_batch).enumerate() {
            match (a, b) {
                (Ok(a), Ok(b)) => assert_eq!(
                    a.answer, b.answer,
                    "batch probe {idx} diverged (shards={shards}, jobs={jobs}, seed={seed})"
                ),
                (a, b) => assert_eq!(a.is_err(), b.is_err(), "batch probe {idx} outcome"),
            }
        }
    }

    // Purging stale state is equivalent too (same totals evicted).
    assert_eq!(single.purge_stale(), sharded.purge_stale());
    assert_eq!(single.cache_stats(), sharded.cache_stats());
}

#[test]
fn sharded_answers_equal_single_shard_independent_mode() {
    for (shards, seed) in [(2usize, 1u64), (3, 7), (8, 42)] {
        assert_shard_equivalence(LocaterConfig::default(), shards, seed, 6);
    }
}

#[test]
fn sharded_answers_equal_single_shard_dependent_mode() {
    for (shards, seed) in [(2usize, 11u64), (3, 23), (8, 5)] {
        assert_shard_equivalence(
            LocaterConfig::default().with_fine_mode(FineMode::Dependent),
            shards,
            seed,
            6,
        );
    }
}

#[test]
fn delta_reestimation_stays_equivalent_across_shards() {
    // `reestimate_deltas` must produce the same δs (written into every
    // replicated device table) and the same invalidation effects as the
    // single-shard service.
    let config = LocaterConfig::default();
    let single = LocaterService::new(EventStore::new(space()), config);
    let sharded = ShardedLocaterService::new(EventStore::new(space()), config, 3);
    for day in 0..5 {
        single.ingest_batch(day_chunk(day).iter()).unwrap();
        sharded.ingest_batch(day_chunk(day).iter()).unwrap();
    }
    single.reestimate_deltas();
    sharded.reestimate_deltas();
    assert_eq!(sharded.live_cache_stats(), (0, 0));
    assert_eq!(single.store_snapshot(), sharded.store_snapshot());
    for probe in probes(5) {
        let a = single.locate(&probe).unwrap();
        let b = sharded.locate(&probe).unwrap();
        assert_eq!(a.answer, b.answer);
    }
}

#[test]
fn sharded_snapshot_roundtrip_is_bit_identical() {
    // save → load with a different shard count → identical answers and
    // identical re-saved bytes: the snapshot format is shard-count agnostic.
    let config = LocaterConfig::default();
    let sharded = ShardedLocaterService::new(EventStore::new(space()), config, 4);
    for day in 0..3 {
        sharded.ingest_batch(day_chunk(day).iter()).unwrap();
    }
    let dir = std::env::temp_dir().join(format!("locater-shard-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("service.snap");
    sharded.save_snapshot(&path).unwrap();

    let reloaded = ShardedLocaterService::from_snapshot(&path, config, 2).unwrap();
    assert_eq!(reloaded.num_shards(), 2);
    assert_eq!(reloaded.store_snapshot(), sharded.store_snapshot());
    for probe in probes(3) {
        let a = sharded.locate(&probe).unwrap();
        let b = reloaded.locate(&probe).unwrap();
        assert_eq!(a.answer, b.answer);
    }

    let repath = dir.join("service2.snap");
    reloaded.save_snapshot(&repath).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&repath).unwrap(),
        "snapshot bytes must be independent of the shard count"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn single_event_ingest_errors_match_single_shard() {
    let single = LocaterService::new(EventStore::new(space()), LocaterConfig::default());
    let sharded = ShardedLocaterService::new(EventStore::new(space()), LocaterConfig::default(), 3);

    // Unknown AP for a brand-new device: nothing interned on either side.
    for service_err in [
        single.ingest("ghost", 1_000, "wap9").unwrap_err(),
        sharded.ingest("ghost", 1_000, "wap9").unwrap_err(),
    ] {
        assert!(matches!(service_err, IngestError::UnknownAccessPoint(_)));
    }
    assert_eq!(single.num_devices(), 0);
    assert_eq!(sharded.num_devices(), 0);

    // Negative timestamp: same error, nothing interned.
    assert!(single.ingest("ghost", -5, "wap0").is_err());
    assert!(sharded.ingest("ghost", -5, "wap0").is_err());
    assert_eq!(sharded.num_devices(), 0);

    // A failing batch keeps the prefix on both sides, epochs included.
    let events = [
        RawEvent::new("alice", 1_000, "wap0"),
        RawEvent::new("bob", 1_100, "wap1"),
        RawEvent::new("alice", 1_200, "nope"),
        RawEvent::new("bob", 1_300, "wap1"),
    ];
    assert!(single.ingest_batch(events.iter()).is_err());
    assert!(sharded.ingest_batch(events.iter()).is_err());
    assert_eq!(single.num_events(), sharded.num_events());
    assert_eq!(sharded.num_events(), 2);
    let alice = sharded.device_id("alice").unwrap();
    let bob = sharded.device_id("bob").unwrap();
    assert_eq!(sharded.device_epoch(alice), 1);
    assert_eq!(sharded.device_epoch(bob), 1);
    assert_eq!(single.store_snapshot(), sharded.store_snapshot());
}
