//! The correctness cornerstone of the co-location index: **every affinity the
//! indexed fast paths compute is bit-identical to the reference timeline
//! scan** — same event counts, same float divisions — for random ingest
//! interleavings (out-of-window events, out-of-order arrivals and δ-boundary
//! ties included), under per-device sharding at N ∈ {2, 3, 8}, and across
//! snapshot round-trips in both index modes.
//!
//! The reference semantics is [`ScanRead`]: a view of the same store with the
//! index masked, which forces [`AffinityEngine`] onto the original
//! segment-pruned timeline scans. Equality is asserted on `f64::to_bits`, not
//! approximate closeness, and extends to whole [`FineLocalizer`] outcomes
//! (`FineOutcome` comparison is exact on every probability).

use locater::core::fine::{AffinityEngine, FineConfig, FineLocalizer, FineMode};
use locater::prelude::*;
use locater::store::{ScanRead, ShardedRead, SnapshotIndexMode};
use locater_store::EventRead;

fn space() -> Space {
    SpaceBuilder::new("affinity-index-equivalence")
        .add_access_point("wap0", &["office-a", "office-b", "lounge"])
        .add_access_point("wap1", &["lounge", "lab", "office-c"])
        .add_access_point("wap2", &["office-c", "office-d"])
        .room_type("lounge", RoomType::Public)
        .room_owner("office-a", "alice")
        .room_owner("office-b", "bob")
        .room_owner("office-c", "carol")
        .build()
        .unwrap()
}

const MACS: [&str; 5] = ["alice", "bob", "carol", "dave", "erin"];
const APS: [&str; 3] = ["wap0", "wap1", "wap2"];

/// A tiny deterministic LCG so the interleavings are reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Builds a store from one LCG-seeded interleaving: mostly in-order events
/// with occasional out-of-order arrivals, plus deliberate δ-boundary ties
/// around a handful of anchor instants.
fn random_store(seed: u64, events: usize) -> (EventStore, Vec<i64>) {
    let mut rng = Lcg(seed);
    let mut store = EventStore::new(space()).with_segment_span(4_000 + (seed % 7) as i64 * 997);
    let mut t = 1_000i64;
    let mut anchors = Vec::new();
    for i in 0..events {
        t += rng.below(900) as i64;
        let mac = MACS[rng.below(MACS.len() as u64) as usize];
        let ap = APS[rng.below(APS.len() as u64) as usize];
        // ~1 in 8 events arrives out of order, up to ~2 segments in the past.
        let at = if rng.below(8) == 0 {
            (t - 1 - rng.below(9_000) as i64).max(0)
        } else {
            t
        };
        store.ingest_raw(mac, at, ap).unwrap();
        if i % 25 == 0 {
            anchors.push(t);
        }
    }
    store.estimate_deltas();

    // δ-boundary ties: for a few anchors, place events of two devices exactly
    // δ apart (and δ ± 1) so the closed/open validity bounds are exercised.
    for (idx, &anchor) in anchors.iter().take(6).enumerate() {
        let a = MACS[idx % MACS.len()];
        let b = MACS[(idx + 1) % MACS.len()];
        let delta = store.delta(store.device_id(a).unwrap());
        let ap = APS[idx % APS.len()];
        store.ingest_raw(a, anchor, ap).unwrap();
        for off in [delta - 1, delta, delta + 1] {
            store.ingest_raw(b, anchor + off, ap).unwrap();
        }
    }
    (store, anchors)
}

/// Device-affinity probes for a store: all pairs plus a few triples, at
/// anchor times, window edges and out-of-window instants.
fn probe_times(anchors: &[i64]) -> Vec<i64> {
    let mut times: Vec<i64> = anchors.to_vec();
    if let (Some(&first), Some(&last)) = (anchors.first(), anchors.last()) {
        times.extend([
            first - 100_000,
            last + 100_000,
            last + 1,
            (first + last) / 2,
        ]);
    }
    times
}

/// Asserts that every affinity and fine outcome computed through `indexed`
/// equals the reference scan over the same view, bit for bit.
fn assert_engine_equivalence(indexed: &dyn EventRead, label: &str, anchors: &[i64]) {
    let scan = ScanRead::new(indexed);
    let config = FineConfig::default();
    let fast = AffinityEngine::new(indexed, config.weights, config.affinity_window);
    let slow = AffinityEngine::new(&scan, config.weights, config.affinity_window);
    let devices: Vec<DeviceId> = (0..indexed.num_devices() as u32)
        .map(DeviceId::new)
        .collect();

    for &until in &probe_times(anchors) {
        for &a in &devices {
            for &b in &devices {
                let x = fast.pair_affinity(a, b, until);
                let y = slow.pair_affinity(a, b, until);
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{label}: pair ({a}, {b}) at {until}: {x} != {y}"
                );
                // Session answers must match the one-shot engine bit for bit.
                let session = fast.pair_session(a, until);
                let s = session.affinity(b);
                assert_eq!(
                    s.to_bits(),
                    x.to_bits(),
                    "{label}: session pair ({a}, {b}) at {until}: {s} != {x}"
                );
                // The floored variant implements exactly the contribution
                // predicate.
                for floor in [0.0, 0.05, 0.2, 0.5, 0.99] {
                    let contributing = session.contributing_affinity(b, floor);
                    let expected = (x >= floor && x > 0.0).then_some(x);
                    assert_eq!(
                        contributing.map(f64::to_bits),
                        expected.map(f64::to_bits),
                        "{label}: contributing_affinity({a}, {b}, {floor}) at {until}"
                    );
                }
            }
        }
        // Triples (and a duplicate-member set) through the k-way path.
        for window in devices.windows(3) {
            let x = fast.device_affinity(window, until);
            let y = slow.device_affinity(window, until);
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: triple at {until}");
        }
        let dup = [devices[0], devices[0]];
        assert_eq!(
            fast.device_affinity(&dup, until).to_bits(),
            slow.device_affinity(&dup, until).to_bits(),
            "{label}: duplicate-member set at {until}"
        );
    }

    // Whole fine outcomes — cold locate over both views, both modes.
    for mode in [FineMode::Independent, FineMode::Dependent] {
        let localizer = FineLocalizer::new(FineConfig {
            mode,
            ..FineConfig::default()
        });
        for &t_q in probe_times(anchors).iter().take(6) {
            for &device in &devices {
                let Some(region) = indexed.covering_region(device, t_q) else {
                    continue;
                };
                let via_index = localizer.locate(indexed, device, t_q, region, None);
                let via_scan = localizer.locate(&scan, device, t_q, region, None);
                assert_eq!(
                    via_index, via_scan,
                    "{label}: {mode} outcome for {device} at {t_q} diverged"
                );
            }
        }
    }
}

#[test]
fn indexed_affinities_equal_scan_affinities() {
    for seed in [3u64, 17, 4242] {
        let (store, anchors) = random_store(seed, 260);
        assert_engine_equivalence(&store, &format!("seed {seed}"), &anchors);
    }
}

#[test]
fn equivalence_survives_split_and_rejoin() {
    let (store, anchors) = random_store(99, 240);
    for shards in [2usize, 3, 8] {
        let pieces = store.split(shards);
        // The sharded view routes postings to owner shards; affinities over it
        // must equal both its own scan view and the combined store.
        let view = ShardedRead::new(pieces.iter().collect());
        assert_engine_equivalence(&view, &format!("sharded view N={shards}"), &anchors);

        let config = FineConfig::default();
        let over_view = AffinityEngine::new(&view, config.weights, config.affinity_window);
        let over_store = AffinityEngine::new(&store, config.weights, config.affinity_window);
        for &until in probe_times(&anchors).iter().take(5) {
            for a in 0..store.num_devices() as u32 {
                for b in 0..store.num_devices() as u32 {
                    let (a, b) = (DeviceId::new(a), DeviceId::new(b));
                    assert_eq!(
                        over_view.pair_affinity(a, b, until).to_bits(),
                        over_store.pair_affinity(a, b, until).to_bits(),
                        "sharded vs combined pair ({a}, {b}) at {until} (N={shards})"
                    );
                }
            }
        }

        // Rejoin restores the identical store, co-location index included
        // (`EventStore` equality covers every index structure).
        let rejoined = EventStore::rejoin(&pieces).unwrap();
        assert_eq!(rejoined, store, "rejoin(split(store, {shards})) != store");
    }
}

#[test]
fn equivalence_survives_snapshot_roundtrips_in_both_modes() {
    let (store, anchors) = random_store(7_777, 220);
    for mode in [SnapshotIndexMode::Rebuild, SnapshotIndexMode::Embedded] {
        let bytes = store.to_snapshot_bytes_with(mode).unwrap();
        let back = EventStore::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back, store, "round-trip through {mode:?} must be identical");
        assert_engine_equivalence(&back, &format!("snapshot {mode:?}"), &anchors);
    }
}

#[test]
fn live_ingest_interleavings_keep_index_and_scan_in_step() {
    // Ingest/locate interleavings through the live service: after every burst
    // the service's store (index included) equals a scan-checked rebuild, and
    // engine answers stay bit-identical.
    let mut rng = Lcg(0xC01C);
    let service = LocaterService::new(EventStore::new(space()), LocaterConfig::default());
    let mut t = 1_000i64;
    for burst in 0..12 {
        for _ in 0..40 {
            t += rng.below(700) as i64;
            let mac = MACS[rng.below(MACS.len() as u64) as usize];
            let ap = APS[rng.below(APS.len() as u64) as usize];
            service.ingest(mac, t, ap).unwrap();
        }
        let snapshot = service.store_snapshot();
        let config = FineConfig::default();
        let fast = AffinityEngine::new(&snapshot, config.weights, config.affinity_window);
        let scan = ScanRead::new(&snapshot);
        let slow = AffinityEngine::new(&scan, config.weights, config.affinity_window);
        for a in 0..snapshot.num_devices() as u32 {
            for b in 0..snapshot.num_devices() as u32 {
                let (a, b) = (DeviceId::new(a), DeviceId::new(b));
                let until = t - rng.below(2_000) as i64;
                assert_eq!(
                    fast.pair_affinity(a, b, until).to_bits(),
                    slow.pair_affinity(a, b, until).to_bits(),
                    "burst {burst}: pair ({a}, {b}) at {until}"
                );
            }
        }
        // And the service's answers match a freshly built service (the
        // index is rebuilt from scratch there) — the service_equivalence
        // guarantee extended over the index.
        let rebuilt = LocaterService::new(snapshot, LocaterConfig::default());
        let probe = LocateRequest::by_mac(MACS[burst % MACS.len()], t - 300);
        match (service.locate(&probe), rebuilt.locate(&probe)) {
            (Ok(live), Ok(fresh)) => assert_eq!(live.answer, fresh.answer, "burst {burst}"),
            (live, fresh) => assert_eq!(live.is_err(), fresh.is_err(), "burst {burst}"),
        }
    }
}
