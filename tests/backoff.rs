//! Property-based tests for the retry client's backoff schedule: across
//! arbitrary policies, delays stay inside their jitter envelope, the
//! envelope itself is monotone and capped, and equal seeds reproduce the
//! schedule byte-for-byte (the determinism the chaos tests lean on).

use locater::client::BackoffPolicy;
use proptest::prelude::*;
use std::time::Duration;

fn arb_policy() -> impl Strategy<Value = BackoffPolicy> {
    (1u64..5_000, 1u64..60_000, any::<u64>()).prop_map(|(base_ms, extra_ms, seed)| BackoffPolicy {
        base: Duration::from_millis(base_ms),
        // The cap is at least the base, so the envelope always has room.
        cap: Duration::from_millis(base_ms + extra_ms),
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every delay sits inside `[envelope/2, envelope]` and never exceeds
    /// the cap; the pre-jitter envelope is monotone non-decreasing and
    /// saturates exactly at the cap.
    #[test]
    fn delays_respect_the_envelope_and_the_cap(policy in arb_policy(), attempts in 1u32..64) {
        let mut previous_envelope = Duration::ZERO;
        for n in 0..attempts {
            let envelope = policy.envelope(n);
            prop_assert!(envelope <= policy.cap);
            prop_assert!(envelope >= previous_envelope, "envelope must be monotone");
            previous_envelope = envelope;

            let delay = policy.delay(n);
            prop_assert!(delay <= envelope, "attempt {n}: {delay:?} > {envelope:?}");
            prop_assert!(delay >= envelope / 2, "attempt {n}: {delay:?} below half envelope");
            prop_assert!(delay <= policy.cap);
        }
        // Enough doublings always reach the cap exactly.
        prop_assert_eq!(policy.envelope(80), policy.cap);
    }

    /// The schedule is a pure function of the policy: the same policy yields
    /// a byte-identical schedule every time, and changing only the seed
    /// yields a different one (jitter decorrelates distinct clients).
    #[test]
    fn schedules_are_seed_deterministic(policy in arb_policy(), attempts in 8u32..64) {
        let first = policy.schedule(attempts);
        let second = policy.schedule(attempts);
        prop_assert_eq!(&first, &second, "same policy, same schedule");
        prop_assert_eq!(first.len(), attempts as usize);

        let reseeded = BackoffPolicy { seed: policy.seed.wrapping_add(1), ..policy };
        // With ≥ 8 jittered draws, two adjacent seeds colliding on every
        // draw would mean the mixer is broken.
        prop_assert_ne!(first, reseeded.schedule(attempts));
    }
}
