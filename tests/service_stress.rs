//! Concurrent ingest-while-querying stress test for the live service: writer
//! threads append events while reader threads call `locate`, asserting that no
//! call panics, every query resolves, and — after quiescence and a bulk
//! invalidation — answers are equivalent to a freshly rebuilt service over the
//! final store.

use locater::prelude::*;
use locater::store::RawEvent;
use std::sync::atomic::{AtomicUsize, Ordering};

const MACS: [&str; 4] = ["alice", "bob", "carol", "dave"];

fn space() -> Space {
    SpaceBuilder::new("stress")
        .add_access_point("wap0", &["office-a", "office-b", "lounge"])
        .add_access_point("wap1", &["lounge", "lab", "office-c"])
        .room_type("lounge", RoomType::Public)
        .room_owner("office-a", "alice")
        .room_owner("office-b", "bob")
        .room_owner("office-c", "carol")
        .build()
        .unwrap()
}

/// The seed store: every device already known, with one day of history so
/// queries always resolve while the writers append more days.
fn seed_store() -> EventStore {
    let mut store = EventStore::new(space());
    for (idx, mac) in MACS.iter().enumerate() {
        for slot in 0..8 {
            let t = locater::events::clock::at(0, 9, slot * 30, 0) + idx as i64 * 20;
            store.ingest_raw(mac, t, "wap0").unwrap();
        }
    }
    store
}

/// The event stream one writer appends: `days` further days of activity for
/// every device, in a writer-specific day range so the two writers never
/// produce colliding timestamps.
fn writer_stream(first_day: i64, days: i64) -> Vec<RawEvent> {
    let mut events = Vec::new();
    for day in first_day..first_day + days {
        for (idx, mac) in MACS.iter().enumerate() {
            let ap = if idx % 2 == 0 { "wap0" } else { "wap1" };
            for slot in 0..6 {
                let t = locater::events::clock::at(day, 9, slot * 25, 0) + idx as i64 * 20;
                events.push(RawEvent::new(*mac, t, ap));
            }
        }
    }
    events
}

#[test]
fn concurrent_ingest_and_locate_is_safe_and_converges() {
    let service = LocaterService::new(seed_store(), LocaterConfig::default());
    let answered = AtomicUsize::new(0);
    let ingested = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // Two writers appending disjoint day ranges, in small batches so the
        // readers interleave with many store mutations.
        for (writer, first_day) in [(0i64, 1i64), (1, 4)] {
            let service = &service;
            let ingested = &ingested;
            scope.spawn(move || {
                let stream = writer_stream(first_day, 3);
                for chunk in stream.chunks(8) {
                    let count = service
                        .ingest_batch(chunk.iter())
                        .unwrap_or_else(|e| panic!("writer {writer} failed to ingest: {e}"));
                    ingested.fetch_add(count, Ordering::Relaxed);
                }
            });
        }
        // Three readers issuing queries over the growing dataset.
        for reader in 0..3usize {
            let service = &service;
            let answered = &answered;
            scope.spawn(move || {
                for i in 0..40usize {
                    let mac = MACS[(reader + i) % MACS.len()];
                    let day = (i % 7) as i64;
                    let minute = ((reader * 17 + i * 7) % 60) as i64;
                    let t = locater::events::clock::at(day, 9 + (i % 6) as i64, minute, 0);
                    let request = if i % 5 == 0 {
                        LocateRequest::by_mac(mac, t).with_diagnostics()
                    } else {
                        LocateRequest::by_mac(mac, t)
                    };
                    let response = service
                        .locate(&request)
                        .unwrap_or_else(|e| panic!("reader {reader} query failed: {e}"));
                    assert!((0.0..=1.0).contains(&response.answer.confidence));
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    assert_eq!(answered.load(Ordering::Relaxed), 120);
    let expected_events = seed_store().num_events() + ingested.load(Ordering::Relaxed);
    assert_eq!(service.num_events(), expected_events);

    // Post-quiescence equivalence. Queries that ran after a device's last
    // ingest may have left *valid* warm state a cold rebuild would not have,
    // so bulk-invalidate first; the equivalence then proves that everything
    // the concurrent phase cached is invisible once its epochs moved on.
    service.invalidate_all();
    assert_eq!(service.live_cache_stats(), (0, 0));
    let fresh = LocaterService::new(service.store_snapshot(), LocaterConfig::default());
    for day in [2i64, 5, 6] {
        for mac in MACS {
            for (hour, minute) in [(9, 40), (12, 10), (3, 0)] {
                let t = locater::events::clock::at(day, hour, minute, 0);
                let request = LocateRequest::by_mac(mac, t);
                let live = service.locate(&request).unwrap();
                let rebuilt = fresh.locate(&request).unwrap();
                assert_eq!(
                    live.answer, rebuilt.answer,
                    "post-quiescence answer diverged for {mac} at day {day} {hour}:{minute}"
                );
            }
        }
    }
}
