//! # LOCATER
//!
//! A from-scratch Rust reproduction of **LOCATER: Cleaning WiFi Connectivity Datasets
//! for Semantic Localization** (Lin et al., VLDB 2020).
//!
//! LOCATER locates devices (and hence the people carrying them) at *semantic* indoor
//! granularities — building, region, room — using nothing but the association logs that
//! every enterprise WiFi deployment already produces, i.e. tuples of
//! `⟨mac address, timestamp, access point⟩`. It treats localization as two data
//! cleaning problems:
//!
//! 1. **Coarse-grained localization** (missing-value detection and repair): the log is
//!    sporadic, so between two connectivity events of a device there are *gaps* during
//!    which its location is unknown. LOCATER classifies each gap as
//!    outside-the-building or inside a specific *region* (the coverage area of one AP)
//!    using bootstrapped heuristics plus a semi-supervised logistic-regression
//!    self-training loop ([`locater_core::coarse`]).
//! 2. **Fine-grained localization** (disambiguation): an AP covers many rooms, so the
//!    region must be disambiguated to a single room. LOCATER combines *room affinities*
//!    (derived from space metadata: preferred / public / private rooms) with *group
//!    affinities* (how often devices are co-located) in an iterative Bayesian algorithm
//!    with early-stopping bounds ([`locater_core::fine`]).
//!
//! A *caching engine* ([`locater_core::cache`]) accumulates pairwise device affinities
//! across queries into a global affinity graph so that later queries converge faster.
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`locater_space`] | space model: buildings, regions, rooms, APs, coverage, metadata |
//! | [`locater_events`] | connectivity events, devices, validity periods, gap detection |
//! | [`locater_store`] | segmented event storage, indices, per-device sharding, CSV/NDJSON ingestion, binary snapshots, statistics |
//! | [`locater_learn`] | logistic regression + semi-supervised self-training (Algorithm 1) |
//! | [`locater_core`] | coarse & fine localization, caching, baselines, metrics, the `Locater` system |
//! | [`locater_sim`] | SmartBench-style scenario simulator + DBH-like campus dataset generator |
//! | [`locater_proto`] | versioned NDJSON wire protocol: `WireRequest`/`WireResponse` frames, codec, REPL syntax |
//! | [`locater_client`] | resilient TCP client: reconnect, per-request timeouts, seeded backoff, idempotent retries |
//! | [`locater_server`] | std-net TCP server: worker pool, pipelining, admission control, graceful drain |
//!
//! ## Quickstart
//!
//! ```
//! use locater::prelude::*;
//!
//! // Build a small space: one building, 2 APs, a handful of rooms.
//! let space = SpaceBuilder::new("demo-building")
//!     .add_access_point("wap1", &["1001", "1002", "1003"])
//!     .add_access_point("wap2", &["1003", "1004", "1005"])
//!     .room_type("1003", RoomType::Public)
//!     .preferred_room("aa:bb:cc:dd:ee:01", "1001")
//!     .build()
//!     .expect("valid space");
//!
//! // Ingest connectivity events.
//! let mut store = EventStore::new(space.clone());
//! store.ingest_raw("aa:bb:cc:dd:ee:01", 1_000, "wap1").unwrap();
//! store.ingest_raw("aa:bb:cc:dd:ee:01", 4_000, "wap1").unwrap();
//!
//! // Ask LOCATER where the device was between the two events.
//! let locater = Locater::new(store, LocaterConfig::default());
//! let answer = locater.locate(&Query::by_mac("aa:bb:cc:dd:ee:01", 2_500)).unwrap();
//! assert!(answer.is_inside());
//! ```
//!
//! ## Live service
//!
//! [`Locater`](locater_core::system::Locater) freezes its dataset at
//! construction. A long-running deployment that keeps ingesting WiFi events
//! while answering queries uses
//! [`LocaterService`](locater_core::system::LocaterService) instead: events
//! appended through `ingest`/`ingest_batch` bump per-device *epoch counters*
//! that invalidate exactly the cached state (affinity-graph edges, per-device
//! coarse models) derived from the touched device's history — answers after
//! any ingest sequence are identical to those of a freshly built service over
//! the same data. When concurrent ingest throughput matters, the same service
//! scales out as [`ShardedLocaterService`](locater_core::system::ShardedLocaterService)
//! (`N` per-device partitions, byte-identical answers for every `N`;
//! `LocaterService` is the `N = 1` case).
//!
//! ```
//! use locater::prelude::*;
//!
//! let space = SpaceBuilder::new("demo")
//!     .add_access_point("wap1", &["1001", "1002"])
//!     .build()
//!     .expect("valid space");
//! let service = LocaterService::new(EventStore::new(space), LocaterConfig::default());
//!
//! service.ingest("aa:bb:cc:dd:ee:01", 1_000, "wap1").unwrap();
//! service.ingest("aa:bb:cc:dd:ee:01", 4_000, "wap1").unwrap();
//!
//! let response = service
//!     .locate(&LocateRequest::by_mac("aa:bb:cc:dd:ee:01", 2_500).with_diagnostics())
//!     .unwrap();
//! assert!(response.answer.is_inside());
//! assert!(response.diagnostics.is_some());
//! ```

pub use locater_client as client;
pub use locater_core as core;
pub use locater_events as events;
pub use locater_learn as learn;
pub use locater_proto as proto;
pub use locater_server as server;
pub use locater_sim as sim;
pub use locater_space as space;
pub use locater_store as store;

/// Convenience re-exports of the most commonly used types across all LOCATER crates.
pub mod prelude {
    pub use locater_client::{BackoffPolicy, ClientConfig, ClientError, RetryClient};
    pub use locater_core::baselines::{Baseline1, Baseline2, BaselineSystem};
    pub use locater_core::metrics::{EvaluationReport, PrecisionCounts};
    pub use locater_core::system::{
        Answer, CacheMode, FineMode, LocateRequest, LocateResponse, Locater, LocaterConfig,
        LocaterService, Query, ShardStats, ShardedLocaterService,
    };
    pub use locater_events::{ConnectivityEvent, Device, DeviceId, EventId, Gap, Timestamp};
    pub use locater_proto::{WireError, WireRequest, WireResponse, WireStats, PROTOCOL_VERSION};
    pub use locater_server::{Server, ServerConfig, ServerReport, ServerState};
    pub use locater_sim::{
        campus::CampusConfig, scenario::ScenarioKind, GroundTruth, SimOutput, Simulator,
    };
    pub use locater_space::{AccessPointId, RegionId, RoomId, RoomType, Space, SpaceBuilder};
    pub use locater_store::{DeviceTimeline, EventStore, IngestError, StoreError};
}
