//! `locater-cli` — command-line front end for the LOCATER cleaning engine.
//!
//! The CLI covers the operational loop of a deployment without writing any Rust:
//! inspect a connectivity log, clean individual queries, batch-clean a whole query
//! file, and generate synthetic datasets to experiment with.
//!
//! ```text
//! locater-cli stats    <space.json> <events.csv>
//! locater-cli locate   <space.json> <events.csv> <mac> <timestamp> [--dependent] [--no-cache]
//! locater-cli batch    <space.json> <events.csv> <queries.csv> [--dependent] [--jobs N] [--shards N]
//! locater-cli serve    <space.json> [<events.csv>] [--dependent] [--no-cache] [--shards N]
//! locater-cli serve    --snapshot <store.snap> [--dependent] [--no-cache] [--shards N]
//! locater-cli serve    ... --listen <addr> [--workers N] [--queue N] [--idle-timeout SECS] [--drain-snapshot PATH]
//! locater-cli serve    ... --wal-dir <dir> [--fsync always|every=N|interval=MS] [--wal-segment-bytes N]
//! locater-cli serve    ... --retain SECS [--compact-interval SECS] [--spill-dir DIR] [--segment-span SECS]
//! locater-cli request  <addr> [--retries N] <verb line or raw JSON frame>
//! locater-cli compact  <store.snap> (--retain SECS | --horizon T) [--spill-dir DIR] [--out PATH]
//! locater-cli snapshot save <space.json> <events.csv> <out.snap> [--embed-index]
//! locater-cli snapshot load <store.snap>
//! locater-cli wal inspect  <wal-dir>
//! locater-cli wal truncate <wal-dir>
//! locater-cli simulate campus|metro_campus|office|university|mall|airport <out-prefix> [--days N] [--seed N]
//! ```
//!
//! * `space.json` is the [`SpaceMetadata`] format
//!   (AP coverage, public rooms, room owners, preferred rooms).
//! * `events.csv` / `queries.csv` are `mac,timestamp,ap` and `mac,timestamp` files.
//! * `snapshot save` ingests a CSV log once (estimating validity periods) and
//!   persists the whole store — space, device table, segment runs — as one
//!   versioned binary file; `snapshot load` verifies and summarizes it; and
//!   `serve --snapshot` cold-starts the live service from it without replaying
//!   the CSV.
//! * `simulate metro_campus` generates the large metropolitan-campus corpus,
//!   sized by `LOCATER_METRO_SCALE` / `LOCATER_METRO_WEEKS` (see
//!   `CampusConfig::metro_from_env`).
//! * `batch` runs the parallel batch pipeline (`LocaterService::locate_batch`
//!   through the typed request layer): every query is answered against a frozen
//!   snapshot of the affinity cache, so the output is deterministic and
//!   identical for every `--jobs` value (earlier CLI releases answered rows one
//!   by one, progressively warming the cache, so row-level confidences could
//!   differ from today's output).
//! * `serve` starts a live [`ShardedLocaterService`] (`--shards N`, default 1 —
//!   the plain `LocaterService` regime). Without `--listen` it reads commands
//!   from stdin — the legacy verb syntax (`ingest <mac,timestamp,ap>`,
//!   `locate <mac> <timestamp>`, `stats`, `compact [retain-seconds]`,
//!   `ping`, `snapshot <path>`, `shutdown`, `quit`) or raw NDJSON [`WireRequest`]
//!   frames; the REPL is the
//!   wire protocol over stdio (`locater_proto::parse_repl_line`). With
//!   `--listen <addr>` it serves the same protocol over TCP
//!   ([`locater::server::Server`]): pipelined NDJSON frames, bounded admission
//!   (`--queue`, explicit `overloaded` responses), idle timeouts, and graceful
//!   drain + `--drain-snapshot` on SIGTERM or a `shutdown` request. `stats`
//!   reports totals plus one line per shard and the serving-layer counters
//!   (see `docs/OPERATIONS.md`); answers are byte-identical for every
//!   `--shards` value.
//! * `serve --wal-dir` makes ingests durable: every accepted event is framed
//!   into a per-shard write-ahead log before it mutates the store, a crash is
//!   recovered on the next boot (checkpoint snapshot + WAL tail replay, torn
//!   final frames truncated), and a graceful drain checkpoints so a clean
//!   shutdown leaves an empty tail. `--fsync` picks the durability/throughput
//!   trade-off (`always` per record, `every=N` records, `interval=MS`);
//!   `--wal-segment-bytes` bounds segment files before rotation.
//! * `wal inspect` reports a WAL directory read-only — checkpoint, segments,
//!   frame counts, id ranges, damage; `wal truncate` repairs a damaged log by
//!   discarding everything from the first invalid frame onward (the manual
//!   counterpart of the torn-tail truncation recovery applies automatically
//!   to the final segment).
//! * `serve --retain SECS` bounds the hot tier: history older than the
//!   retention (measured from the event-time watermark, rounded down to a
//!   whole segment bucket) is compacted away — distilled into per-device
//!   per-AP dwell summaries and, with `--spill-dir`, spilled as reloadable
//!   snapshot files. `--compact-interval SECS` schedules the compaction tick
//!   on a background thread off the ingest path (`--listen` mode); the
//!   `compact` REPL/wire verb triggers one on demand. Answers inside the
//!   retained window are byte-identical with compaction on or off.
//! * `compact` is the offline counterpart: load a snapshot, evict history
//!   below the horizon (absolute `--horizon` or watermark-relative
//!   `--retain`), persist the cold tiers, write the compacted snapshot back
//!   (in place, or to `--out`).
//! * `request` sends one request (verb syntax or raw JSON) to a running
//!   `serve --listen` server and prints the raw NDJSON response frame.
//! * `simulate` writes `<out-prefix>.space.json`, `<out-prefix>.events.csv` and
//!   `<out-prefix>.truth.csv` so the other commands (and external tools) can consume
//!   a fully synthetic deployment.

use locater::prelude::*;
use locater::proto::{parse_repl_line, ReplCommand, WireResponse};
use locater::server::{
    describe_location, render_response, DrainSummary, ServerConfig, ServerState,
};
use locater::space::SpaceMetadata;
use locater::store::{
    inspect_wal, truncate_wal, Durability, FsyncPolicy, RecoveryReport, SnapshotIndexMode,
    WalInspection,
};
use std::fmt::Write as _;
use std::io::{BufRead, Write as _};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Why the CLI failed: `Usage` errors (bad arguments) reprint the usage text;
/// `Runtime` errors (I/O, corrupt files, failed drains) only print the
/// message — a failed drain snapshot should not scroll the help screen past
/// the diagnostic. Both exit non-zero.
#[derive(Debug)]
enum CliError {
    Usage(String),
    Runtime(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(message) | CliError::Runtime(message) => f.write_str(message),
        }
    }
}

/// Formatted messages come from operations that already ran — runtime errors.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Runtime(message)
    }
}

/// Static messages describe missing or malformed arguments — usage errors.
impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::Usage(message.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            if matches!(error, CliError::Usage(_)) {
                eprintln!();
                eprintln!("{}", usage());
            }
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  locater-cli stats    <space.json> <events.csv>\n  locater-cli locate   <space.json> <events.csv> <mac> <timestamp> [--dependent] [--no-cache]\n  locater-cli batch    <space.json> <events.csv> <queries.csv> [--dependent] [--jobs N] [--shards N]\n  locater-cli serve    <space.json> [<events.csv>] [--dependent] [--no-cache] [--shards N]\n  locater-cli serve    --snapshot <store.snap> [--dependent] [--no-cache] [--shards N]\n  locater-cli serve    ... --listen <addr> [--workers N] [--queue N] [--idle-timeout SECS] [--drain-snapshot PATH]\n  locater-cli serve    ... --wal-dir <dir> [--fsync always|every=N|interval=MS] [--wal-segment-bytes N]\n  locater-cli serve    ... --retain SECS [--compact-interval SECS] [--spill-dir DIR] [--segment-span SECS]\n  locater-cli request  <addr> <verb line or raw JSON frame>\n  locater-cli compact  <store.snap> (--retain SECS | --horizon T) [--spill-dir DIR] [--out PATH]\n  locater-cli snapshot save <space.json> <events.csv> <out.snap> [--embed-index]\n  locater-cli snapshot load <store.snap>\n  locater-cli wal inspect  <wal-dir>\n  locater-cli wal truncate <wal-dir>\n  locater-cli simulate campus|metro_campus|office|university|mall|airport <out-prefix> [--days N] [--seed N]"
}

/// Parses arguments and runs one command, returning the text to print.
fn run(args: &[String]) -> Result<String, CliError> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "stats" => stats(
            args.get(1).ok_or("missing space.json")?,
            args.get(2).ok_or("missing events.csv")?,
        ),
        "locate" => locate(args),
        "batch" => batch(args),
        "serve" => serve(args),
        "request" => request(args),
        "compact" => compact(args),
        "snapshot" => snapshot(args),
        "wal" => wal(args),
        "simulate" => simulate(args),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

fn load_space(space_path: &str) -> Result<Space, String> {
    let metadata_json = std::fs::read_to_string(space_path)
        .map_err(|e| format!("cannot read {space_path}: {e}"))?;
    SpaceMetadata::from_json(&metadata_json)
        .map_err(|e| format!("invalid space metadata: {e}"))?
        .build()
        .map_err(|e| format!("invalid space metadata: {e}"))
}

fn load_store(space_path: &str, events_path: &str) -> Result<EventStore, String> {
    let space = load_space(space_path)?;
    let csv = std::fs::read_to_string(events_path)
        .map_err(|e| format!("cannot read {events_path}: {e}"))?;
    let mut store =
        EventStore::from_csv(space, &csv).map_err(|e| format!("cannot ingest events: {e}"))?;
    store.estimate_deltas();
    Ok(store)
}

fn config_from_flags(args: &[String]) -> LocaterConfig {
    let mut config = LocaterConfig::default();
    if args.iter().any(|a| a == "--dependent") {
        config = config.with_fine_mode(FineMode::Dependent);
    }
    if args.iter().any(|a| a == "--no-cache") {
        config = config.with_cache(CacheMode::Disabled);
    }
    config
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|idx| args.get(idx + 1))
        .cloned()
}

/// Parses `--shards N` (default 1 — the single-shard `LocaterService` regime).
fn shards_from_flags(args: &[String]) -> Result<usize, CliError> {
    match flag_value(args, "--shards") {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&shards| shards >= 1)
            .ok_or("--shards must be a positive integer".into()),
        None if args.iter().any(|a| a == "--shards") => Err("--shards requires a value".into()),
        None => Ok(1),
    }
}

/// Parses an optional non-negative integer-seconds flag (`--retain`,
/// `--horizon`, `--compact-interval`), rejecting a dangling flag or a bad
/// value.
fn secs_flag(args: &[String], name: &str) -> Result<Option<Timestamp>, CliError> {
    match flag_value(args, name) {
        Some(v) => v
            .parse::<Timestamp>()
            .ok()
            .filter(|&n| n >= 0)
            .map(Some)
            .ok_or_else(|| CliError::Usage(format!("{name} must be a non-negative integer"))),
        None if args.iter().any(|a| a == name) => {
            Err(CliError::Usage(format!("{name} requires a value")))
        }
        None => Ok(None),
    }
}

/// Parses the durability flags: `--wal-dir DIR` switches the WAL on,
/// `--fsync` and `--wal-segment-bytes` tune it (and are rejected without it).
fn durability_from_flags(args: &[String]) -> Result<Option<Durability>, CliError> {
    let Some(dir) = flag_value(args, "--wal-dir") else {
        if args.iter().any(|a| a == "--wal-dir") {
            return Err("--wal-dir requires a directory".into());
        }
        for flag in ["--fsync", "--wal-segment-bytes"] {
            if args.iter().any(|a| a == flag) {
                return Err(CliError::Usage(format!("{flag} requires --wal-dir")));
            }
        }
        return Ok(None);
    };
    let mut durability = Durability::new(dir);
    if let Some(v) = flag_value(args, "--fsync") {
        durability = durability.with_fsync(FsyncPolicy::parse(&v).map_err(CliError::Usage)?);
    } else if args.iter().any(|a| a == "--fsync") {
        return Err("--fsync requires a policy (always|every=N|interval=MS)".into());
    }
    if let Some(v) = flag_value(args, "--wal-segment-bytes") {
        let bytes = v
            .parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--wal-segment-bytes must be a positive integer")?;
        durability = durability.with_segment_max_bytes(bytes);
    } else if args.iter().any(|a| a == "--wal-segment-bytes") {
        return Err("--wal-segment-bytes requires a value".into());
    }
    Ok(Some(durability))
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

fn stats(space_path: &str, events_path: &str) -> Result<String, CliError> {
    let store = load_store(space_path, events_path)?;
    let stats = store.stats();
    let mut out = String::new();
    let _ = writeln!(out, "{}", stats.to_report());
    let (public, private) = store.space().room_type_counts();
    let _ = writeln!(
        out,
        "rooms: {public} public / {private} private; {} devices have registered preferred rooms",
        store.space().preferred_map().len()
    );
    let mut device_gaps = 0usize;
    for device in store.devices() {
        device_gaps += store.gaps_of(device.id).len();
    }
    let _ = writeln!(
        out,
        "gaps to clean across all devices: {device_gaps} (δ estimated per device, mean {:.0}s)",
        stats.mean_delta_seconds
    );
    let index = store.colocation_stats();
    let _ = writeln!(
        out,
        "co-location index: {} AP posting lists, {} time buckets over {} events ({} devices indexed)",
        index.ap_lists, index.buckets, index.events, index.devices
    );
    Ok(out)
}

fn locate(args: &[String]) -> Result<String, CliError> {
    let space_path = args.get(1).ok_or("missing space.json")?;
    let events_path = args.get(2).ok_or("missing events.csv")?;
    let mac = args.get(3).ok_or("missing mac")?;
    let t: Timestamp = args
        .get(4)
        .ok_or("missing timestamp")?
        .parse()
        .map_err(|_| "timestamp must be an integer number of seconds")?;
    let store = load_store(space_path, events_path)?;
    let locater = Locater::new(store, config_from_flags(args));
    let answer = locater
        .locate(&Query::by_mac(mac.clone(), t))
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "{mac} @ {}: {} (decided by {:?}, confidence {:.2})\n",
        locater::events::clock::format_timestamp(t),
        describe_location(locater.store().space(), &answer.location),
        answer.coarse_method,
        answer.confidence
    ))
}

fn batch(args: &[String]) -> Result<String, CliError> {
    let space_path = args.get(1).ok_or("missing space.json")?;
    let events_path = args.get(2).ok_or("missing events.csv")?;
    let queries_path = args.get(3).ok_or("missing queries.csv")?;
    let jobs: usize = match flag_value(args, "--jobs") {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&jobs| jobs >= 1)
            .ok_or("--jobs must be a positive integer")?,
        None if args.iter().any(|a| a == "--jobs") => {
            return Err("--jobs requires a value".into());
        }
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    let shards = shards_from_flags(args)?;
    let store = load_store(space_path, events_path)?;
    let space = store.space().clone();
    let service = ShardedLocaterService::new(store, config_from_flags(args), shards);

    let queries_text = std::fs::read_to_string(queries_path)
        .map_err(|e| format!("cannot read {queries_path}: {e}"))?;
    let mut requests: Vec<LocateRequest> = Vec::new();
    for (line_no, line) in queries_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (line_no == 0 && line.to_ascii_lowercase().starts_with("mac,")) {
            continue;
        }
        let mut parts = line.split(',');
        let mac = parts.next().unwrap_or_default().trim();
        let t: Timestamp = parts
            .next()
            .unwrap_or_default()
            .trim()
            .parse()
            .map_err(|_| format!("line {}: invalid timestamp", line_no + 1))?;
        requests.push(LocateRequest::by_mac(mac, t));
    }

    // The parallel batch pipeline: responses are deterministic and ordered
    // regardless of the job count.
    let responses = service.locate_batch(&requests, jobs);
    let mut out = String::from("mac,timestamp,location,room,confidence\n");
    let mut answered = 0usize;
    for (request, result) in requests.iter().zip(&responses) {
        let mac = request.mac.as_deref().unwrap_or_default();
        let t = request.t;
        let (location, room, confidence) = match result {
            Ok(response) => {
                let answer = &response.answer;
                let room = answer
                    .room()
                    .map(|r| space.room(r).name.clone())
                    .unwrap_or_default();
                let kind = if answer.is_outside() {
                    "outside"
                } else {
                    "inside"
                };
                (kind.to_string(), room, answer.confidence)
            }
            Err(_) => ("unknown-device".to_string(), String::new(), 0.0),
        };
        let _ = writeln!(out, "{mac},{t},{location},{room},{confidence:.3}");
        answered += 1;
    }
    let _ = writeln!(out, "# answered {answered} queries ({jobs} jobs)");
    Ok(out)
}

fn serve(args: &[String]) -> Result<String, CliError> {
    let mut store = if let Some(snapshot_path) = flag_value(args, "--snapshot") {
        // Cold start from the binary snapshot: no CSV replay, validity periods
        // already estimated, segments restored verbatim.
        EventStore::load_snapshot(&snapshot_path)
            .map_err(|e| format!("cannot load snapshot {snapshot_path}: {e}"))?
    } else {
        let space_path = args.get(1).ok_or("missing space.json (or --snapshot)")?;
        let events_path = args.get(2).filter(|a| !a.starts_with("--"));
        match events_path {
            Some(events_path) => load_store(space_path, events_path)?,
            None => EventStore::new(load_space(space_path)?),
        }
    };
    // Compaction cuts are bucket-aligned, so a retention much shorter than
    // the default one-week span needs a matching bucket width to bite.
    if let Some(span) = secs_flag(args, "--segment-span")?.filter(|&secs| secs > 0) {
        store = store.with_segment_span(span);
    }
    let config = config_from_flags(args);
    let shards = shards_from_flags(args)?;
    let mut recovery_report = None;
    let service = match durability_from_flags(args)? {
        Some(durability) => {
            // Recovery happens here: last checkpoint + WAL tail replay, then a
            // fresh checkpoint and empty per-shard logs before serving starts.
            let wal_dir = durability.dir.display().to_string();
            let (service, recovery) =
                ShardedLocaterService::with_durability(store, config, shards, durability)
                    .map_err(|e| CliError::Runtime(format!("cannot open wal {wal_dir}: {e}")))?;
            println!("{}", render_recovery(&recovery));
            recovery_report = Some(recovery);
            service
        }
        None => ShardedLocaterService::new(store, config, shards),
    };
    let retain = secs_flag(args, "--retain")?;
    let compact_interval = secs_flag(args, "--compact-interval")?;
    if compact_interval.is_some() && retain.is_none() {
        return Err("--compact-interval requires --retain".into());
    }
    let spill_dir = flag_value(args, "--spill-dir").map(std::path::PathBuf::from);
    // The replay-dedup window scales with admission (`--queue`): at 4× the
    // limit, an id acked moments ago survives at least three more full
    // admission waves before FIFO eviction can reach it — longer than any
    // client's retry backoff at the server's own saturation throughput.
    let admission_limit = match flag_value(args, "--queue") {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--queue must be a positive integer")?,
        None => ServerConfig::default().admission_limit,
    };
    let state = Arc::new(
        ServerState::new(service, flag_value(args, "--drain-snapshot"))
            .with_retention(retain, spill_dir)
            .with_dedup_capacity(admission_limit.saturating_mul(4).max(1024)),
    );
    if let Some(recovery) = &recovery_report {
        // Restart-spanning idempotence: durable request ids from the
        // recovered WAL answer client retries whose acks the crash ate.
        let seeded = state.seed_dedup_from_recovery(recovery);
        if seeded > 0 {
            println!("# wal: re-seeded replay dedup with {seeded} durable request id(s)");
        }
    }
    if let Some(listen) = flag_value(args, "--listen") {
        if let Some(interval) = compact_interval.filter(|&secs| secs > 0) {
            spawn_compaction_ticker(Arc::clone(&state), interval as u64);
        }
        return serve_tcp(state, &listen, args);
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let commands = serve_loop(&state, stdin.lock(), &mut stdout)?;
    let mut out = format!("# served {commands} commands\n");
    if state.is_draining() {
        // `shutdown` over stdio behaves like the TCP drain: the WAL is
        // checkpointed (clean shutdown leaves an empty tail) and the
        // configured drain snapshot is written before the process exits.
        append_drain_summary(&mut out, &state.finish_drain())?;
    }
    Ok(out)
}

/// The `--compact-interval` timer: a detached thread running one compaction
/// tick per interval against the configured `--retain` horizon. The tick
/// takes one shard write lock at a time, so it never stalls ingest on the
/// other shards; the thread exits when the server starts draining (checked
/// once per second so shutdown stays prompt).
fn spawn_compaction_ticker(state: Arc<ServerState>, interval_secs: u64) {
    std::thread::spawn(move || loop {
        let mut remaining = interval_secs.max(1);
        while remaining > 0 && !state.is_draining() {
            std::thread::sleep(Duration::from_secs(1));
            remaining -= 1;
        }
        if state.is_draining() {
            return;
        }
        if let Err(e) = state.compaction_tick() {
            eprintln!("# compaction tick failed: {e}");
        }
    });
}

/// One boot line summarizing what crash recovery found in the WAL directory,
/// plus one warning line per truncated torn tail.
fn render_recovery(recovery: &RecoveryReport) -> String {
    let mut out = format!(
        "# wal: recovered {} event(s) from {} segment(s) across {} shard(s) ({}; {} base event(s), {} already covered)",
        recovery.replayed,
        recovery.segments,
        recovery.shards,
        if recovery.checkpoint_loaded {
            "checkpoint loaded"
        } else {
            "no checkpoint"
        },
        recovery.base_events,
        recovery.skipped,
    );
    for (path, offset) in &recovery.torn {
        let _ = write!(
            out,
            "\n# wal: torn tail in {} truncated at byte {offset}",
            path.display()
        );
    }
    out
}

/// Appends the drain epilogue (WAL checkpoint, drain snapshot) to the served
/// summary. Epilogue I/O failures become a non-zero exit: the summary printed
/// so far still reaches stdout, then the failure is reported as the error.
fn append_drain_summary(out: &mut String, drain: &DrainSummary) -> Result<(), CliError> {
    if let Some(Ok(bytes)) = &drain.checkpoint {
        let _ = writeln!(
            out,
            "# drained: checkpointed wal ({bytes} byte snapshot, logs trimmed)"
        );
    }
    if let Some(Ok((path, bytes))) = &drain.snapshot {
        let _ = writeln!(out, "# drained: saved {path} ({bytes} bytes)");
    }
    match drain.failure_message() {
        None => Ok(()),
        Some(message) => {
            print!("{out}");
            std::io::stdout().flush().ok();
            Err(CliError::Runtime(message))
        }
    }
}

/// The `serve --listen` path: the wire protocol over TCP. Prints the bound
/// address immediately (port `0` resolves to an ephemeral port), then blocks
/// until a graceful drain (`shutdown` request or SIGTERM).
fn serve_tcp(state: Arc<ServerState>, listen: &str, args: &[String]) -> Result<String, CliError> {
    let mut config = ServerConfig::default();
    if let Some(v) = flag_value(args, "--workers") {
        config.workers = v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--workers must be a positive integer")?;
    }
    if let Some(v) = flag_value(args, "--queue") {
        config.admission_limit = v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--queue must be a positive integer")?;
    }
    if let Some(v) = flag_value(args, "--idle-timeout") {
        let secs = v
            .parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--idle-timeout must be a positive number of seconds")?;
        config.idle_timeout = Duration::from_secs(secs);
    }
    #[cfg(unix)]
    locater::server::install_sigterm_drain(&state);
    let server = locater::server::Server::bind(state, listen, config)
        .map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    println!(
        "listening on {} ({} shard(s); protocol v{})",
        server.local_addr(),
        server.state().service().num_shards(),
        locater::proto::PROTOCOL_VERSION
    );
    std::io::stdout().flush().ok();
    let report = server.join();
    let mut out = format!(
        "# served {} requests over {} connections ({} rejected overloaded, {} rejected while draining)\n",
        report.requests_served,
        report.connections,
        report.rejected_overloaded,
        report.rejected_shutting_down
    );
    append_drain_summary(&mut out, &report.drain)?;
    Ok(out)
}

/// The `serve` stdin REPL: the wire protocol over stdio. Each line is parsed
/// by [`parse_repl_line`] (legacy verb syntax or a raw NDJSON frame), executed
/// by the shared [`ServerState`] executor, and rendered as the legacy
/// human-readable text — responses are written (and flushed) as they are
/// produced.
///
/// ```text
/// ingest <mac,timestamp,ap>   append one live event (CSV, same as events.csv rows)
/// locate <mac> <timestamp>    answer a query over the current store
/// stats                       totals, per-shard counts, serving-layer gauges
/// compact [retain-seconds]    age history out of the hot tier
/// ping | snapshot <path> | shutdown
/// quit                        stop reading (without draining)
/// ```
fn serve_loop(
    state: &ServerState,
    input: impl BufRead,
    out: &mut impl std::io::Write,
) -> Result<usize, String> {
    let space = state.service().space();
    let mut commands = 0usize;
    for line in input.lines() {
        let line = line.map_err(|e| format!("cannot read command: {e}"))?;
        let request = match parse_repl_line(&line) {
            Ok(ReplCommand::Empty) => continue,
            Ok(ReplCommand::Quit) => {
                commands += 1;
                break;
            }
            Ok(ReplCommand::Request(request)) => {
                commands += 1;
                request
            }
            Err(e) => {
                commands += 1;
                writeln!(out, "error: {e}").map_err(|e| format!("cannot write response: {e}"))?;
                out.flush()
                    .map_err(|e| format!("cannot write response: {e}"))?;
                continue;
            }
        };
        let response = state.execute(&request);
        writeln!(out, "{}", render_response(&space, &request, &response))
            .map_err(|e| format!("cannot write response: {e}"))?;
        out.flush()
            .map_err(|e| format!("cannot write response: {e}"))?;
        if matches!(response, WireResponse::ShuttingDown) {
            break;
        }
    }
    Ok(commands)
}

/// The `request` command: send one NDJSON request to a running
/// `serve --listen` server and print the raw response frame.
///
/// With `--retries N` the frame goes through the resilient [`RetryClient`]:
/// ingests are stamped with a request id before the first send, transport
/// failures and retryable server errors reconnect and resend with jittered
/// backoff, and the server's request-id dedup guarantees the retried write is
/// applied at most once.
fn request(args: &[String]) -> Result<String, CliError> {
    let addr = args.get(1).ok_or("missing server address")?;
    let mut retries = 0u32;
    let mut words: Vec<&str> = Vec::new();
    let mut it = args[2..].iter();
    while let Some(arg) = it.next() {
        if arg == "--retries" {
            let value = it.next().ok_or("--retries requires a value")?;
            retries = value
                .parse()
                .map_err(|_| CliError::Usage("--retries must be a non-negative integer".into()))?;
        } else {
            words.push(arg);
        }
    }
    let line = words.join(" ");
    let request = match parse_repl_line(&line) {
        Ok(ReplCommand::Request(request)) => request,
        Ok(ReplCommand::Empty) => {
            return Err("missing request (verb syntax or a raw JSON frame)".into())
        }
        Ok(ReplCommand::Quit) => {
            return Err("quit is not a wire request (did you mean shutdown?)".into())
        }
        Err(e) => return Err(CliError::Runtime(e.to_string())),
    };
    let mut client = RetryClient::new(ClientConfig {
        addr: addr.clone(),
        request_timeout: Duration::from_secs(30),
        max_retries: retries,
        ..ClientConfig::default()
    });
    // A non-retryable server error is still a response frame — print it like
    // the direct path always has, rather than turning it into a CLI failure.
    let response = match client.request(&request) {
        Ok(response) => response,
        Err(ClientError::Server(error)) => WireResponse::Error(error),
        Err(e) => return Err(CliError::Runtime(format!("request to {addr} failed: {e}"))),
    };
    let mut frame = locater::proto::encode_response(&response);
    frame.push('\n');
    Ok(frame)
}

/// The `compact` command: offline compaction of a snapshot file. Loads the
/// store, evicts whole segment buckets below the horizon (absolute
/// `--horizon T`, or `--retain SECS` behind the event-time watermark),
/// persists the cold tiers into `--spill-dir` (spill snapshot + merged
/// dwell summaries), and writes the compacted snapshot back — in place, or
/// to `--out`. Answers inside the retained window are unchanged; the
/// evicted history stays reloadable from the spill file.
fn compact(args: &[String]) -> Result<String, CliError> {
    let snap = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or("missing store.snap")?;
    let retain = secs_flag(args, "--retain")?;
    let horizon_flag = secs_flag(args, "--horizon")?;
    let out_path = flag_value(args, "--out").unwrap_or_else(|| snap.clone());
    let spill_dir = flag_value(args, "--spill-dir");
    let mut store = EventStore::load_snapshot(snap)
        .map_err(|e| CliError::Runtime(format!("cannot load snapshot {snap}: {e}")))?;
    let horizon = match (retain, horizon_flag) {
        (Some(retain), _) => store
            .time_span()
            .map(|span| (span.end - 1).saturating_sub(retain))
            .unwrap_or(0),
        (None, Some(horizon)) => horizon,
        (None, None) => return Err("compact needs --retain or --horizon".into()),
    };
    let report = store.compact(horizon);
    let mut out = format!(
        "compacted {snap}: {} event(s) in {} segment(s) evicted below cut {} ({} summary row(s)); {} event(s) retained\n",
        report.evicted_events,
        report.evicted_segments,
        report.cut,
        report.summaries.len(),
        store.num_events()
    );
    if let Some(dir) = &spill_dir {
        let dir_path = std::path::Path::new(dir);
        let spilled = locater::store::persist_tiers(dir_path, &report)
            .map_err(|e| format!("cannot persist tiers into {dir}: {e}"))?;
        if let Some(path) = spilled {
            let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let _ = writeln!(out, "spilled {} ({bytes} bytes)", path.display());
        }
        if !report.summaries.is_empty() {
            let _ = writeln!(
                out,
                "summaries merged into {}",
                locater::store::summary_path(dir_path).display()
            );
        }
    }
    store
        .save_snapshot(&out_path)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let bytes = std::fs::metadata(&out_path).map(|m| m.len()).unwrap_or(0);
    let _ = writeln!(out, "wrote {out_path} ({bytes} bytes)");
    Ok(out)
}

fn snapshot(args: &[String]) -> Result<String, CliError> {
    let action = args.get(1).ok_or("missing snapshot action (save|load)")?;
    match action.as_str() {
        "save" => {
            let space_path = args.get(2).ok_or("missing space.json")?;
            let events_path = args.get(3).ok_or("missing events.csv")?;
            let out_path = args.get(4).ok_or("missing output snapshot path")?;
            // `--embed-index` persists the co-location posting lists so a cold
            // start skips the index rebuild (larger file); the default
            // rebuilds the index on load.
            let mode = if args.iter().any(|a| a == "--embed-index") {
                SnapshotIndexMode::Embedded
            } else {
                SnapshotIndexMode::Rebuild
            };
            let store = load_store(space_path, events_path)?;
            store
                .save_snapshot_with(out_path, mode)
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            let size = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
            Ok(format!(
                "saved {out_path}: {} events, {} devices, {} segments ({size} bytes, index {})\n",
                store.num_events(),
                store.num_devices(),
                store.num_segments(),
                match mode {
                    SnapshotIndexMode::Embedded => "embedded",
                    SnapshotIndexMode::Rebuild => "rebuilt on load",
                }
            ))
        }
        "load" => {
            let path = args.get(2).ok_or("missing snapshot path")?;
            let store = EventStore::load_snapshot(path)
                .map_err(|e| format!("cannot load snapshot {path}: {e}"))?;
            let mut out = String::new();
            let _ = writeln!(out, "{}", store.stats().to_report());
            let _ = writeln!(
                out,
                "segments: {} across {} devices (span {}s)",
                store.num_segments(),
                store.num_devices(),
                store.segment_span()
            );
            let index = store.colocation_stats();
            let _ = writeln!(
                out,
                "co-location index: {} AP posting lists, {} time buckets",
                index.ap_lists, index.buckets
            );
            Ok(out)
        }
        other => Err(CliError::Usage(format!(
            "unknown snapshot action {other:?} (save|load)"
        ))),
    }
}

/// The `wal` command: operator tooling over a WAL directory. `inspect` is
/// read-only; `truncate` repairs damage by discarding everything from the
/// first invalid frame onward.
fn wal(args: &[String]) -> Result<String, CliError> {
    let action = args.get(1).ok_or("missing wal action (inspect|truncate)")?;
    let dir = args.get(2).ok_or("missing wal directory")?;
    let path = std::path::Path::new(dir.as_str());
    match action.as_str() {
        "inspect" => {
            let inspection = inspect_wal(path)
                .map_err(|e| CliError::Runtime(format!("cannot inspect {dir}: {e}")))?;
            Ok(render_inspection(&inspection))
        }
        "truncate" => {
            let truncations = truncate_wal(path)
                .map_err(|e| CliError::Runtime(format!("cannot truncate {dir}: {e}")))?;
            let mut out = String::new();
            let mut repaired = 0usize;
            for t in &truncations {
                if t.truncated.is_none() && t.segments_removed == 0 {
                    continue;
                }
                repaired += 1;
                let _ = writeln!(
                    out,
                    "shard {:04}: cut {} byte(s), removed {} later segment(s) ({} valid frame(s) lost){}",
                    t.shard,
                    t.bytes_cut,
                    t.segments_removed,
                    t.frames_removed,
                    t.truncated
                        .as_ref()
                        .map(|p| format!("; truncated {}", p.display()))
                        .unwrap_or_default()
                );
            }
            if repaired == 0 {
                let _ = writeln!(out, "wal is clean: nothing to truncate");
            } else {
                let _ = writeln!(
                    out,
                    "repaired {repaired} shard(s); recovery will now replay the remaining prefix"
                );
            }
            Ok(out)
        }
        other => Err(CliError::Usage(format!(
            "unknown wal action {other:?} (inspect|truncate)"
        ))),
    }
}

/// Renders `wal inspect`: the checkpoint line, one line per segment with
/// frame counts / byte counts / id ranges, and damage markers.
fn render_inspection(inspection: &WalInspection) -> String {
    let mut out = format!("wal {}\n", inspection.dir.display());
    match &inspection.checkpoint {
        Some(Ok((bytes, events, next_id))) => {
            let _ = writeln!(
                out,
                "checkpoint: {bytes} bytes, {events} event(s), next event id {next_id}"
            );
        }
        Some(Err(e)) => {
            let _ = writeln!(out, "checkpoint: UNREADABLE ({e})");
        }
        None => {
            let _ = writeln!(out, "checkpoint: none");
        }
    }
    let mut damaged = 0usize;
    for shard in &inspection.shards {
        let _ = writeln!(
            out,
            "shard {:04}: {} segment(s)",
            shard.shard,
            shard.segments.len()
        );
        for segment in &shard.segments {
            let ids = segment
                .id_range
                .map(|(first, last)| format!("ids {first}..={last}"))
                .unwrap_or_else(|| "empty".to_string());
            let _ = write!(
                out,
                "  seg-{:016x}: {} frame(s), {}/{} bytes valid, {}",
                segment.index, segment.frames, segment.valid_bytes, segment.file_len, ids
            );
            if let Some(damage) = &segment.damage {
                damaged += 1;
                let _ = write!(out, " [DAMAGED {damage}]");
            }
            let _ = writeln!(out);
        }
    }
    if damaged > 0 {
        let _ = writeln!(
            out,
            "{damaged} damaged segment(s) — `locater-cli wal truncate` discards everything from the first invalid frame"
        );
    }
    out
}

fn simulate(args: &[String]) -> Result<String, CliError> {
    let kind = args.get(1).ok_or("missing scenario kind")?;
    let prefix = args.get(2).ok_or("missing output prefix")?;
    let days: i64 = flag_value(args, "--days")
        .map(|v| v.parse().map_err(|_| "--days must be an integer"))
        .transpose()?
        .unwrap_or(14);
    let seed: u64 = flag_value(args, "--seed")
        .map(|v| v.parse().map_err(|_| "--seed must be an integer"))
        .transpose()?
        .unwrap_or(7);

    let output = match kind.as_str() {
        "campus" => Simulator::new(seed).run_campus(&CampusConfig {
            weeks: (days / 7).max(1),
            ..CampusConfig::default()
        }),
        "metro_campus" => {
            // Env-sized large scenario; --days overrides the env/default weeks.
            let mut config = CampusConfig::metro_from_env();
            if flag_value(args, "--days").is_some() {
                config.weeks = (days / 7).max(1);
            }
            Simulator::new(seed).run_campus(&config)
        }
        "office" | "university" | "mall" | "airport" => {
            let scenario = match kind.as_str() {
                "office" => ScenarioKind::Office,
                "university" => ScenarioKind::University,
                "mall" => ScenarioKind::Mall,
                _ => ScenarioKind::Airport,
            };
            Simulator::new(seed).run_scenario(
                &locater::sim::ScenarioConfig::new(scenario)
                    .with_days(days)
                    .with_seed(seed),
            )
        }
        other => return Err(CliError::Usage(format!("unknown scenario {other:?}"))),
    };

    // Space metadata.
    let metadata = SpaceMetadata::from_space(&output.space);
    let space_path = format!("{prefix}.space.json");
    std::fs::write(&space_path, metadata.to_json().map_err(|e| e.to_string())?)
        .map_err(|e| format!("cannot write {space_path}: {e}"))?;
    // Events.
    let events_path = format!("{prefix}.events.csv");
    std::fs::write(&events_path, locater::store::format_csv(&output.events))
        .map_err(|e| format!("cannot write {events_path}: {e}"))?;
    // Ground truth.
    let truth_path = format!("{prefix}.truth.csv");
    let mut truth = String::from("mac,room,start,end\n");
    for record in &output.people {
        for stay in output.ground_truth.stays_of(&record.mac) {
            let _ = writeln!(
                truth,
                "{},{},{},{}",
                record.mac,
                output.space.room(stay.room).name,
                stay.interval.start,
                stay.interval.end
            );
        }
    }
    std::fs::write(&truth_path, truth).map_err(|e| format!("cannot write {truth_path}: {e}"))?;

    Ok(format!(
        "simulated {kind}: {} events, {} devices, {} days\nwrote {space_path}, {events_path}, {truth_path}\n",
        output.events.len(),
        output.people.len(),
        output.days
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater::store::parse_csv;

    #[test]
    fn missing_command_and_unknown_command_error() {
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(usage().contains("locater-cli"));
    }

    #[test]
    fn simulate_then_stats_then_locate_roundtrip() {
        let dir = std::env::temp_dir().join(format!("locater-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("office").to_string_lossy().to_string();

        let simulate_args: Vec<String> = vec![
            "simulate".into(),
            "office".into(),
            prefix.clone(),
            "--days".into(),
            "3".into(),
            "--seed".into(),
            "5".into(),
        ];
        let report = run(&simulate_args).expect("simulate succeeds");
        assert!(report.contains("simulated office"));

        let space = format!("{prefix}.space.json");
        let events = format!("{prefix}.events.csv");
        let stats_out = run(&["stats".into(), space.clone(), events.clone()]).expect("stats");
        assert!(stats_out.contains("devices"));
        assert!(stats_out.contains("gaps to clean"));
        assert!(stats_out.contains("co-location index:"));

        // Locate the first device found in the events file at its first event time:
        // always answerable.
        let csv = std::fs::read_to_string(&events).unwrap();
        let first = parse_csv(&csv).unwrap().into_iter().next().unwrap();
        let locate_out = run(&[
            "locate".into(),
            space.clone(),
            events.clone(),
            first.mac.clone(),
            first.t.to_string(),
            "--dependent".into(),
        ])
        .expect("locate succeeds");
        assert!(locate_out.contains(&first.mac));
        assert!(locate_out.contains("room") || locate_out.contains("outside"));

        // Batch: two queries, one for an unknown device.
        let queries = dir.join("queries.csv");
        std::fs::write(
            &queries,
            format!(
                "mac,timestamp\n{},{}\nghost-device,123\n",
                first.mac, first.t
            ),
        )
        .unwrap();
        let batch_out = run(&[
            "batch".into(),
            space.clone(),
            events.clone(),
            queries.to_string_lossy().to_string(),
            "--jobs".into(),
            "2".into(),
        ])
        .expect("batch succeeds");
        assert!(batch_out.contains("answered 2 queries"));
        assert!(batch_out.contains("unknown-device"));

        // The same batch on one job is byte-identical (deterministic pipeline).
        let batch_one = run(&[
            "batch".into(),
            space.clone(),
            events.clone(),
            queries.to_string_lossy().to_string(),
            "--jobs".into(),
            "1".into(),
        ])
        .expect("batch succeeds");
        assert_eq!(
            batch_one.replace("(1 jobs)", ""),
            batch_out.replace("(2 jobs)", "")
        );

        // ...and byte-identical again when the service is sharded.
        let batch_sharded = run(&[
            "batch".into(),
            space,
            events,
            queries.to_string_lossy().to_string(),
            "--jobs".into(),
            "2".into(),
            "--shards".into(),
            "3".into(),
        ])
        .expect("sharded batch succeeds");
        assert_eq!(batch_sharded, batch_out);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_save_load_and_serve_roundtrip() {
        let dir = std::env::temp_dir().join(format!("locater-cli-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("office").to_string_lossy().to_string();
        run(&[
            "simulate".into(),
            "office".into(),
            prefix.clone(),
            "--days".into(),
            "3".into(),
            "--seed".into(),
            "11".into(),
        ])
        .expect("simulate succeeds");
        let space = format!("{prefix}.space.json");
        let events = format!("{prefix}.events.csv");
        let snap = format!("{prefix}.snap");

        let saved = run(&[
            "snapshot".into(),
            "save".into(),
            space,
            events.clone(),
            snap.clone(),
        ])
        .expect("snapshot save succeeds");
        assert!(saved.contains("saved"));
        assert!(saved.contains("segments"));

        let loaded =
            run(&["snapshot".into(), "load".into(), snap.clone()]).expect("snapshot load succeeds");
        assert!(loaded.contains("events"));
        assert!(loaded.contains("segments:"));
        assert!(loaded.contains("co-location index:"));

        // `--embed-index` persists the posting lists: bigger file, identical
        // store on load.
        let embedded_snap = format!("{prefix}.embedded.snap");
        let saved_embedded = run(&[
            "snapshot".into(),
            "save".into(),
            format!("{prefix}.space.json"),
            events.clone(),
            embedded_snap.clone(),
            "--embed-index".into(),
        ])
        .expect("embedded snapshot save succeeds");
        assert!(saved_embedded.contains("index embedded"));
        let plain = std::fs::metadata(&snap).unwrap().len();
        let embedded = std::fs::metadata(&embedded_snap).unwrap().len();
        assert!(embedded > plain, "embedded index must grow the snapshot");
        assert_eq!(
            EventStore::load_snapshot(&embedded_snap).unwrap(),
            EventStore::load_snapshot(&snap).unwrap(),
        );

        // Serving straight from the snapshot answers queries without the CSV.
        let csv = std::fs::read_to_string(&events).unwrap();
        let first = parse_csv(&csv).unwrap().into_iter().next().unwrap();
        let store = EventStore::load_snapshot(&snap).expect("snapshot loads");
        // Serve from the snapshot with two shards: the store splits on load.
        let state = ServerState::new(
            ShardedLocaterService::new(store, LocaterConfig::default(), 2),
            None,
        );
        let mut out: Vec<u8> = Vec::new();
        let input = format!("locate {} {}\nquit\n", first.mac, first.t);
        serve_loop(&state, std::io::Cursor::new(input), &mut out).expect("serve loop runs");
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains(&first.mac));
        assert!(out.contains("room") || out.contains("outside"));

        // Corrupting the snapshot yields a typed, non-panicking CLI error.
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&snap, bytes).unwrap();
        let err = run(&["snapshot".into(), "load".into(), snap]).unwrap_err();
        assert!(
            err.to_string().contains("checksum"),
            "unexpected error: {err}"
        );
        assert!(
            matches!(err, CliError::Runtime(_)),
            "corrupt files are runtime errors, not usage errors"
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_command_evicts_spills_and_rewrites_the_snapshot() {
        let dir = std::env::temp_dir().join(format!("locater-cli-compact-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("office").to_string_lossy().to_string();
        run(&[
            "simulate".into(),
            "office".into(),
            prefix.clone(),
            "--days".into(),
            "21".into(),
            "--seed".into(),
            "3".into(),
        ])
        .expect("simulate succeeds");
        let snap = format!("{prefix}.snap");
        run(&[
            "snapshot".into(),
            "save".into(),
            format!("{prefix}.space.json"),
            format!("{prefix}.events.csv"),
            snap.clone(),
        ])
        .expect("snapshot save succeeds");
        let before = EventStore::load_snapshot(&snap).unwrap();

        // A retention wider than the history evicts nothing and leaves the
        // store byte-identical.
        let compacted = dir.join("unchanged.snap").to_string_lossy().to_string();
        let noop = run(&[
            "compact".into(),
            snap.clone(),
            "--retain".into(),
            "999999999".into(),
            "--out".into(),
            compacted.clone(),
        ])
        .expect("no-op compact succeeds");
        assert!(
            noop.contains("0 event(s) in 0 segment(s) evicted"),
            "{noop}"
        );
        assert_eq!(EventStore::load_snapshot(&compacted).unwrap(), before);

        // One week of retention on a three-week corpus evicts history and
        // persists both cold tiers.
        let spill_dir = dir.join("spill");
        let out = run(&[
            "compact".into(),
            snap.clone(),
            "--retain".into(),
            "604800".into(),
            "--spill-dir".into(),
            spill_dir.to_string_lossy().to_string(),
        ])
        .expect("compact succeeds");
        assert!(!out.contains("0 event(s) in 0 segment(s)"), "{out}");
        assert!(out.contains("spilled"), "{out}");
        assert!(out.contains("summaries merged into"), "{out}");
        assert!(out.contains(&format!("wrote {snap}")), "{out}");
        let after = EventStore::load_snapshot(&snap).unwrap();
        assert!(after.num_events() < before.num_events());
        // Evicted + retained account for every original event, and the spill
        // reloads as an ordinary snapshot.
        let spills = locater::store::list_spills(&spill_dir).unwrap();
        assert_eq!(spills.len(), 1);
        let spill = locater::store::load_spill(&spills[0].1).unwrap();
        assert_eq!(spill.num_events() + after.num_events(), before.num_events());
        assert!(!locater::store::load_summaries(&spill_dir)
            .unwrap()
            .is_empty());

        // Bad usage is rejected before touching any file.
        assert!(run(&["compact".into()]).is_err());
        assert!(run(&["compact".into(), snap.clone()]).is_err());
        assert!(run(&["compact".into(), snap, "--retain".into(), "soon".into()]).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_command_rejects_bad_usage() {
        assert!(run(&["snapshot".into()]).is_err());
        assert!(run(&["snapshot".into(), "frob".into()]).is_err());
        assert!(run(&["snapshot".into(), "save".into()]).is_err());
        assert!(run(&[
            "snapshot".into(),
            "load".into(),
            "/no/such/file.snap".into()
        ])
        .is_err());
        assert!(
            run(&["serve".into()]).is_err(),
            "serve needs a space or snapshot"
        );
    }

    #[test]
    fn serve_loop_ingests_locates_and_reports_stats() {
        let space = locater::space::SpaceBuilder::new("serve-test")
            .add_access_point("wap1", &["101", "102"])
            .build()
            .unwrap();
        let state = ServerState::new(
            ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 2),
            None,
        );
        let input = "\
# comment lines and blanks are skipped

stats
ingest aa:bb:cc:dd:ee:01,1000,wap1
ingest aa:bb:cc:dd:ee:01,4000,wap1
locate aa:bb:cc:dd:ee:01 2500
locate ghost 2500
ingest broken-line-without-commas
locate aa:bb:cc:dd:ee:01
frobnicate
quit
stats
";
        let mut out: Vec<u8> = Vec::new();
        let commands =
            serve_loop(&state, std::io::Cursor::new(input), &mut out).expect("serve loop runs");
        // `quit` stops the loop before the trailing stats line.
        assert_eq!(commands, 9);
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("0 events, 0 devices across 2 shard(s)"));
        assert!(out.contains("co-location index: 0 AP lists, 0 buckets"));
        assert!(out.contains("shard 0: 0 events"));
        assert!(out.contains("shard 1: 0 events"));
        assert!(out.contains("index: 0 AP lists, 0 buckets"));
        assert!(out.contains("ingested aa:bb:cc:dd:ee:01 @ 1000 via wap1 (device epoch 1)"));
        assert!(out.contains("(device epoch 2)"));
        assert!(out.contains("room") || out.contains("outside"));
        assert!(out.contains("2 events)"), "locate reports the store size");
        assert!(out.contains("error: unknown device: ghost"));
        assert!(out.contains("error: usage: locate <mac> <timestamp>"));
        assert!(out.contains("error: unknown command \"frobnicate\""));
        assert_eq!(state.service().num_events(), 2);
    }

    #[test]
    fn serve_loop_rejects_bad_ingest_lines() {
        let space = locater::space::SpaceBuilder::new("serve-test")
            .add_access_point("wap1", &["101"])
            .build()
            .unwrap();
        let state = ServerState::new(
            ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 1),
            None,
        );
        let input = "ingest aa,100,wap9\nlocate aa 1x0\n";
        let mut out: Vec<u8> = Vec::new();
        serve_loop(&state, std::io::Cursor::new(input), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("error:"));
        assert!(out.contains("timestamp must be an integer"));
        assert_eq!(state.service().num_events(), 0);
    }

    #[test]
    fn serve_loop_shutdown_drains_and_accepts_raw_frames() {
        let dir = std::env::temp_dir().join(format!("locater-cli-drain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let drain = dir.join("repl-drain.snap").to_string_lossy().to_string();
        let space = locater::space::SpaceBuilder::new("serve-test")
            .add_access_point("wap1", &["101"])
            .build()
            .unwrap();
        let state = ServerState::new(
            ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 1),
            Some(drain.clone()),
        );
        // Raw NDJSON frames and verbs mix freely: the REPL is the protocol
        // over stdio. `shutdown` stops the loop with the drain flag up.
        let input = "\
{\"Ingest\":{\"mac\":\"aa:bb:cc:dd:ee:01\",\"t\":1000,\"ap\":\"wap1\"}}
\"Ping\"
shutdown
locate aa:bb:cc:dd:ee:01 1000
";
        let mut out: Vec<u8> = Vec::new();
        let commands =
            serve_loop(&state, std::io::Cursor::new(input), &mut out).expect("serve loop runs");
        assert_eq!(commands, 3, "shutdown stops the loop");
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("ingested aa:bb:cc:dd:ee:01 @ 1000 via wap1 (device epoch 1)"));
        assert!(out.contains("pong (protocol v3)"));
        assert!(out.contains("shutting down"));
        assert!(state.is_draining());
        let summary = state.finish_drain();
        assert!(!summary.has_failure());
        assert_eq!(summary.checkpoint, None, "no WAL attached, no checkpoint");
        let (path, bytes) = summary.snapshot.expect("drain snapshot attempted").unwrap();
        assert_eq!(path, drain);
        assert!(bytes > 0);
        assert!(EventStore::load_snapshot(&drain).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drain_snapshot_failure_is_a_runtime_error_with_summary() {
        let space = locater::space::SpaceBuilder::new("drain-fail")
            .add_access_point("wap1", &["101"])
            .build()
            .unwrap();
        let state = ServerState::new(
            ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 1),
            Some("/no/such/dir/drain.snap".to_string()),
        );
        state.execute(&locater::proto::WireRequest::Shutdown);
        let summary = state.finish_drain();
        assert!(summary.has_failure());
        let mut out = String::from("# served 1 commands\n");
        let err = append_drain_summary(&mut out, &summary).unwrap_err();
        assert!(
            err.to_string().contains("drain snapshot failed"),
            "unexpected error: {err}"
        );
        assert!(matches!(err, CliError::Runtime(_)));
    }

    #[test]
    fn serve_with_wal_recovers_after_a_simulated_crash() {
        let dir = std::env::temp_dir().join(format!("locater-cli-wal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let wal_dir = dir.join("wal");
        let space = || {
            locater::space::SpaceBuilder::new("wal-test")
                .add_access_point("wap1", &["101", "102"])
                .build()
                .unwrap()
        };
        let durability = durability_from_flags(&[
            "--wal-dir".into(),
            wal_dir.to_string_lossy().to_string(),
            "--fsync".into(),
            "always".into(),
        ])
        .unwrap()
        .expect("wal flags parsed");

        // Boot a durable service, ingest through the REPL executor, then drop
        // it without checkpointing — a crash, as far as the log is concerned.
        {
            let (service, recovery) = ShardedLocaterService::with_durability(
                EventStore::new(space()),
                LocaterConfig::default(),
                2,
                durability.clone(),
            )
            .expect("durable boot");
            assert_eq!(recovery.replayed, 0);
            let state = ServerState::new(service, None);
            let input = "\
ingest aa:bb:cc:dd:ee:01,1000,wap1
ingest aa:bb:cc:dd:ee:02,2000,wap1
ingest aa:bb:cc:dd:ee:01,4000,wap1
";
            let mut out: Vec<u8> = Vec::new();
            serve_loop(&state, std::io::Cursor::new(input), &mut out).expect("serve loop runs");
            assert_eq!(state.service().num_events(), 3);
        }

        // `wal inspect` sees the three framed events.
        let inspected = run(&[
            "wal".into(),
            "inspect".into(),
            wal_dir.to_string_lossy().to_string(),
        ])
        .expect("wal inspect succeeds");
        assert!(inspected.contains("checkpoint:"), "report: {inspected}");
        assert!(inspected.contains("shard 0000:"), "report: {inspected}");
        assert!(inspected.contains("shard 0001:"), "report: {inspected}");
        assert!(!inspected.contains("DAMAGED"), "report: {inspected}");

        // Reboot: recovery replays the tail and the events are back.
        let (service, recovery) = ShardedLocaterService::with_durability(
            EventStore::new(space()),
            LocaterConfig::default(),
            2,
            durability,
        )
        .expect("recovery boot");
        assert_eq!(recovery.replayed, 3, "report: {recovery:?}");
        assert_eq!(service.num_events(), 3);
        let rendered = render_recovery(&recovery);
        assert!(
            rendered.contains("recovered 3 event(s)"),
            "boot line: {rendered}"
        );

        // A clean truncate pass is a no-op and says so.
        let truncated = run(&[
            "wal".into(),
            "truncate".into(),
            wal_dir.to_string_lossy().to_string(),
        ])
        .expect("wal truncate succeeds");
        assert!(
            truncated.contains("wal is clean"),
            "truncate report: {truncated}"
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_and_durability_flags_reject_bad_usage() {
        assert!(run(&["wal".into()]).is_err());
        assert!(run(&["wal".into(), "frob".into(), "/tmp".into()]).is_err());
        assert!(run(&["wal".into(), "inspect".into()]).is_err());
        assert!(durability_from_flags(&[]).unwrap().is_none());
        assert!(durability_from_flags(&["--wal-dir".into()]).is_err());
        assert!(durability_from_flags(&["--fsync".into(), "always".into()]).is_err());
        assert!(
            durability_from_flags(&["--wal-dir".into(), "/tmp/w".into(), "--fsync".into()])
                .is_err()
        );
        assert!(durability_from_flags(&[
            "--wal-dir".into(),
            "/tmp/w".into(),
            "--fsync".into(),
            "sometimes".into()
        ])
        .is_err());
        assert!(durability_from_flags(&[
            "--wal-dir".into(),
            "/tmp/w".into(),
            "--wal-segment-bytes".into(),
            "zero".into()
        ])
        .is_err());
        let durability = durability_from_flags(&[
            "--wal-dir".into(),
            "/tmp/w".into(),
            "--fsync".into(),
            "every=64".into(),
            "--wal-segment-bytes".into(),
            "65536".into(),
        ])
        .unwrap()
        .expect("flags parse");
        assert_eq!(durability.fsync.to_string(), "every=64");
        assert_eq!(durability.segment_max_bytes, 65_536);
    }

    #[test]
    fn request_command_round_trips_against_a_live_server() {
        let space = locater::space::SpaceBuilder::new("request-test")
            .add_access_point("wap1", &["101"])
            .build()
            .unwrap();
        let state = Arc::new(ServerState::new(
            ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 2),
            None,
        ));
        let server = locater::server::Server::bind(
            Arc::clone(&state),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind loopback");
        let addr = server.local_addr().to_string();

        let pong = run(&["request".into(), addr.clone(), "ping".into()]).expect("ping");
        assert!(pong.contains("Pong"), "response frame: {pong}");
        let ingested = run(&[
            "request".into(),
            addr.clone(),
            "ingest".into(),
            "aa:bb:cc:dd:ee:01,1000,wap1".into(),
        ])
        .expect("ingest");
        assert!(ingested.contains("Ingested"), "response frame: {ingested}");
        // Raw JSON frames pass through unchanged.
        let located = run(&[
            "request".into(),
            addr.clone(),
            "{\"Locate\":{\"mac\":\"aa:bb:cc:dd:ee:01\",\"t\":1000}}".into(),
        ])
        .expect("locate");
        assert!(located.contains("Located"), "response frame: {located}");
        assert_eq!(state.service().num_events(), 1);

        assert!(run(&["request".into()]).is_err(), "address is required");
        assert!(
            run(&["request".into(), addr.clone()]).is_err(),
            "a request line is required"
        );
        assert!(
            run(&["request".into(), addr, "quit".into()]).is_err(),
            "quit is not a wire request"
        );
    }

    #[test]
    fn flag_parsing_helpers() {
        let args: Vec<String> = vec![
            "x".into(),
            "--days".into(),
            "9".into(),
            "--dependent".into(),
        ];
        assert_eq!(flag_value(&args, "--days"), Some("9".to_string()));
        assert_eq!(flag_value(&args, "--seed"), None);
        let config = config_from_flags(&args);
        assert_eq!(config.fine.mode, FineMode::Dependent);
        assert_eq!(config.cache, CacheMode::Enabled);
        let config = config_from_flags(&["--no-cache".to_string()]);
        assert_eq!(config.cache, CacheMode::Disabled);

        assert_eq!(shards_from_flags(&[]).unwrap(), 1);
        assert_eq!(
            shards_from_flags(&["--shards".into(), "4".into()]).unwrap(),
            4
        );
        assert!(shards_from_flags(&["--shards".into()]).is_err());
        assert!(shards_from_flags(&["--shards".into(), "0".into()]).is_err());
    }
}
