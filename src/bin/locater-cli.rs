//! `locater-cli` — command-line front end for the LOCATER cleaning engine.
//!
//! The CLI covers the operational loop of a deployment without writing any Rust:
//! inspect a connectivity log, clean individual queries, batch-clean a whole query
//! file, and generate synthetic datasets to experiment with.
//!
//! ```text
//! locater-cli stats    <space.json> <events.csv>
//! locater-cli locate   <space.json> <events.csv> <mac> <timestamp> [--dependent] [--no-cache]
//! locater-cli batch    <space.json> <events.csv> <queries.csv> [--dependent] [--jobs N] [--shards N]
//! locater-cli serve    <space.json> [<events.csv>] [--dependent] [--no-cache] [--shards N]
//! locater-cli serve    --snapshot <store.snap> [--dependent] [--no-cache] [--shards N]
//! locater-cli snapshot save <space.json> <events.csv> <out.snap> [--embed-index]
//! locater-cli snapshot load <store.snap>
//! locater-cli simulate campus|metro_campus|office|university|mall|airport <out-prefix> [--days N] [--seed N]
//! ```
//!
//! * `space.json` is the [`SpaceMetadata`] format
//!   (AP coverage, public rooms, room owners, preferred rooms).
//! * `events.csv` / `queries.csv` are `mac,timestamp,ap` and `mac,timestamp` files.
//! * `snapshot save` ingests a CSV log once (estimating validity periods) and
//!   persists the whole store — space, device table, segment runs — as one
//!   versioned binary file; `snapshot load` verifies and summarizes it; and
//!   `serve --snapshot` cold-starts the live service from it without replaying
//!   the CSV.
//! * `simulate metro_campus` generates the large metropolitan-campus corpus,
//!   sized by `LOCATER_METRO_SCALE` / `LOCATER_METRO_WEEKS` (see
//!   `CampusConfig::metro_from_env`).
//! * `batch` runs the parallel batch pipeline (`LocaterService::locate_batch`
//!   through the typed request layer): every query is answered against a frozen
//!   snapshot of the affinity cache, so the output is deterministic and
//!   identical for every `--jobs` value (earlier CLI releases answered rows one
//!   by one, progressively warming the cache, so row-level confidences could
//!   differ from today's output).
//! * `serve` starts a live [`ShardedLocaterService`] (`--shards N`, default 1 —
//!   the plain `LocaterService` regime) and reads commands from stdin —
//!   `ingest <mac,timestamp,ap>`, `locate <mac> <timestamp>`, `stats`, `quit` —
//!   so events can be appended while queries are answered, exercising the
//!   online ingestion + epoch-invalidation path end to end. `stats` reports
//!   totals plus one line per shard (see `docs/OPERATIONS.md`); answers are
//!   byte-identical for every `--shards` value.
//! * `simulate` writes `<out-prefix>.space.json`, `<out-prefix>.events.csv` and
//!   `<out-prefix>.truth.csv` so the other commands (and external tools) can consume
//!   a fully synthetic deployment.

use locater::core::system::Location;
use locater::prelude::*;
use locater::space::SpaceMetadata;
use locater::store::SnapshotIndexMode;
use std::fmt::Write as _;
use std::io::BufRead;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  locater-cli stats    <space.json> <events.csv>\n  locater-cli locate   <space.json> <events.csv> <mac> <timestamp> [--dependent] [--no-cache]\n  locater-cli batch    <space.json> <events.csv> <queries.csv> [--dependent] [--jobs N] [--shards N]\n  locater-cli serve    <space.json> [<events.csv>] [--dependent] [--no-cache] [--shards N]\n  locater-cli serve    --snapshot <store.snap> [--dependent] [--no-cache] [--shards N]\n  locater-cli snapshot save <space.json> <events.csv> <out.snap> [--embed-index]\n  locater-cli snapshot load <store.snap>\n  locater-cli simulate campus|metro_campus|office|university|mall|airport <out-prefix> [--days N] [--seed N]"
}

/// Parses arguments and runs one command, returning the text to print.
fn run(args: &[String]) -> Result<String, String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "stats" => stats(
            args.get(1).ok_or("missing space.json")?,
            args.get(2).ok_or("missing events.csv")?,
        ),
        "locate" => locate(args),
        "batch" => batch(args),
        "serve" => serve(args),
        "snapshot" => snapshot(args),
        "simulate" => simulate(args),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load_space(space_path: &str) -> Result<Space, String> {
    let metadata_json = std::fs::read_to_string(space_path)
        .map_err(|e| format!("cannot read {space_path}: {e}"))?;
    SpaceMetadata::from_json(&metadata_json)
        .map_err(|e| format!("invalid space metadata: {e}"))?
        .build()
        .map_err(|e| format!("invalid space metadata: {e}"))
}

fn load_store(space_path: &str, events_path: &str) -> Result<EventStore, String> {
    let space = load_space(space_path)?;
    let csv = std::fs::read_to_string(events_path)
        .map_err(|e| format!("cannot read {events_path}: {e}"))?;
    let mut store =
        EventStore::from_csv(space, &csv).map_err(|e| format!("cannot ingest events: {e}"))?;
    store.estimate_deltas();
    Ok(store)
}

fn config_from_flags(args: &[String]) -> LocaterConfig {
    let mut config = LocaterConfig::default();
    if args.iter().any(|a| a == "--dependent") {
        config = config.with_fine_mode(FineMode::Dependent);
    }
    if args.iter().any(|a| a == "--no-cache") {
        config = config.with_cache(CacheMode::Disabled);
    }
    config
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|idx| args.get(idx + 1))
        .cloned()
}

/// Parses `--shards N` (default 1 — the single-shard `LocaterService` regime).
fn shards_from_flags(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--shards") {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&shards| shards >= 1)
            .ok_or_else(|| "--shards must be a positive integer".to_string()),
        None if args.iter().any(|a| a == "--shards") => {
            Err("--shards requires a value".to_string())
        }
        None => Ok(1),
    }
}

fn describe(space: &Space, location: &Location) -> String {
    match location {
        Location::Outside => "outside the building".to_string(),
        Location::Region(region) => format!(
            "inside, region {region} (AP {}), room undetermined",
            space.access_point(space.ap_of_region(*region)).name
        ),
        Location::Room { room, region } => format!(
            "room {} (region {region}, AP {})",
            space.room(*room).name,
            space.access_point(space.ap_of_region(*region)).name
        ),
    }
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

fn stats(space_path: &str, events_path: &str) -> Result<String, String> {
    let store = load_store(space_path, events_path)?;
    let stats = store.stats();
    let mut out = String::new();
    let _ = writeln!(out, "{}", stats.to_report());
    let (public, private) = store.space().room_type_counts();
    let _ = writeln!(
        out,
        "rooms: {public} public / {private} private; {} devices have registered preferred rooms",
        store.space().preferred_map().len()
    );
    let mut device_gaps = 0usize;
    for device in store.devices() {
        device_gaps += store.gaps_of(device.id).len();
    }
    let _ = writeln!(
        out,
        "gaps to clean across all devices: {device_gaps} (δ estimated per device, mean {:.0}s)",
        stats.mean_delta_seconds
    );
    let index = store.colocation_stats();
    let _ = writeln!(
        out,
        "co-location index: {} AP posting lists, {} time buckets over {} events ({} devices indexed)",
        index.ap_lists, index.buckets, index.events, index.devices
    );
    Ok(out)
}

fn locate(args: &[String]) -> Result<String, String> {
    let space_path = args.get(1).ok_or("missing space.json")?;
    let events_path = args.get(2).ok_or("missing events.csv")?;
    let mac = args.get(3).ok_or("missing mac")?;
    let t: Timestamp = args
        .get(4)
        .ok_or("missing timestamp")?
        .parse()
        .map_err(|_| "timestamp must be an integer number of seconds".to_string())?;
    let store = load_store(space_path, events_path)?;
    let locater = Locater::new(store, config_from_flags(args));
    let answer = locater
        .locate(&Query::by_mac(mac.clone(), t))
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "{mac} @ {}: {} (decided by {:?}, confidence {:.2})\n",
        locater::events::clock::format_timestamp(t),
        describe(locater.store().space(), &answer.location),
        answer.coarse_method,
        answer.confidence
    ))
}

fn batch(args: &[String]) -> Result<String, String> {
    let space_path = args.get(1).ok_or("missing space.json")?;
    let events_path = args.get(2).ok_or("missing events.csv")?;
    let queries_path = args.get(3).ok_or("missing queries.csv")?;
    let jobs: usize = match flag_value(args, "--jobs") {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&jobs| jobs >= 1)
            .ok_or_else(|| "--jobs must be a positive integer".to_string())?,
        None if args.iter().any(|a| a == "--jobs") => {
            return Err("--jobs requires a value".to_string());
        }
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    let shards = shards_from_flags(args)?;
    let store = load_store(space_path, events_path)?;
    let space = store.space().clone();
    let service = ShardedLocaterService::new(store, config_from_flags(args), shards);

    let queries_text = std::fs::read_to_string(queries_path)
        .map_err(|e| format!("cannot read {queries_path}: {e}"))?;
    let mut requests: Vec<LocateRequest> = Vec::new();
    for (line_no, line) in queries_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (line_no == 0 && line.to_ascii_lowercase().starts_with("mac,")) {
            continue;
        }
        let mut parts = line.split(',');
        let mac = parts.next().unwrap_or_default().trim();
        let t: Timestamp = parts
            .next()
            .unwrap_or_default()
            .trim()
            .parse()
            .map_err(|_| format!("line {}: invalid timestamp", line_no + 1))?;
        requests.push(LocateRequest::by_mac(mac, t));
    }

    // The parallel batch pipeline: responses are deterministic and ordered
    // regardless of the job count.
    let responses = service.locate_batch(&requests, jobs);
    let mut out = String::from("mac,timestamp,location,room,confidence\n");
    let mut answered = 0usize;
    for (request, result) in requests.iter().zip(&responses) {
        let mac = request.mac.as_deref().unwrap_or_default();
        let t = request.t;
        let (location, room, confidence) = match result {
            Ok(response) => {
                let answer = &response.answer;
                let room = answer
                    .room()
                    .map(|r| space.room(r).name.clone())
                    .unwrap_or_default();
                let kind = if answer.is_outside() {
                    "outside"
                } else {
                    "inside"
                };
                (kind.to_string(), room, answer.confidence)
            }
            Err(_) => ("unknown-device".to_string(), String::new(), 0.0),
        };
        let _ = writeln!(out, "{mac},{t},{location},{room},{confidence:.3}");
        answered += 1;
    }
    let _ = writeln!(out, "# answered {answered} queries ({jobs} jobs)");
    Ok(out)
}

fn serve(args: &[String]) -> Result<String, String> {
    let store = if let Some(snapshot_path) = flag_value(args, "--snapshot") {
        // Cold start from the binary snapshot: no CSV replay, validity periods
        // already estimated, segments restored verbatim.
        EventStore::load_snapshot(&snapshot_path)
            .map_err(|e| format!("cannot load snapshot {snapshot_path}: {e}"))?
    } else {
        let space_path = args.get(1).ok_or("missing space.json (or --snapshot)")?;
        let events_path = args.get(2).filter(|a| !a.starts_with("--"));
        match events_path {
            Some(events_path) => load_store(space_path, events_path)?,
            None => EventStore::new(load_space(space_path)?),
        }
    };
    let service =
        ShardedLocaterService::new(store, config_from_flags(args), shards_from_flags(args)?);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let commands = serve_loop(&service, stdin.lock(), &mut stdout)?;
    Ok(format!("# served {commands} commands\n"))
}

/// The `serve` REPL: one command per input line, responses written (and
/// flushed) to `out` as they are produced.
///
/// ```text
/// ingest <mac,timestamp,ap>   append one live event (CSV, same as events.csv rows)
/// locate <mac> <timestamp>    answer a query over the current store
/// stats                       totals plus per-shard event/device/cache counts
/// quit                        stop reading
/// ```
fn serve_loop(
    service: &ShardedLocaterService,
    input: impl BufRead,
    out: &mut impl std::io::Write,
) -> Result<usize, String> {
    let mut commands = 0usize;
    let mut respond = |message: String| -> Result<(), String> {
        writeln!(out, "{message}").map_err(|e| format!("cannot write response: {e}"))?;
        out.flush()
            .map_err(|e| format!("cannot write response: {e}"))
    };
    for line in input.lines() {
        let line = line.map_err(|e| format!("cannot read command: {e}"))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        commands += 1;
        let (verb, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        match verb {
            "quit" | "exit" => break,
            "ingest" => {
                let csv = format!("mac,timestamp,ap\n{}\n", rest.trim());
                match locater::store::parse_csv(&csv) {
                    Ok(rows) if rows.len() == 1 => match service.ingest_batch(rows.iter()) {
                        Ok(_) => {
                            let device = service
                                .device_id(&rows[0].mac)
                                .expect("ingest interned the device");
                            respond(format!(
                                "ingested {} @ {} via {} (device epoch {})",
                                rows[0].mac,
                                rows[0].t,
                                rows[0].ap,
                                service.device_epoch(device)
                            ))?;
                        }
                        Err(e) => respond(format!("error: {e}"))?,
                    },
                    Ok(_) => {
                        respond("error: ingest takes exactly one mac,timestamp,ap line".into())?
                    }
                    Err(e) => respond(format!("error: {e}"))?,
                }
            }
            "locate" => {
                let mut parts = rest.split_whitespace();
                let (Some(mac), Some(t)) = (parts.next(), parts.next()) else {
                    respond("error: usage: locate <mac> <timestamp>".into())?;
                    continue;
                };
                let Ok(t) = t.parse::<Timestamp>() else {
                    respond("error: timestamp must be an integer number of seconds".into())?;
                    continue;
                };
                match service.locate(&LocateRequest::by_mac(mac, t)) {
                    Ok(response) => {
                        let described = describe(&service.space(), &response.answer.location);
                        respond(format!(
                            "{mac} @ {}: {} (decided by {:?}, confidence {:.2}, epoch {}, {} events)",
                            locater::events::clock::format_timestamp(t),
                            described,
                            response.answer.coarse_method,
                            response.answer.confidence,
                            response.device_epoch,
                            response.events_seen
                        ))?;
                    }
                    Err(e) => respond(format!("error: {e}"))?,
                }
            }
            "stats" => {
                // One consistent sweep: totals are sums of the per-shard
                // counters, so the header can never disagree with the lines.
                let per_shard = service.shard_stats();
                let devices = service.num_devices();
                let events: usize = per_shard.iter().map(|s| s.events).sum();
                let edges: usize = per_shard.iter().map(|s| s.edges).sum();
                let samples: usize = per_shard.iter().map(|s| s.samples).sum();
                let live_edges: usize = per_shard.iter().map(|s| s.live_edges).sum();
                let live_samples: usize = per_shard.iter().map(|s| s.live_samples).sum();
                let index_lists: usize = per_shard.iter().map(|s| s.index_ap_lists).sum();
                let index_buckets: usize = per_shard.iter().map(|s| s.index_buckets).sum();
                let mut report = format!(
                    "{events} events, {devices} devices across {} shard(s); affinity cache: {live_edges}/{edges} edges live, {live_samples}/{samples} samples live; co-location index: {index_lists} AP lists, {index_buckets} buckets",
                    service.num_shards()
                );
                for stats in per_shard {
                    let _ = write!(
                        report,
                        "\nshard {}: {} events, {} devices; cache: {}/{} edges live, {}/{} samples live; index: {} AP lists, {} buckets",
                        stats.shard,
                        stats.events,
                        stats.owned_devices,
                        stats.live_edges,
                        stats.edges,
                        stats.live_samples,
                        stats.samples,
                        stats.index_ap_lists,
                        stats.index_buckets
                    );
                }
                respond(report)?;
            }
            other => respond(format!(
                "error: unknown command {other:?} (ingest / locate / stats / quit)"
            ))?,
        }
    }
    Ok(commands)
}

fn snapshot(args: &[String]) -> Result<String, String> {
    let action = args.get(1).ok_or("missing snapshot action (save|load)")?;
    match action.as_str() {
        "save" => {
            let space_path = args.get(2).ok_or("missing space.json")?;
            let events_path = args.get(3).ok_or("missing events.csv")?;
            let out_path = args.get(4).ok_or("missing output snapshot path")?;
            // `--embed-index` persists the co-location posting lists so a cold
            // start skips the index rebuild (larger file); the default
            // rebuilds the index on load.
            let mode = if args.iter().any(|a| a == "--embed-index") {
                SnapshotIndexMode::Embedded
            } else {
                SnapshotIndexMode::Rebuild
            };
            let store = load_store(space_path, events_path)?;
            store
                .save_snapshot_with(out_path, mode)
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            let size = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
            Ok(format!(
                "saved {out_path}: {} events, {} devices, {} segments ({size} bytes, index {})\n",
                store.num_events(),
                store.num_devices(),
                store.num_segments(),
                match mode {
                    SnapshotIndexMode::Embedded => "embedded",
                    SnapshotIndexMode::Rebuild => "rebuilt on load",
                }
            ))
        }
        "load" => {
            let path = args.get(2).ok_or("missing snapshot path")?;
            let store = EventStore::load_snapshot(path)
                .map_err(|e| format!("cannot load snapshot {path}: {e}"))?;
            let mut out = String::new();
            let _ = writeln!(out, "{}", store.stats().to_report());
            let _ = writeln!(
                out,
                "segments: {} across {} devices (span {}s)",
                store.num_segments(),
                store.num_devices(),
                store.segment_span()
            );
            let index = store.colocation_stats();
            let _ = writeln!(
                out,
                "co-location index: {} AP posting lists, {} time buckets",
                index.ap_lists, index.buckets
            );
            Ok(out)
        }
        other => Err(format!("unknown snapshot action {other:?} (save|load)")),
    }
}

fn simulate(args: &[String]) -> Result<String, String> {
    let kind = args.get(1).ok_or("missing scenario kind")?;
    let prefix = args.get(2).ok_or("missing output prefix")?;
    let days: i64 = flag_value(args, "--days")
        .map(|v| {
            v.parse()
                .map_err(|_| "--days must be an integer".to_string())
        })
        .transpose()?
        .unwrap_or(14);
    let seed: u64 = flag_value(args, "--seed")
        .map(|v| {
            v.parse()
                .map_err(|_| "--seed must be an integer".to_string())
        })
        .transpose()?
        .unwrap_or(7);

    let output = match kind.as_str() {
        "campus" => Simulator::new(seed).run_campus(&CampusConfig {
            weeks: (days / 7).max(1),
            ..CampusConfig::default()
        }),
        "metro_campus" => {
            // Env-sized large scenario; --days overrides the env/default weeks.
            let mut config = CampusConfig::metro_from_env();
            if flag_value(args, "--days").is_some() {
                config.weeks = (days / 7).max(1);
            }
            Simulator::new(seed).run_campus(&config)
        }
        "office" | "university" | "mall" | "airport" => {
            let scenario = match kind.as_str() {
                "office" => ScenarioKind::Office,
                "university" => ScenarioKind::University,
                "mall" => ScenarioKind::Mall,
                _ => ScenarioKind::Airport,
            };
            Simulator::new(seed).run_scenario(
                &locater::sim::ScenarioConfig::new(scenario)
                    .with_days(days)
                    .with_seed(seed),
            )
        }
        other => return Err(format!("unknown scenario {other:?}")),
    };

    // Space metadata.
    let metadata = SpaceMetadata::from_space(&output.space);
    let space_path = format!("{prefix}.space.json");
    std::fs::write(&space_path, metadata.to_json().map_err(|e| e.to_string())?)
        .map_err(|e| format!("cannot write {space_path}: {e}"))?;
    // Events.
    let events_path = format!("{prefix}.events.csv");
    std::fs::write(&events_path, locater::store::format_csv(&output.events))
        .map_err(|e| format!("cannot write {events_path}: {e}"))?;
    // Ground truth.
    let truth_path = format!("{prefix}.truth.csv");
    let mut truth = String::from("mac,room,start,end\n");
    for record in &output.people {
        for stay in output.ground_truth.stays_of(&record.mac) {
            let _ = writeln!(
                truth,
                "{},{},{},{}",
                record.mac,
                output.space.room(stay.room).name,
                stay.interval.start,
                stay.interval.end
            );
        }
    }
    std::fs::write(&truth_path, truth).map_err(|e| format!("cannot write {truth_path}: {e}"))?;

    Ok(format!(
        "simulated {kind}: {} events, {} devices, {} days\nwrote {space_path}, {events_path}, {truth_path}\n",
        output.events.len(),
        output.people.len(),
        output.days
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater::store::parse_csv;

    #[test]
    fn missing_command_and_unknown_command_error() {
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(usage().contains("locater-cli"));
    }

    #[test]
    fn simulate_then_stats_then_locate_roundtrip() {
        let dir = std::env::temp_dir().join(format!("locater-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("office").to_string_lossy().to_string();

        let simulate_args: Vec<String> = vec![
            "simulate".into(),
            "office".into(),
            prefix.clone(),
            "--days".into(),
            "3".into(),
            "--seed".into(),
            "5".into(),
        ];
        let report = run(&simulate_args).expect("simulate succeeds");
        assert!(report.contains("simulated office"));

        let space = format!("{prefix}.space.json");
        let events = format!("{prefix}.events.csv");
        let stats_out = run(&["stats".into(), space.clone(), events.clone()]).expect("stats");
        assert!(stats_out.contains("devices"));
        assert!(stats_out.contains("gaps to clean"));
        assert!(stats_out.contains("co-location index:"));

        // Locate the first device found in the events file at its first event time:
        // always answerable.
        let csv = std::fs::read_to_string(&events).unwrap();
        let first = parse_csv(&csv).unwrap().into_iter().next().unwrap();
        let locate_out = run(&[
            "locate".into(),
            space.clone(),
            events.clone(),
            first.mac.clone(),
            first.t.to_string(),
            "--dependent".into(),
        ])
        .expect("locate succeeds");
        assert!(locate_out.contains(&first.mac));
        assert!(locate_out.contains("room") || locate_out.contains("outside"));

        // Batch: two queries, one for an unknown device.
        let queries = dir.join("queries.csv");
        std::fs::write(
            &queries,
            format!(
                "mac,timestamp\n{},{}\nghost-device,123\n",
                first.mac, first.t
            ),
        )
        .unwrap();
        let batch_out = run(&[
            "batch".into(),
            space.clone(),
            events.clone(),
            queries.to_string_lossy().to_string(),
            "--jobs".into(),
            "2".into(),
        ])
        .expect("batch succeeds");
        assert!(batch_out.contains("answered 2 queries"));
        assert!(batch_out.contains("unknown-device"));

        // The same batch on one job is byte-identical (deterministic pipeline).
        let batch_one = run(&[
            "batch".into(),
            space.clone(),
            events.clone(),
            queries.to_string_lossy().to_string(),
            "--jobs".into(),
            "1".into(),
        ])
        .expect("batch succeeds");
        assert_eq!(
            batch_one.replace("(1 jobs)", ""),
            batch_out.replace("(2 jobs)", "")
        );

        // ...and byte-identical again when the service is sharded.
        let batch_sharded = run(&[
            "batch".into(),
            space,
            events,
            queries.to_string_lossy().to_string(),
            "--jobs".into(),
            "2".into(),
            "--shards".into(),
            "3".into(),
        ])
        .expect("sharded batch succeeds");
        assert_eq!(batch_sharded, batch_out);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_save_load_and_serve_roundtrip() {
        let dir = std::env::temp_dir().join(format!("locater-cli-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("office").to_string_lossy().to_string();
        run(&[
            "simulate".into(),
            "office".into(),
            prefix.clone(),
            "--days".into(),
            "3".into(),
            "--seed".into(),
            "11".into(),
        ])
        .expect("simulate succeeds");
        let space = format!("{prefix}.space.json");
        let events = format!("{prefix}.events.csv");
        let snap = format!("{prefix}.snap");

        let saved = run(&[
            "snapshot".into(),
            "save".into(),
            space,
            events.clone(),
            snap.clone(),
        ])
        .expect("snapshot save succeeds");
        assert!(saved.contains("saved"));
        assert!(saved.contains("segments"));

        let loaded =
            run(&["snapshot".into(), "load".into(), snap.clone()]).expect("snapshot load succeeds");
        assert!(loaded.contains("events"));
        assert!(loaded.contains("segments:"));
        assert!(loaded.contains("co-location index:"));

        // `--embed-index` persists the posting lists: bigger file, identical
        // store on load.
        let embedded_snap = format!("{prefix}.embedded.snap");
        let saved_embedded = run(&[
            "snapshot".into(),
            "save".into(),
            format!("{prefix}.space.json"),
            events.clone(),
            embedded_snap.clone(),
            "--embed-index".into(),
        ])
        .expect("embedded snapshot save succeeds");
        assert!(saved_embedded.contains("index embedded"));
        let plain = std::fs::metadata(&snap).unwrap().len();
        let embedded = std::fs::metadata(&embedded_snap).unwrap().len();
        assert!(embedded > plain, "embedded index must grow the snapshot");
        assert_eq!(
            EventStore::load_snapshot(&embedded_snap).unwrap(),
            EventStore::load_snapshot(&snap).unwrap(),
        );

        // Serving straight from the snapshot answers queries without the CSV.
        let csv = std::fs::read_to_string(&events).unwrap();
        let first = parse_csv(&csv).unwrap().into_iter().next().unwrap();
        let store = EventStore::load_snapshot(&snap).expect("snapshot loads");
        // Serve from the snapshot with two shards: the store splits on load.
        let service = ShardedLocaterService::new(store, LocaterConfig::default(), 2);
        let mut out: Vec<u8> = Vec::new();
        let input = format!("locate {} {}\nquit\n", first.mac, first.t);
        serve_loop(&service, std::io::Cursor::new(input), &mut out).expect("serve loop runs");
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains(&first.mac));
        assert!(out.contains("room") || out.contains("outside"));

        // Corrupting the snapshot yields a typed, non-panicking CLI error.
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&snap, bytes).unwrap();
        let err = run(&["snapshot".into(), "load".into(), snap]).unwrap_err();
        assert!(err.contains("checksum"), "unexpected error: {err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_command_rejects_bad_usage() {
        assert!(run(&["snapshot".into()]).is_err());
        assert!(run(&["snapshot".into(), "frob".into()]).is_err());
        assert!(run(&["snapshot".into(), "save".into()]).is_err());
        assert!(run(&[
            "snapshot".into(),
            "load".into(),
            "/no/such/file.snap".into()
        ])
        .is_err());
        assert!(
            run(&["serve".into()]).is_err(),
            "serve needs a space or snapshot"
        );
    }

    #[test]
    fn serve_loop_ingests_locates_and_reports_stats() {
        let space = locater::space::SpaceBuilder::new("serve-test")
            .add_access_point("wap1", &["101", "102"])
            .build()
            .unwrap();
        let service =
            ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 2);
        let input = "\
# comment lines and blanks are skipped

stats
ingest aa:bb:cc:dd:ee:01,1000,wap1
ingest aa:bb:cc:dd:ee:01,4000,wap1
locate aa:bb:cc:dd:ee:01 2500
locate ghost 2500
ingest broken-line-without-commas
locate aa:bb:cc:dd:ee:01
frobnicate
quit
stats
";
        let mut out: Vec<u8> = Vec::new();
        let commands =
            serve_loop(&service, std::io::Cursor::new(input), &mut out).expect("serve loop runs");
        // `quit` stops the loop before the trailing stats line.
        assert_eq!(commands, 9);
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("0 events, 0 devices across 2 shard(s)"));
        assert!(out.contains("co-location index: 0 AP lists, 0 buckets"));
        assert!(out.contains("shard 0: 0 events"));
        assert!(out.contains("shard 1: 0 events"));
        assert!(out.contains("index: 0 AP lists, 0 buckets"));
        assert!(out.contains("ingested aa:bb:cc:dd:ee:01 @ 1000 via wap1 (device epoch 1)"));
        assert!(out.contains("(device epoch 2)"));
        assert!(out.contains("room") || out.contains("outside"));
        assert!(out.contains("2 events)"), "locate reports the store size");
        assert!(out.contains("error: unknown device: ghost"));
        assert!(out.contains("error: usage: locate <mac> <timestamp>"));
        assert!(out.contains("error: unknown command \"frobnicate\""));
        assert_eq!(service.num_events(), 2);
    }

    #[test]
    fn serve_loop_rejects_bad_ingest_lines() {
        let space = locater::space::SpaceBuilder::new("serve-test")
            .add_access_point("wap1", &["101"])
            .build()
            .unwrap();
        let service =
            ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 1);
        let input = "ingest aa,100,wap9\nlocate aa 1x0\n";
        let mut out: Vec<u8> = Vec::new();
        serve_loop(&service, std::io::Cursor::new(input), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("error:"));
        assert!(out.contains("timestamp must be an integer"));
        assert_eq!(service.num_events(), 0);
    }

    #[test]
    fn flag_parsing_helpers() {
        let args: Vec<String> = vec![
            "x".into(),
            "--days".into(),
            "9".into(),
            "--dependent".into(),
        ];
        assert_eq!(flag_value(&args, "--days"), Some("9".to_string()));
        assert_eq!(flag_value(&args, "--seed"), None);
        let config = config_from_flags(&args);
        assert_eq!(config.fine.mode, FineMode::Dependent);
        assert_eq!(config.cache, CacheMode::Enabled);
        let config = config_from_flags(&["--no-cache".to_string()]);
        assert_eq!(config.cache, CacheMode::Disabled);

        assert_eq!(shards_from_flags(&[]).unwrap(), 1);
        assert_eq!(
            shards_from_flags(&["--shards".into(), "4".into()]).unwrap(),
            4
        );
        assert!(shards_from_flags(&["--shards".into()]).is_err());
        assert!(shards_from_flags(&["--shards".into(), "0".into()]).is_err());
    }
}
