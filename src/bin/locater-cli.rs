//! `locater-cli` — command-line front end for the LOCATER cleaning engine.
//!
//! The CLI covers the operational loop of a deployment without writing any Rust:
//! inspect a connectivity log, clean individual queries, batch-clean a whole query
//! file, and generate synthetic datasets to experiment with.
//!
//! ```text
//! locater-cli stats    <space.json> <events.csv>
//! locater-cli locate   <space.json> <events.csv> <mac> <timestamp> [--dependent] [--no-cache]
//! locater-cli batch    <space.json> <events.csv> <queries.csv> [--dependent] [--jobs N] [--shards N]
//! locater-cli serve    <space.json> [<events.csv>] [--dependent] [--no-cache] [--shards N]
//! locater-cli serve    --snapshot <store.snap> [--dependent] [--no-cache] [--shards N]
//! locater-cli serve    ... --listen <addr> [--workers N] [--queue N] [--idle-timeout SECS] [--drain-snapshot PATH]
//! locater-cli request  <addr> <verb line or raw JSON frame>
//! locater-cli snapshot save <space.json> <events.csv> <out.snap> [--embed-index]
//! locater-cli snapshot load <store.snap>
//! locater-cli simulate campus|metro_campus|office|university|mall|airport <out-prefix> [--days N] [--seed N]
//! ```
//!
//! * `space.json` is the [`SpaceMetadata`] format
//!   (AP coverage, public rooms, room owners, preferred rooms).
//! * `events.csv` / `queries.csv` are `mac,timestamp,ap` and `mac,timestamp` files.
//! * `snapshot save` ingests a CSV log once (estimating validity periods) and
//!   persists the whole store — space, device table, segment runs — as one
//!   versioned binary file; `snapshot load` verifies and summarizes it; and
//!   `serve --snapshot` cold-starts the live service from it without replaying
//!   the CSV.
//! * `simulate metro_campus` generates the large metropolitan-campus corpus,
//!   sized by `LOCATER_METRO_SCALE` / `LOCATER_METRO_WEEKS` (see
//!   `CampusConfig::metro_from_env`).
//! * `batch` runs the parallel batch pipeline (`LocaterService::locate_batch`
//!   through the typed request layer): every query is answered against a frozen
//!   snapshot of the affinity cache, so the output is deterministic and
//!   identical for every `--jobs` value (earlier CLI releases answered rows one
//!   by one, progressively warming the cache, so row-level confidences could
//!   differ from today's output).
//! * `serve` starts a live [`ShardedLocaterService`] (`--shards N`, default 1 —
//!   the plain `LocaterService` regime). Without `--listen` it reads commands
//!   from stdin — the legacy verb syntax (`ingest <mac,timestamp,ap>`,
//!   `locate <mac> <timestamp>`, `stats`, `ping`, `snapshot <path>`,
//!   `shutdown`, `quit`) or raw NDJSON [`WireRequest`]
//!   frames; the REPL is the
//!   wire protocol over stdio (`locater_proto::parse_repl_line`). With
//!   `--listen <addr>` it serves the same protocol over TCP
//!   ([`locater::server::Server`]): pipelined NDJSON frames, bounded admission
//!   (`--queue`, explicit `overloaded` responses), idle timeouts, and graceful
//!   drain + `--drain-snapshot` on SIGTERM or a `shutdown` request. `stats`
//!   reports totals plus one line per shard and the serving-layer counters
//!   (see `docs/OPERATIONS.md`); answers are byte-identical for every
//!   `--shards` value.
//! * `request` sends one request (verb syntax or raw JSON) to a running
//!   `serve --listen` server and prints the raw NDJSON response frame.
//! * `simulate` writes `<out-prefix>.space.json`, `<out-prefix>.events.csv` and
//!   `<out-prefix>.truth.csv` so the other commands (and external tools) can consume
//!   a fully synthetic deployment.

use locater::prelude::*;
use locater::proto::{encode_request, parse_repl_line, ReplCommand, WireResponse};
use locater::server::{describe_location, render_response, ServerConfig, ServerState};
use locater::space::SpaceMetadata;
use locater::store::SnapshotIndexMode;
use std::fmt::Write as _;
use std::io::{BufRead, Write as _};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  locater-cli stats    <space.json> <events.csv>\n  locater-cli locate   <space.json> <events.csv> <mac> <timestamp> [--dependent] [--no-cache]\n  locater-cli batch    <space.json> <events.csv> <queries.csv> [--dependent] [--jobs N] [--shards N]\n  locater-cli serve    <space.json> [<events.csv>] [--dependent] [--no-cache] [--shards N]\n  locater-cli serve    --snapshot <store.snap> [--dependent] [--no-cache] [--shards N]\n  locater-cli serve    ... --listen <addr> [--workers N] [--queue N] [--idle-timeout SECS] [--drain-snapshot PATH]\n  locater-cli request  <addr> <verb line or raw JSON frame>\n  locater-cli snapshot save <space.json> <events.csv> <out.snap> [--embed-index]\n  locater-cli snapshot load <store.snap>\n  locater-cli simulate campus|metro_campus|office|university|mall|airport <out-prefix> [--days N] [--seed N]"
}

/// Parses arguments and runs one command, returning the text to print.
fn run(args: &[String]) -> Result<String, String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "stats" => stats(
            args.get(1).ok_or("missing space.json")?,
            args.get(2).ok_or("missing events.csv")?,
        ),
        "locate" => locate(args),
        "batch" => batch(args),
        "serve" => serve(args),
        "request" => request(args),
        "snapshot" => snapshot(args),
        "simulate" => simulate(args),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load_space(space_path: &str) -> Result<Space, String> {
    let metadata_json = std::fs::read_to_string(space_path)
        .map_err(|e| format!("cannot read {space_path}: {e}"))?;
    SpaceMetadata::from_json(&metadata_json)
        .map_err(|e| format!("invalid space metadata: {e}"))?
        .build()
        .map_err(|e| format!("invalid space metadata: {e}"))
}

fn load_store(space_path: &str, events_path: &str) -> Result<EventStore, String> {
    let space = load_space(space_path)?;
    let csv = std::fs::read_to_string(events_path)
        .map_err(|e| format!("cannot read {events_path}: {e}"))?;
    let mut store =
        EventStore::from_csv(space, &csv).map_err(|e| format!("cannot ingest events: {e}"))?;
    store.estimate_deltas();
    Ok(store)
}

fn config_from_flags(args: &[String]) -> LocaterConfig {
    let mut config = LocaterConfig::default();
    if args.iter().any(|a| a == "--dependent") {
        config = config.with_fine_mode(FineMode::Dependent);
    }
    if args.iter().any(|a| a == "--no-cache") {
        config = config.with_cache(CacheMode::Disabled);
    }
    config
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|idx| args.get(idx + 1))
        .cloned()
}

/// Parses `--shards N` (default 1 — the single-shard `LocaterService` regime).
fn shards_from_flags(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--shards") {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&shards| shards >= 1)
            .ok_or_else(|| "--shards must be a positive integer".to_string()),
        None if args.iter().any(|a| a == "--shards") => {
            Err("--shards requires a value".to_string())
        }
        None => Ok(1),
    }
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

fn stats(space_path: &str, events_path: &str) -> Result<String, String> {
    let store = load_store(space_path, events_path)?;
    let stats = store.stats();
    let mut out = String::new();
    let _ = writeln!(out, "{}", stats.to_report());
    let (public, private) = store.space().room_type_counts();
    let _ = writeln!(
        out,
        "rooms: {public} public / {private} private; {} devices have registered preferred rooms",
        store.space().preferred_map().len()
    );
    let mut device_gaps = 0usize;
    for device in store.devices() {
        device_gaps += store.gaps_of(device.id).len();
    }
    let _ = writeln!(
        out,
        "gaps to clean across all devices: {device_gaps} (δ estimated per device, mean {:.0}s)",
        stats.mean_delta_seconds
    );
    let index = store.colocation_stats();
    let _ = writeln!(
        out,
        "co-location index: {} AP posting lists, {} time buckets over {} events ({} devices indexed)",
        index.ap_lists, index.buckets, index.events, index.devices
    );
    Ok(out)
}

fn locate(args: &[String]) -> Result<String, String> {
    let space_path = args.get(1).ok_or("missing space.json")?;
    let events_path = args.get(2).ok_or("missing events.csv")?;
    let mac = args.get(3).ok_or("missing mac")?;
    let t: Timestamp = args
        .get(4)
        .ok_or("missing timestamp")?
        .parse()
        .map_err(|_| "timestamp must be an integer number of seconds".to_string())?;
    let store = load_store(space_path, events_path)?;
    let locater = Locater::new(store, config_from_flags(args));
    let answer = locater
        .locate(&Query::by_mac(mac.clone(), t))
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "{mac} @ {}: {} (decided by {:?}, confidence {:.2})\n",
        locater::events::clock::format_timestamp(t),
        describe_location(locater.store().space(), &answer.location),
        answer.coarse_method,
        answer.confidence
    ))
}

fn batch(args: &[String]) -> Result<String, String> {
    let space_path = args.get(1).ok_or("missing space.json")?;
    let events_path = args.get(2).ok_or("missing events.csv")?;
    let queries_path = args.get(3).ok_or("missing queries.csv")?;
    let jobs: usize = match flag_value(args, "--jobs") {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&jobs| jobs >= 1)
            .ok_or_else(|| "--jobs must be a positive integer".to_string())?,
        None if args.iter().any(|a| a == "--jobs") => {
            return Err("--jobs requires a value".to_string());
        }
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    let shards = shards_from_flags(args)?;
    let store = load_store(space_path, events_path)?;
    let space = store.space().clone();
    let service = ShardedLocaterService::new(store, config_from_flags(args), shards);

    let queries_text = std::fs::read_to_string(queries_path)
        .map_err(|e| format!("cannot read {queries_path}: {e}"))?;
    let mut requests: Vec<LocateRequest> = Vec::new();
    for (line_no, line) in queries_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (line_no == 0 && line.to_ascii_lowercase().starts_with("mac,")) {
            continue;
        }
        let mut parts = line.split(',');
        let mac = parts.next().unwrap_or_default().trim();
        let t: Timestamp = parts
            .next()
            .unwrap_or_default()
            .trim()
            .parse()
            .map_err(|_| format!("line {}: invalid timestamp", line_no + 1))?;
        requests.push(LocateRequest::by_mac(mac, t));
    }

    // The parallel batch pipeline: responses are deterministic and ordered
    // regardless of the job count.
    let responses = service.locate_batch(&requests, jobs);
    let mut out = String::from("mac,timestamp,location,room,confidence\n");
    let mut answered = 0usize;
    for (request, result) in requests.iter().zip(&responses) {
        let mac = request.mac.as_deref().unwrap_or_default();
        let t = request.t;
        let (location, room, confidence) = match result {
            Ok(response) => {
                let answer = &response.answer;
                let room = answer
                    .room()
                    .map(|r| space.room(r).name.clone())
                    .unwrap_or_default();
                let kind = if answer.is_outside() {
                    "outside"
                } else {
                    "inside"
                };
                (kind.to_string(), room, answer.confidence)
            }
            Err(_) => ("unknown-device".to_string(), String::new(), 0.0),
        };
        let _ = writeln!(out, "{mac},{t},{location},{room},{confidence:.3}");
        answered += 1;
    }
    let _ = writeln!(out, "# answered {answered} queries ({jobs} jobs)");
    Ok(out)
}

fn serve(args: &[String]) -> Result<String, String> {
    let store = if let Some(snapshot_path) = flag_value(args, "--snapshot") {
        // Cold start from the binary snapshot: no CSV replay, validity periods
        // already estimated, segments restored verbatim.
        EventStore::load_snapshot(&snapshot_path)
            .map_err(|e| format!("cannot load snapshot {snapshot_path}: {e}"))?
    } else {
        let space_path = args.get(1).ok_or("missing space.json (or --snapshot)")?;
        let events_path = args.get(2).filter(|a| !a.starts_with("--"));
        match events_path {
            Some(events_path) => load_store(space_path, events_path)?,
            None => EventStore::new(load_space(space_path)?),
        }
    };
    let service =
        ShardedLocaterService::new(store, config_from_flags(args), shards_from_flags(args)?);
    let state = Arc::new(ServerState::new(
        service,
        flag_value(args, "--drain-snapshot"),
    ));
    if let Some(listen) = flag_value(args, "--listen") {
        return serve_tcp(state, &listen, args);
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let commands = serve_loop(&state, stdin.lock(), &mut stdout)?;
    let mut out = format!("# served {commands} commands\n");
    if state.is_draining() {
        // `shutdown` over stdio behaves like the TCP drain: the configured
        // drain snapshot is written before the process exits.
        match state.finish_drain() {
            Ok(Some((path, bytes))) => {
                let _ = writeln!(out, "# drained: saved {path} ({bytes} bytes)");
            }
            Ok(None) => {}
            Err(e) => return Err(format!("cannot write drain snapshot: {e}")),
        }
    }
    Ok(out)
}

/// The `serve --listen` path: the wire protocol over TCP. Prints the bound
/// address immediately (port `0` resolves to an ephemeral port), then blocks
/// until a graceful drain (`shutdown` request or SIGTERM).
fn serve_tcp(state: Arc<ServerState>, listen: &str, args: &[String]) -> Result<String, String> {
    let mut config = ServerConfig::default();
    if let Some(v) = flag_value(args, "--workers") {
        config.workers = v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| "--workers must be a positive integer".to_string())?;
    }
    if let Some(v) = flag_value(args, "--queue") {
        config.admission_limit = v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| "--queue must be a positive integer".to_string())?;
    }
    if let Some(v) = flag_value(args, "--idle-timeout") {
        let secs = v
            .parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| "--idle-timeout must be a positive number of seconds".to_string())?;
        config.idle_timeout = Duration::from_secs(secs);
    }
    #[cfg(unix)]
    locater::server::install_sigterm_drain(&state);
    let server = locater::server::Server::bind(state, listen, config)
        .map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    println!(
        "listening on {} ({} shard(s); protocol v{})",
        server.local_addr(),
        server.state().service().num_shards(),
        locater::proto::PROTOCOL_VERSION
    );
    std::io::stdout().flush().ok();
    let report = server.join().map_err(|e| format!("drain failed: {e}"))?;
    let mut out = format!(
        "# served {} requests over {} connections ({} rejected overloaded, {} rejected while draining)\n",
        report.requests_served,
        report.connections,
        report.rejected_overloaded,
        report.rejected_shutting_down
    );
    if let Some((path, bytes)) = report.drain_snapshot {
        let _ = writeln!(out, "# drained: saved {path} ({bytes} bytes)");
    }
    Ok(out)
}

/// The `serve` stdin REPL: the wire protocol over stdio. Each line is parsed
/// by [`parse_repl_line`] (legacy verb syntax or a raw NDJSON frame), executed
/// by the shared [`ServerState`] executor, and rendered as the legacy
/// human-readable text — responses are written (and flushed) as they are
/// produced.
///
/// ```text
/// ingest <mac,timestamp,ap>   append one live event (CSV, same as events.csv rows)
/// locate <mac> <timestamp>    answer a query over the current store
/// stats                       totals, per-shard counts, serving-layer gauges
/// ping | snapshot <path> | shutdown
/// quit                        stop reading (without draining)
/// ```
fn serve_loop(
    state: &ServerState,
    input: impl BufRead,
    out: &mut impl std::io::Write,
) -> Result<usize, String> {
    let space = state.service().space();
    let mut commands = 0usize;
    for line in input.lines() {
        let line = line.map_err(|e| format!("cannot read command: {e}"))?;
        let request = match parse_repl_line(&line) {
            Ok(ReplCommand::Empty) => continue,
            Ok(ReplCommand::Quit) => {
                commands += 1;
                break;
            }
            Ok(ReplCommand::Request(request)) => {
                commands += 1;
                request
            }
            Err(e) => {
                commands += 1;
                writeln!(out, "error: {e}").map_err(|e| format!("cannot write response: {e}"))?;
                out.flush()
                    .map_err(|e| format!("cannot write response: {e}"))?;
                continue;
            }
        };
        let response = state.execute(&request);
        writeln!(out, "{}", render_response(&space, &request, &response))
            .map_err(|e| format!("cannot write response: {e}"))?;
        out.flush()
            .map_err(|e| format!("cannot write response: {e}"))?;
        if matches!(response, WireResponse::ShuttingDown) {
            break;
        }
    }
    Ok(commands)
}

/// The `request` command: send one NDJSON request to a running
/// `serve --listen` server and print the raw response frame.
fn request(args: &[String]) -> Result<String, String> {
    let addr = args.get(1).ok_or("missing server address")?;
    let line = args[2..].join(" ");
    let request = match parse_repl_line(&line) {
        Ok(ReplCommand::Request(request)) => request,
        Ok(ReplCommand::Empty) => {
            return Err("missing request (verb syntax or a raw JSON frame)".to_string())
        }
        Ok(ReplCommand::Quit) => {
            return Err("quit is not a wire request (did you mean shutdown?)".to_string())
        }
        Err(e) => return Err(e.to_string()),
    };
    let stream = std::net::TcpStream::connect(addr.as_str())
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writeln!(writer, "{}", encode_request(&request))
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut reader = std::io::BufReader::new(stream);
    let mut response = String::new();
    let n = reader
        .read_line(&mut response)
        .map_err(|e| format!("cannot read response: {e}"))?;
    if n == 0 {
        return Err("server closed the connection without a response".to_string());
    }
    Ok(response)
}

fn snapshot(args: &[String]) -> Result<String, String> {
    let action = args.get(1).ok_or("missing snapshot action (save|load)")?;
    match action.as_str() {
        "save" => {
            let space_path = args.get(2).ok_or("missing space.json")?;
            let events_path = args.get(3).ok_or("missing events.csv")?;
            let out_path = args.get(4).ok_or("missing output snapshot path")?;
            // `--embed-index` persists the co-location posting lists so a cold
            // start skips the index rebuild (larger file); the default
            // rebuilds the index on load.
            let mode = if args.iter().any(|a| a == "--embed-index") {
                SnapshotIndexMode::Embedded
            } else {
                SnapshotIndexMode::Rebuild
            };
            let store = load_store(space_path, events_path)?;
            store
                .save_snapshot_with(out_path, mode)
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            let size = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
            Ok(format!(
                "saved {out_path}: {} events, {} devices, {} segments ({size} bytes, index {})\n",
                store.num_events(),
                store.num_devices(),
                store.num_segments(),
                match mode {
                    SnapshotIndexMode::Embedded => "embedded",
                    SnapshotIndexMode::Rebuild => "rebuilt on load",
                }
            ))
        }
        "load" => {
            let path = args.get(2).ok_or("missing snapshot path")?;
            let store = EventStore::load_snapshot(path)
                .map_err(|e| format!("cannot load snapshot {path}: {e}"))?;
            let mut out = String::new();
            let _ = writeln!(out, "{}", store.stats().to_report());
            let _ = writeln!(
                out,
                "segments: {} across {} devices (span {}s)",
                store.num_segments(),
                store.num_devices(),
                store.segment_span()
            );
            let index = store.colocation_stats();
            let _ = writeln!(
                out,
                "co-location index: {} AP posting lists, {} time buckets",
                index.ap_lists, index.buckets
            );
            Ok(out)
        }
        other => Err(format!("unknown snapshot action {other:?} (save|load)")),
    }
}

fn simulate(args: &[String]) -> Result<String, String> {
    let kind = args.get(1).ok_or("missing scenario kind")?;
    let prefix = args.get(2).ok_or("missing output prefix")?;
    let days: i64 = flag_value(args, "--days")
        .map(|v| {
            v.parse()
                .map_err(|_| "--days must be an integer".to_string())
        })
        .transpose()?
        .unwrap_or(14);
    let seed: u64 = flag_value(args, "--seed")
        .map(|v| {
            v.parse()
                .map_err(|_| "--seed must be an integer".to_string())
        })
        .transpose()?
        .unwrap_or(7);

    let output = match kind.as_str() {
        "campus" => Simulator::new(seed).run_campus(&CampusConfig {
            weeks: (days / 7).max(1),
            ..CampusConfig::default()
        }),
        "metro_campus" => {
            // Env-sized large scenario; --days overrides the env/default weeks.
            let mut config = CampusConfig::metro_from_env();
            if flag_value(args, "--days").is_some() {
                config.weeks = (days / 7).max(1);
            }
            Simulator::new(seed).run_campus(&config)
        }
        "office" | "university" | "mall" | "airport" => {
            let scenario = match kind.as_str() {
                "office" => ScenarioKind::Office,
                "university" => ScenarioKind::University,
                "mall" => ScenarioKind::Mall,
                _ => ScenarioKind::Airport,
            };
            Simulator::new(seed).run_scenario(
                &locater::sim::ScenarioConfig::new(scenario)
                    .with_days(days)
                    .with_seed(seed),
            )
        }
        other => return Err(format!("unknown scenario {other:?}")),
    };

    // Space metadata.
    let metadata = SpaceMetadata::from_space(&output.space);
    let space_path = format!("{prefix}.space.json");
    std::fs::write(&space_path, metadata.to_json().map_err(|e| e.to_string())?)
        .map_err(|e| format!("cannot write {space_path}: {e}"))?;
    // Events.
    let events_path = format!("{prefix}.events.csv");
    std::fs::write(&events_path, locater::store::format_csv(&output.events))
        .map_err(|e| format!("cannot write {events_path}: {e}"))?;
    // Ground truth.
    let truth_path = format!("{prefix}.truth.csv");
    let mut truth = String::from("mac,room,start,end\n");
    for record in &output.people {
        for stay in output.ground_truth.stays_of(&record.mac) {
            let _ = writeln!(
                truth,
                "{},{},{},{}",
                record.mac,
                output.space.room(stay.room).name,
                stay.interval.start,
                stay.interval.end
            );
        }
    }
    std::fs::write(&truth_path, truth).map_err(|e| format!("cannot write {truth_path}: {e}"))?;

    Ok(format!(
        "simulated {kind}: {} events, {} devices, {} days\nwrote {space_path}, {events_path}, {truth_path}\n",
        output.events.len(),
        output.people.len(),
        output.days
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater::store::parse_csv;

    #[test]
    fn missing_command_and_unknown_command_error() {
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(usage().contains("locater-cli"));
    }

    #[test]
    fn simulate_then_stats_then_locate_roundtrip() {
        let dir = std::env::temp_dir().join(format!("locater-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("office").to_string_lossy().to_string();

        let simulate_args: Vec<String> = vec![
            "simulate".into(),
            "office".into(),
            prefix.clone(),
            "--days".into(),
            "3".into(),
            "--seed".into(),
            "5".into(),
        ];
        let report = run(&simulate_args).expect("simulate succeeds");
        assert!(report.contains("simulated office"));

        let space = format!("{prefix}.space.json");
        let events = format!("{prefix}.events.csv");
        let stats_out = run(&["stats".into(), space.clone(), events.clone()]).expect("stats");
        assert!(stats_out.contains("devices"));
        assert!(stats_out.contains("gaps to clean"));
        assert!(stats_out.contains("co-location index:"));

        // Locate the first device found in the events file at its first event time:
        // always answerable.
        let csv = std::fs::read_to_string(&events).unwrap();
        let first = parse_csv(&csv).unwrap().into_iter().next().unwrap();
        let locate_out = run(&[
            "locate".into(),
            space.clone(),
            events.clone(),
            first.mac.clone(),
            first.t.to_string(),
            "--dependent".into(),
        ])
        .expect("locate succeeds");
        assert!(locate_out.contains(&first.mac));
        assert!(locate_out.contains("room") || locate_out.contains("outside"));

        // Batch: two queries, one for an unknown device.
        let queries = dir.join("queries.csv");
        std::fs::write(
            &queries,
            format!(
                "mac,timestamp\n{},{}\nghost-device,123\n",
                first.mac, first.t
            ),
        )
        .unwrap();
        let batch_out = run(&[
            "batch".into(),
            space.clone(),
            events.clone(),
            queries.to_string_lossy().to_string(),
            "--jobs".into(),
            "2".into(),
        ])
        .expect("batch succeeds");
        assert!(batch_out.contains("answered 2 queries"));
        assert!(batch_out.contains("unknown-device"));

        // The same batch on one job is byte-identical (deterministic pipeline).
        let batch_one = run(&[
            "batch".into(),
            space.clone(),
            events.clone(),
            queries.to_string_lossy().to_string(),
            "--jobs".into(),
            "1".into(),
        ])
        .expect("batch succeeds");
        assert_eq!(
            batch_one.replace("(1 jobs)", ""),
            batch_out.replace("(2 jobs)", "")
        );

        // ...and byte-identical again when the service is sharded.
        let batch_sharded = run(&[
            "batch".into(),
            space,
            events,
            queries.to_string_lossy().to_string(),
            "--jobs".into(),
            "2".into(),
            "--shards".into(),
            "3".into(),
        ])
        .expect("sharded batch succeeds");
        assert_eq!(batch_sharded, batch_out);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_save_load_and_serve_roundtrip() {
        let dir = std::env::temp_dir().join(format!("locater-cli-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("office").to_string_lossy().to_string();
        run(&[
            "simulate".into(),
            "office".into(),
            prefix.clone(),
            "--days".into(),
            "3".into(),
            "--seed".into(),
            "11".into(),
        ])
        .expect("simulate succeeds");
        let space = format!("{prefix}.space.json");
        let events = format!("{prefix}.events.csv");
        let snap = format!("{prefix}.snap");

        let saved = run(&[
            "snapshot".into(),
            "save".into(),
            space,
            events.clone(),
            snap.clone(),
        ])
        .expect("snapshot save succeeds");
        assert!(saved.contains("saved"));
        assert!(saved.contains("segments"));

        let loaded =
            run(&["snapshot".into(), "load".into(), snap.clone()]).expect("snapshot load succeeds");
        assert!(loaded.contains("events"));
        assert!(loaded.contains("segments:"));
        assert!(loaded.contains("co-location index:"));

        // `--embed-index` persists the posting lists: bigger file, identical
        // store on load.
        let embedded_snap = format!("{prefix}.embedded.snap");
        let saved_embedded = run(&[
            "snapshot".into(),
            "save".into(),
            format!("{prefix}.space.json"),
            events.clone(),
            embedded_snap.clone(),
            "--embed-index".into(),
        ])
        .expect("embedded snapshot save succeeds");
        assert!(saved_embedded.contains("index embedded"));
        let plain = std::fs::metadata(&snap).unwrap().len();
        let embedded = std::fs::metadata(&embedded_snap).unwrap().len();
        assert!(embedded > plain, "embedded index must grow the snapshot");
        assert_eq!(
            EventStore::load_snapshot(&embedded_snap).unwrap(),
            EventStore::load_snapshot(&snap).unwrap(),
        );

        // Serving straight from the snapshot answers queries without the CSV.
        let csv = std::fs::read_to_string(&events).unwrap();
        let first = parse_csv(&csv).unwrap().into_iter().next().unwrap();
        let store = EventStore::load_snapshot(&snap).expect("snapshot loads");
        // Serve from the snapshot with two shards: the store splits on load.
        let state = ServerState::new(
            ShardedLocaterService::new(store, LocaterConfig::default(), 2),
            None,
        );
        let mut out: Vec<u8> = Vec::new();
        let input = format!("locate {} {}\nquit\n", first.mac, first.t);
        serve_loop(&state, std::io::Cursor::new(input), &mut out).expect("serve loop runs");
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains(&first.mac));
        assert!(out.contains("room") || out.contains("outside"));

        // Corrupting the snapshot yields a typed, non-panicking CLI error.
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&snap, bytes).unwrap();
        let err = run(&["snapshot".into(), "load".into(), snap]).unwrap_err();
        assert!(err.contains("checksum"), "unexpected error: {err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_command_rejects_bad_usage() {
        assert!(run(&["snapshot".into()]).is_err());
        assert!(run(&["snapshot".into(), "frob".into()]).is_err());
        assert!(run(&["snapshot".into(), "save".into()]).is_err());
        assert!(run(&[
            "snapshot".into(),
            "load".into(),
            "/no/such/file.snap".into()
        ])
        .is_err());
        assert!(
            run(&["serve".into()]).is_err(),
            "serve needs a space or snapshot"
        );
    }

    #[test]
    fn serve_loop_ingests_locates_and_reports_stats() {
        let space = locater::space::SpaceBuilder::new("serve-test")
            .add_access_point("wap1", &["101", "102"])
            .build()
            .unwrap();
        let state = ServerState::new(
            ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 2),
            None,
        );
        let input = "\
# comment lines and blanks are skipped

stats
ingest aa:bb:cc:dd:ee:01,1000,wap1
ingest aa:bb:cc:dd:ee:01,4000,wap1
locate aa:bb:cc:dd:ee:01 2500
locate ghost 2500
ingest broken-line-without-commas
locate aa:bb:cc:dd:ee:01
frobnicate
quit
stats
";
        let mut out: Vec<u8> = Vec::new();
        let commands =
            serve_loop(&state, std::io::Cursor::new(input), &mut out).expect("serve loop runs");
        // `quit` stops the loop before the trailing stats line.
        assert_eq!(commands, 9);
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("0 events, 0 devices across 2 shard(s)"));
        assert!(out.contains("co-location index: 0 AP lists, 0 buckets"));
        assert!(out.contains("shard 0: 0 events"));
        assert!(out.contains("shard 1: 0 events"));
        assert!(out.contains("index: 0 AP lists, 0 buckets"));
        assert!(out.contains("ingested aa:bb:cc:dd:ee:01 @ 1000 via wap1 (device epoch 1)"));
        assert!(out.contains("(device epoch 2)"));
        assert!(out.contains("room") || out.contains("outside"));
        assert!(out.contains("2 events)"), "locate reports the store size");
        assert!(out.contains("error: unknown device: ghost"));
        assert!(out.contains("error: usage: locate <mac> <timestamp>"));
        assert!(out.contains("error: unknown command \"frobnicate\""));
        assert_eq!(state.service().num_events(), 2);
    }

    #[test]
    fn serve_loop_rejects_bad_ingest_lines() {
        let space = locater::space::SpaceBuilder::new("serve-test")
            .add_access_point("wap1", &["101"])
            .build()
            .unwrap();
        let state = ServerState::new(
            ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 1),
            None,
        );
        let input = "ingest aa,100,wap9\nlocate aa 1x0\n";
        let mut out: Vec<u8> = Vec::new();
        serve_loop(&state, std::io::Cursor::new(input), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("error:"));
        assert!(out.contains("timestamp must be an integer"));
        assert_eq!(state.service().num_events(), 0);
    }

    #[test]
    fn serve_loop_shutdown_drains_and_accepts_raw_frames() {
        let dir = std::env::temp_dir().join(format!("locater-cli-drain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let drain = dir.join("repl-drain.snap").to_string_lossy().to_string();
        let space = locater::space::SpaceBuilder::new("serve-test")
            .add_access_point("wap1", &["101"])
            .build()
            .unwrap();
        let state = ServerState::new(
            ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 1),
            Some(drain.clone()),
        );
        // Raw NDJSON frames and verbs mix freely: the REPL is the protocol
        // over stdio. `shutdown` stops the loop with the drain flag up.
        let input = "\
{\"Ingest\":{\"mac\":\"aa:bb:cc:dd:ee:01\",\"t\":1000,\"ap\":\"wap1\"}}
\"Ping\"
shutdown
locate aa:bb:cc:dd:ee:01 1000
";
        let mut out: Vec<u8> = Vec::new();
        let commands =
            serve_loop(&state, std::io::Cursor::new(input), &mut out).expect("serve loop runs");
        assert_eq!(commands, 3, "shutdown stops the loop");
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("ingested aa:bb:cc:dd:ee:01 @ 1000 via wap1 (device epoch 1)"));
        assert!(out.contains("pong (protocol v1)"));
        assert!(out.contains("shutting down"));
        assert!(state.is_draining());
        let (path, bytes) = state.finish_drain().unwrap().expect("drain snapshot");
        assert_eq!(path, drain);
        assert!(bytes > 0);
        assert!(EventStore::load_snapshot(&drain).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn request_command_round_trips_against_a_live_server() {
        let space = locater::space::SpaceBuilder::new("request-test")
            .add_access_point("wap1", &["101"])
            .build()
            .unwrap();
        let state = Arc::new(ServerState::new(
            ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 2),
            None,
        ));
        let server = locater::server::Server::bind(
            Arc::clone(&state),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind loopback");
        let addr = server.local_addr().to_string();

        let pong = run(&["request".into(), addr.clone(), "ping".into()]).expect("ping");
        assert!(pong.contains("Pong"), "response frame: {pong}");
        let ingested = run(&[
            "request".into(),
            addr.clone(),
            "ingest".into(),
            "aa:bb:cc:dd:ee:01,1000,wap1".into(),
        ])
        .expect("ingest");
        assert!(ingested.contains("Ingested"), "response frame: {ingested}");
        // Raw JSON frames pass through unchanged.
        let located = run(&[
            "request".into(),
            addr.clone(),
            "{\"Locate\":{\"mac\":\"aa:bb:cc:dd:ee:01\",\"t\":1000}}".into(),
        ])
        .expect("locate");
        assert!(located.contains("Located"), "response frame: {located}");
        assert_eq!(state.service().num_events(), 1);

        assert!(run(&["request".into()]).is_err(), "address is required");
        assert!(
            run(&["request".into(), addr.clone()]).is_err(),
            "a request line is required"
        );
        assert!(
            run(&["request".into(), addr, "quit".into()]).is_err(),
            "quit is not a wire request"
        );
    }

    #[test]
    fn flag_parsing_helpers() {
        let args: Vec<String> = vec![
            "x".into(),
            "--days".into(),
            "9".into(),
            "--dependent".into(),
        ];
        assert_eq!(flag_value(&args, "--days"), Some("9".to_string()));
        assert_eq!(flag_value(&args, "--seed"), None);
        let config = config_from_flags(&args);
        assert_eq!(config.fine.mode, FineMode::Dependent);
        assert_eq!(config.cache, CacheMode::Enabled);
        let config = config_from_flags(&["--no-cache".to_string()]);
        assert_eq!(config.cache, CacheMode::Disabled);

        assert_eq!(shards_from_flags(&[]).unwrap(), 1);
        assert_eq!(
            shards_from_flags(&["--shards".into(), "4".into()]).unwrap(),
            4
        );
        assert!(shards_from_flags(&["--shards".into()]).is_err());
        assert!(shards_from_flags(&["--shards".into(), "0".into()]).is_err());
    }
}
